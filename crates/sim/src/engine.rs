//! The event-driven simulation engine.
//!
//! The engine bootstraps a network from an `sp-model`
//! [`NetworkInstance`], then plays churn, queries, and updates as
//! discrete events, charging every message to its endpoints with the
//! same Table 2 cost model the analytic engine uses. Super-peer
//! failure, partner recruitment, orphaned-client re-discovery, and
//! (optionally) the Section 5.3 adaptive local rules all happen as the
//! clock advances.
//!
//! Behavioral model (documented deviations from the analytic engine are
//! listed in DESIGN.md):
//!
//! * Query inter-arrival and update inter-arrival are exponential with
//!   the Table 1 per-user rates; session lengths come from the
//!   population model, and each departure schedules a fresh arrival so
//!   the population stays statistically stable.
//! * A joining peer becomes a new super-peer when the network has
//!   fewer clusters than the configured target (`GraphSize /
//!   ClusterSize`), otherwise it becomes a client of a cluster chosen
//!   uniformly at random ("pong-server" discovery, Section 4.1).
//! * When a partner dies: surviving partners keep serving and recruit a
//!   replacement from the clients after a delay; if no partner
//!   survives, the cluster fails and every client is orphaned until its
//!   own rediscovery timer fires — the quantity behind the
//!   reliability experiment.
//!
//! # Performance mechanics
//!
//! This engine and [`ReferenceSimulation`](crate::reference) implement
//! the *same simulator* — identical behavior, RNG consumption, and
//! [`RawMetrics`] on every seed (enforced by `tests/sim_determinism.rs`)
//! — but this one is built for throughput:
//!
//! * the [`IndexedEventQueue`] cancels a departed peer's pending
//!   query/update/rejoin timers in O(log n) instead of leaving
//!   tombstones to churn through the heap;
//! * per-peer [`EventHandle`] slots and per-cluster adapt-tick handles
//!   make cancel/reschedule O(1) lookups;
//! * member lists are iterated through pooled scratch buffers instead
//!   of per-event `Vec` clones;
//! * connection counts come from the network's incrementally maintained
//!   `neighbor_partner_links` cache (O(1) per message instead of
//!   O(degree)), snapshotted once per flood.
//!
//! Every shortcut is exact — integer-derived values, identical
//! iteration order, untouched RNG call sites — so the determinism
//! contract is bitwise, not approximate.

use sp_design::local_rules::{advise, LocalAction, LocalView};
use sp_graph::PartitionMonitor;
use sp_model::config::Config;
use sp_model::instance::{NetworkInstance, Topology};
use sp_model::load::Load;
use sp_model::overload::OverloadPolicy;
use sp_model::query_model::QueryModel;
use sp_model::repair::RepairPolicy;
use sp_stats::dist::Normal;
use sp_stats::{OnlineStats, SpRng};

use sp_model::faults::FaultPlan;
use sp_model::scenario::ScenarioPlan;
use sp_model::snapshot::{SnapReader, SnapWriter, SnapshotError, ENGINE_FAST};

use crate::checkpoint;

use crate::events::{ClusterId, Event, EventHandle, IndexedEventQueue, PeerId, SimTime};
use crate::faults::{FaultMetrics, FaultState, QueryOutcome, Submission};
use crate::metrics::{EventKind, ProfileTimer, RunManifest, SimMetrics};
use crate::network::SimNetwork;
use crate::overload::{Admission, OverloadMetrics, OverloadState};
use crate::phases::{PhaseAction, ScenarioState};
use crate::repair::{ReachPoint, RepairMetrics, RepairPending};

/// How a cluster forwards a query to its neighbors.
///
/// The paper's baseline is Gnutella flooding; it also notes (Section 2)
/// that smarter routing protocols "can be applied to super-peer
/// networks, as the use of super-peers and the choice of routing
/// protocol are orthogonal issues". [`ForwardPolicy::RandomSubset`] is
/// the simplest such protocol (the random-k forwarding of the authors'
/// "Improving efficiency of peer-to-peer search" line of work) and lets
/// experiments check that orthogonality: the cluster-size and
/// redundancy tradeoffs persist, only the reach/cost point moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardPolicy {
    /// Gnutella flooding: forward to every neighbor except the one the
    /// query arrived from.
    FloodAll,
    /// Forward to at most `fanout` randomly chosen neighbors (excluding
    /// the arrival link).
    RandomSubset {
        /// Maximum neighbors forwarded to per hop.
        fanout: usize,
    },
}

/// Adaptive-mode settings (Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptSettings {
    /// How often each super-peer re-evaluates the local rules, seconds.
    pub interval_secs: f64,
    /// The self-imposed per-partner load limit ("limited altruism").
    pub limit: Load,
}

/// Engine options.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Simulated duration, seconds.
    pub duration_secs: f64,
    /// RNG seed.
    pub seed: u64,
    /// Delay before a cluster that lost a partner promotes a client.
    pub recruit_delay_secs: f64,
    /// Mean delay before an orphaned client retries discovery.
    pub rejoin_mean_secs: f64,
    /// Mean delay before a departed peer is replaced by a new arrival.
    pub replenish_mean_secs: f64,
    /// Timeline sampling interval, seconds.
    pub sample_interval_secs: f64,
    /// Enable the Section 5.3 adaptive local rules.
    pub adapt: Option<AdaptSettings>,
    /// Query forwarding policy.
    pub forward_policy: ForwardPolicy,
    /// Seed of the *dedicated* fault-injection RNG stream (see
    /// [`crate::faults`]). Ignored when no fault plan is supplied;
    /// changing it never perturbs the main churn/query schedule.
    pub fault_seed: u64,
    /// Overlay self-healing policy (see [`sp_model::repair`]): what a
    /// cluster does when fault injection kills every partner.
    /// [`RepairPolicy::Off`] keeps the legacy dissolve-and-orphan
    /// behavior; repair never engages on organic churn, so with an
    /// empty fault plan every policy is bitwise identical.
    pub repair: RepairPolicy,
    /// Delay between a cluster losing its last partner to an injected
    /// crash and the repair election firing (simulated outage
    /// detection + election time), seconds.
    pub repair_delay_secs: f64,
    /// Seed of the *dedicated* scenario RNG stream (see
    /// [`crate::phases`]). Ignored when no scenario plan is supplied;
    /// changing it never perturbs the main churn/query schedule.
    pub scenario_seed: u64,
    /// Record per-event-type wall-time histograms (two `Instant::now`
    /// calls per event — leave off for throughput benchmarks).
    pub profile: bool,
    /// Overload-control policy (see [`sp_model::overload`]). The empty
    /// policy is bitwise inert: no admission gate, no queues, no
    /// counters, identical metrics to a build without the subsystem.
    pub overload: OverloadPolicy,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            duration_secs: 3600.0,
            seed: 0x5EED,
            recruit_delay_secs: 30.0,
            rejoin_mean_secs: 30.0,
            replenish_mean_secs: 10.0,
            sample_interval_secs: 120.0,
            adapt: None,
            forward_policy: ForwardPolicy::FloodAll,
            fault_seed: 0,
            repair: RepairPolicy::Off,
            repair_delay_secs: 5.0,
            scenario_seed: 0,
            profile: false,
            overload: OverloadPolicy::default(),
        }
    }
}

/// One timeline sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelinePoint {
    /// Sample time.
    pub time: SimTime,
    /// Live clusters.
    pub clusters: usize,
    /// Live peers.
    pub peers: usize,
    /// Mean cluster size.
    pub mean_cluster_size: f64,
    /// Mean TTL stamped by clusters.
    pub mean_ttl: f64,
    /// Mean overlay outdegree.
    pub mean_outdegree: f64,
}

/// Raw metrics accumulated during a run.
///
/// Derives `PartialEq` so the determinism tests can assert bitwise
/// agreement between engines and across thread counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawMetrics {
    /// Per-partner load rates (sampled when a peer exits or at the end).
    pub sp_in: OnlineStats,
    /// Partner outgoing bandwidth rates.
    pub sp_out: OnlineStats,
    /// Partner processing rates.
    pub sp_proc: OnlineStats,
    /// Client incoming bandwidth rates.
    pub client_in: OnlineStats,
    /// Client outgoing bandwidth rates.
    pub client_out: OnlineStats,
    /// Client processing rates.
    pub client_proc: OnlineStats,
    /// Results per query.
    pub results: OnlineStats,
    /// Queries processed.
    pub queries: u64,
    /// Cluster failures (all partners gone).
    pub cluster_failures: u64,
    /// Clients orphaned by cluster failures.
    pub orphan_events: u64,
    /// Downtime per orphan event, seconds.
    pub downtime: OnlineStats,
    /// Total client-seconds spent connected.
    pub client_connected_secs: f64,
    /// Total client-seconds spent orphaned.
    pub client_disconnected_secs: f64,
    /// Periodic samples.
    pub timeline: Vec<TimelinePoint>,
    /// Local-rule actions applied (adaptive mode).
    pub adapt_actions: u64,
    /// Fault-injection and recovery counters (all zero without a fault
    /// plan). Part of `RawMetrics` so the engine-equivalence and
    /// thread-invariance checks cover recovery accounting bitwise.
    pub faults: FaultMetrics,
    /// Overlay-repair counters and the reachability timeline. The
    /// timeline is populated in every run (sample ticks, post-crash
    /// probes, final state); the repair counters only move when fault
    /// injection meets a promoting [`RepairPolicy`].
    pub repair: RepairMetrics,
    /// Overload-control counters, latency histogram, and queue
    /// timeline (all zero/empty without an active overload policy).
    /// Part of `RawMetrics` so engine equivalence, thread invariance,
    /// and the campaign fingerprint cover the overload ledger bitwise.
    pub overload: OverloadMetrics,
}

impl RawMetrics {
    /// Client availability: connected time over total client time.
    /// 1.0 when no client time was observed.
    pub fn availability(&self) -> f64 {
        let total = self.client_connected_secs + self.client_disconnected_secs;
        if total <= 0.0 {
            1.0
        } else {
            self.client_connected_secs / total
        }
    }
}

/// The simulation engine.
pub struct Simulation {
    /// Mutable network state (public for scenario inspection).
    pub net: SimNetwork,
    queue: IndexedEventQueue,
    rng: SpRng,
    now: SimTime,

    config: Config,
    model: QueryModel,
    opts: SimOptions,
    metrics: RawMetrics,
    obs: SimMetrics,
    /// Fault-injection state machine (inert for an empty plan).
    faults: FaultState,
    /// Fault counters retained past `run`'s `mem::take` so the
    /// post-run manifest can render the recovery section.
    faults_final: FaultMetrics,
    /// Repair counters retained past `run`'s `mem::take` (mirrors
    /// `faults_final`).
    repair_final: RepairMetrics,
    /// Overload ledger retained past `run`'s `mem::take` (mirrors
    /// `faults_final`) so the manifest can render the overload section.
    overload_final: OverloadMetrics,
    /// Per-cluster-slot headless-window state, parallel to the cluster
    /// slab like `adapt_h`.
    repair_pending: Vec<RepairPending>,
    /// Union-find over the live super-peer overlay, epoch-rebuilt at
    /// each reachability observation (churn makes it dirty between
    /// any two observations, so the rebuild path is the common case).
    monitor: PartitionMonitor,
    /// Whether the current `on_leave` cascade was initiated by a
    /// fault-plan crash — repair only ever engages on injected
    /// crashes, never on organic churn departures.
    in_fault_crash: bool,
    /// Scenario-phase state machine (inert for an empty plan).
    scenario: ScenarioState,
    /// Overload-control runtime (inert for an empty policy): bounded
    /// per-cluster work queues, token budgets, brownout hysteresis.
    overload: OverloadState,
    /// The scenario plan the state machine was built from, retained so
    /// snapshots are self-contained ([`ScenarioState`] keeps only the
    /// compiled phase/class tables).
    scenario_plan: ScenarioPlan,
    // Per-peer-slot handles for the (at most one) outstanding timer of
    // each kind, cancelled when the peer departs so the queue never
    // accumulates tombstones.
    leave_h: Vec<EventHandle>,
    query_h: Vec<EventHandle>,
    update_h: Vec<EventHandle>,
    rejoin_h: Vec<EventHandle>,
    // Per-cluster-slot handle of the outstanding adapt tick.
    adapt_h: Vec<EventHandle>,
    // Pooled member-list scratch (replaces per-event Vec clones).
    // `scratch_partners` is used by the attach/update charging paths,
    // `scratch_clients` by fail/split mover lists, `scratch_members`
    // by coalesce partner lists and the adapt-tick partner walk (the
    // latter returns it to the pool *before* applying a local action,
    // which may itself coalesce).
    scratch_partners: Vec<PeerId>,
    scratch_clients: Vec<PeerId>,
    scratch_members: Vec<PeerId>,
    // BFS scratch over cluster slots.
    stamp_cur: u32,
    bfs_parent: Vec<ClusterId>,
    bfs_depth: Vec<u16>,
    bfs_order: Vec<ClusterId>,
    bfs_candidates: Vec<ClusterId>,
    /// Per-cluster flood scratch (visit stamp + discovery-time
    /// snapshot), indexed by cluster slot; see [`FloodSlot`].
    flood: Vec<FloodSlot>,
}

/// Per-cluster flood scratch, merged into a single record so the hot
/// transmission and probe loops pay one bounds check and touch one
/// cache line per cluster instead of indexing seven parallel arrays.
///
/// Snapshot fields are written at discovery and are exact for the
/// whole event: membership, files, and the overlay cannot change
/// mid-query, so the values equal the reference engine's per-use
/// recomputation.
#[derive(Clone, Copy, Default)]
struct FloodSlot {
    /// Visit stamp (equals `Simulation::stamp_cur` when visited by the
    /// current flood).
    stamp: u32,
    /// Partner count at discovery: clusters with a single partner (the
    /// k = 1 common case) resolve round-robin picks from this record
    /// instead of dereferencing the cluster per transmission.
    len: u32,
    /// First partner at discovery (the round-robin pick while
    /// `len == 1`).
    partner: PeerId,
    /// Deferred rr-cursor advances for k = 1 clusters, flushed once at
    /// the end of each query (rr is never *read* while a cluster has a
    /// single partner, so batching the writes is exact).
    bump: u32,
    /// `recv_query_units + mux × conns` for the current query,
    /// computed once at discovery (clusters average more than two
    /// incoming copies per flood).
    recv_units: f64,
    /// Partner connection count at discovery.
    conns: f64,
    /// Indexed file total at discovery.
    files: u64,
}

impl Simulation {
    /// Builds a simulation from a configuration: generates an
    /// `sp-model` instance, mirrors it into mutable state, and
    /// schedules every peer's initial events.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: &Config, opts: SimOptions) -> Self {
        Self::with_faults(config, opts, &FaultPlan::default())
    }

    /// Builds a simulation that injects the given fault plan. The plan
    /// drives a dedicated RNG stream seeded from `opts.fault_seed`, so
    /// an empty plan is bitwise identical to [`Simulation::new`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration or the fault plan is invalid.
    pub fn with_faults(config: &Config, opts: SimOptions, plan: &FaultPlan) -> Self {
        Self::build(config, opts, plan, &ScenarioPlan::default())
    }

    /// Builds a simulation that plays the given scenario plan: phased
    /// workload programs (flash crowds, churn bursts, mass leaves,
    /// split windows), capacity classes, the plan's embedded fault
    /// plan, and the plan's repair policy — which **overrides**
    /// `opts.repair`, so a scenario file is self-contained. Phase
    /// randomness draws from a dedicated stream seeded from
    /// `opts.scenario_seed`; an empty plan is bitwise identical to
    /// [`Simulation::new`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration or the scenario plan is invalid.
    pub fn with_scenario(config: &Config, opts: SimOptions, plan: &ScenarioPlan) -> Self {
        let mut opts = opts;
        opts.repair = plan.repair;
        if !plan.overload.is_empty() {
            opts.overload = plan.overload;
        }
        Self::build(config, opts, &plan.faults, plan)
    }

    fn build(config: &Config, opts: SimOptions, plan: &FaultPlan, scenario: &ScenarioPlan) -> Self {
        plan.validate().expect("invalid fault plan");
        let mut rng = SpRng::seed_from_u64(opts.seed);
        let inst = NetworkInstance::generate(config, &mut rng).expect("invalid configuration");
        let model = QueryModel::from_config(&config.query_model);
        let mut sim = Simulation {
            net: SimNetwork::new(),
            queue: IndexedEventQueue::new(),
            rng,
            now: 0.0,
            config: config.clone(),
            model,
            opts,
            metrics: RawMetrics::default(),
            obs: SimMetrics::default(),
            faults: FaultState::new(plan.clone(), opts.fault_seed),
            faults_final: FaultMetrics::default(),
            repair_final: RepairMetrics::default(),
            overload_final: OverloadMetrics::default(),
            repair_pending: Vec::new(),
            monitor: PartitionMonitor::new(),
            in_fault_crash: false,
            scenario: ScenarioState::new(scenario, opts.scenario_seed),
            overload: OverloadState::new(opts.overload),
            scenario_plan: scenario.clone(),
            leave_h: Vec::new(),
            query_h: Vec::new(),
            update_h: Vec::new(),
            rejoin_h: Vec::new(),
            adapt_h: Vec::new(),
            scratch_partners: Vec::new(),
            scratch_clients: Vec::new(),
            scratch_members: Vec::new(),
            stamp_cur: 0,
            bfs_parent: Vec::new(),
            bfs_depth: Vec::new(),
            bfs_order: Vec::new(),
            bfs_candidates: Vec::new(),
            flood: Vec::new(),
        };
        sim.bootstrap(&inst);
        sim
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Accumulated metrics (mostly useful after [`run`](Self::run)).
    pub fn metrics(&self) -> &RawMetrics {
        &self.metrics
    }

    /// Engine observability counters (event rates, cancellations,
    /// queue depth, optional wall-time histograms).
    pub fn observability(&self) -> &SimMetrics {
        &self.obs
    }

    /// Events dispatched so far, excluding generation-stale tombstones
    /// and cancelled entries — the number comparable across engine
    /// implementations.
    pub fn events_delivered(&self) -> u64 {
        self.obs.delivered_total()
    }

    /// Builds the structured run manifest, given the measured
    /// wall-clock time of the run.
    pub fn manifest(&self, wall_secs: f64) -> RunManifest {
        RunManifest {
            seed: self.opts.seed,
            duration_secs: self.opts.duration_secs,
            graph_size: self.config.graph_size,
            cluster_size: self.config.cluster_size,
            redundancy_k: self.config.redundancy_k,
            wall_secs,
            metrics: self.obs.clone(),
            fault_seed: self.opts.fault_seed,
            fault_plan_len: self.faults.plan().faults.len(),
            faults: if self.faults_final == FaultMetrics::default() {
                // `manifest` may be called mid-run (before the final
                // `mem::take`): fall back to the live counters.
                self.metrics.faults.clone()
            } else {
                self.faults_final.clone()
            },
            repair_policy: self.opts.repair,
            repair: if self.repair_final == RepairMetrics::default() {
                self.metrics.repair.clone()
            } else {
                self.repair_final.clone()
            },
            overload_policy: self.opts.overload,
            overload: if self.overload_final == OverloadMetrics::default() {
                self.metrics.overload.clone()
            } else {
                self.overload_final.clone()
            },
        }
    }

    // ---- handle-slot bookkeeping ----

    /// Grows the per-peer handle slots to cover `peer`, resetting the
    /// slot (it may be recycled from a departed peer).
    fn reset_peer_handles(&mut self, peer: PeerId) {
        let need = peer as usize + 1;
        if self.leave_h.len() < need {
            self.leave_h.resize(need, EventHandle::NULL);
            self.query_h.resize(need, EventHandle::NULL);
            self.update_h.resize(need, EventHandle::NULL);
            self.rejoin_h.resize(need, EventHandle::NULL);
        }
        self.leave_h[peer as usize] = EventHandle::NULL;
        self.query_h[peer as usize] = EventHandle::NULL;
        self.update_h[peer as usize] = EventHandle::NULL;
        self.rejoin_h[peer as usize] = EventHandle::NULL;
        if self.overload.active() {
            self.overload.reset_peer(peer);
        }
    }

    /// Grows the per-cluster adapt-handle and repair slots to cover
    /// `cluster`, resetting both (the slot may be recycled from a
    /// dissolved cluster).
    fn reset_cluster_handles(&mut self, cluster: ClusterId) {
        let need = cluster as usize + 1;
        if self.adapt_h.len() < need {
            self.adapt_h.resize(need, EventHandle::NULL);
        }
        self.adapt_h[cluster as usize] = EventHandle::NULL;
        if self.repair_pending.len() < need {
            self.repair_pending.resize(need, RepairPending::default());
        }
        self.repair_pending[cluster as usize] = RepairPending::default();
    }

    /// Cancels a stored handle (no-op on NULL/stale/fired handles) and
    /// counts the cancellation.
    fn cancel_handle(&mut self, handle: EventHandle) {
        if self.queue.cancel(handle) {
            self.obs.cancelled += 1;
        }
    }

    /// Overload bookkeeping for a cluster about to be removed:
    /// completions due by now still deliver, the rest of the queue is
    /// shed as dead, and the slot resets for its next tenant.
    fn ov_cluster_down(&mut self, c: ClusterId) {
        if self.overload.active() {
            self.overload
                .cluster_down(c, self.now, &mut self.metrics.overload);
        }
    }

    /// Re-homing target for a struck-out client: the live cluster with
    /// the shallowest overload queue (ties to the lowest cluster id),
    /// excluding the cluster being fled. `None` when no other cluster
    /// has a partner to serve the client.
    fn rehome_target(&self, from: ClusterId) -> Option<ClusterId> {
        let mut best: Option<(usize, ClusterId)> = None;
        for c in self.net.alive_clusters() {
            if c == from {
                continue;
            }
            if self.net.clusters[c as usize]
                .as_ref()
                .expect("alive")
                .partners
                .is_empty()
            {
                continue;
            }
            let d = self.overload.depth(c);
            if best.is_none_or(|(bd, bc)| d < bd || (d == bd && c < bc)) {
                best = Some((d, c));
            }
        }
        best.map(|(_, c)| c)
    }

    fn bootstrap(&mut self, inst: &NetworkInstance) {
        // Mirror clusters and membership.
        let mut cluster_ids = Vec::with_capacity(inst.num_clusters());
        for cluster in &inst.clusters {
            let lead = cluster.partners[0];
            let lead_peer = &inst.peers[lead as usize];
            let (files, lifespan) = self
                .scenario
                .admit_peer(lead_peer.files, lead_peer.lifespan_secs);
            let p = self.net.add_peer(files, 0.0);
            let c = self.net.add_cluster(p, inst.config.ttl);
            self.reset_cluster_handles(c);
            self.schedule_peer_events(p, lifespan);
            for &extra in &cluster.partners[1..] {
                let info = &inst.peers[extra as usize];
                let (files, lifespan) = self.scenario.admit_peer(info.files, info.lifespan_secs);
                let q = self.net.add_peer(files, 0.0);
                self.net.attach_client(q, c);
                self.net.promote_specific(c, q).expect("just attached");
                self.schedule_peer_events(q, lifespan);
            }
            for &cl in &cluster.clients {
                let info = &inst.peers[cl as usize];
                let (files, lifespan) = self.scenario.admit_peer(info.files, info.lifespan_secs);
                let q = self.net.add_peer(files, 0.0);
                self.net.attach_client(q, c);
                self.schedule_peer_events(q, lifespan);
            }
            cluster_ids.push(c);
        }
        // Mirror overlay edges.
        match &inst.topology {
            Topology::Explicit(g) => {
                for (a, b) in g.edges() {
                    self.net
                        .add_edge(cluster_ids[a as usize], cluster_ids[b as usize]);
                }
            }
            Topology::Complete { n } => {
                for a in 0..*n {
                    for b in (a + 1)..*n {
                        self.net.add_edge(cluster_ids[a], cluster_ids[b]);
                    }
                }
            }
        }
        debug_assert!(self.net.check_invariants().is_ok());
        // Periodic events.
        self.queue
            .schedule(self.opts.sample_interval_secs, Event::Sample);
        if let Some(adapt) = self.opts.adapt {
            for (i, &c) in cluster_ids.iter().enumerate() {
                // Stagger ticks so clusters don't adapt in lockstep.
                let offset = adapt.interval_secs * (1.0 + i as f64 / cluster_ids.len() as f64);
                let h = self.queue.schedule(
                    offset,
                    Event::AdaptTick {
                        cluster: c,
                        generation: 0,
                    },
                );
                self.adapt_h[c as usize] = h;
            }
        }
        // Compile the fault plan into first-class queue events (both
        // engines schedule them at this exact bootstrap point, so the
        // FIFO tie-break sequence numbers line up).
        for (index, time, start) in self.faults.schedule() {
            self.queue.schedule(time, Event::Fault { index, start });
        }
        // Scenario phases immediately after the fault schedule, so the
        // two engines' FIFO sequence numbers line up here too.
        for (index, time, start) in self.scenario.schedule() {
            self.queue.schedule(time, Event::Phase { index, start });
        }
        let _ = inst; // roles fully mirrored
    }

    fn schedule_peer_events(&mut self, peer: PeerId, lifespan: f64) {
        let generation = self.net.peer_generation(peer);
        self.reset_peer_handles(peer);
        let h = self
            .queue
            .schedule(self.now + lifespan, Event::PeerLeave { peer, generation });
        self.leave_h[peer as usize] = h;
        if self.config.query_rate > 0.0 {
            let dt = self.exp_delay(self.config.query_rate * self.scenario.query_rate_mult());
            let h = self
                .queue
                .schedule(self.now + dt, Event::Query { peer, generation });
            self.query_h[peer as usize] = h;
        }
        if self.config.update_rate > 0.0 {
            let dt = self.exp_delay(self.config.update_rate);
            let h = self
                .queue
                .schedule(self.now + dt, Event::Update { peer, generation });
            self.update_h[peer as usize] = h;
        }
    }

    fn exp_delay(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        -self.rng.unit_f64().max(f64::MIN_POSITIVE).ln() / rate
    }

    /// Runs until the configured duration, then finalizes accounting.
    pub fn run(&mut self) -> RawMetrics {
        self.run_to(self.opts.duration_secs);
        self.now = self.opts.duration_secs;
        self.finalize();
        self.obs.queue_high_water = self.queue.high_water();
        self.obs.profiled = self.opts.profile;
        self.faults_final = self.metrics.faults.clone();
        self.repair_final = self.metrics.repair.clone();
        self.overload_final = self.metrics.overload.clone();
        std::mem::take(&mut self.metrics)
    }

    /// Dispatches every event with time ≤ `bound`, leaving later events
    /// queued and the clock at the last dispatched event (no
    /// finalization). A checkpoint taken here and resumed with
    /// [`Simulation::restore`] continues bitwise identically: the first
    /// event past the bound is *peeked*, never popped, so the queue —
    /// including its free-list and handle generations — is exactly the
    /// state an uninterrupted run would carry across the same instant.
    pub fn run_to(&mut self, bound: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > bound {
                break;
            }
            let (t, event) = self.queue.pop().expect("peeked event vanished");
            self.now = t;
            self.dispatch(event);
        }
    }

    /// Whether overload control is active for this run (from the
    /// options on a fresh run, or the snapshot on a restored one).
    pub fn overload_active(&self) -> bool {
        self.overload.active()
    }

    /// Serializes the full mutable state of the run into a versioned,
    /// integrity-checked snapshot (see [`sp_model::snapshot`] and
    /// DESIGN.md §17).
    ///
    /// Everything a resumed run observes is captured bitwise: both RNG
    /// streams' positions, the event queue verbatim (slab, free list,
    /// heap layout — the free-list order decides future handle
    /// assignment), the network slabs with their generation counters,
    /// accumulated metrics, fault/scenario window state, and the
    /// per-slot timer handles. Pure scratch (flood stamps, BFS buffers,
    /// the partition monitor's epoch-rebuilt union-find) is *not*
    /// serialized — it is empty between events by construction.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        checkpoint::snap_config(&self.config, &mut w);
        checkpoint::snap_opts(&self.opts, &mut w);
        w.str(&self.faults.plan().to_json());
        w.str(&self.scenario_plan.to_json());
        w.f64(self.now);
        for s in self.rng.state() {
            w.u64(s);
        }
        self.queue.snap(&mut w, |e, w| e.snap(w));
        self.net.snap(&mut w);
        checkpoint::snap_raw_metrics(&self.metrics, &mut w);
        checkpoint::snap_sim_metrics(&self.obs, &mut w);
        self.faults.snap_state(&mut w);
        checkpoint::snap_repair_pending(&self.repair_pending, &mut w);
        self.scenario.snap_state(&mut w);
        self.overload.snap_state(&mut w);
        for handles in [
            &self.leave_h,
            &self.query_h,
            &self.update_h,
            &self.rejoin_h,
            &self.adapt_h,
        ] {
            w.len(handles.len());
            for h in handles {
                h.snap(&mut w);
            }
        }
        w.bool(self.in_fault_crash);
        w.seal(ENGINE_FAST)
    }

    /// Rebuilds a simulation from a snapshot produced by
    /// [`Simulation::snapshot`]. Resuming the result with
    /// [`run`](Self::run) (or further [`run_to`](Self::run_to) steps)
    /// yields metrics bitwise identical to the uninterrupted run.
    ///
    /// The embedded config and plans are re-validated, so a crafted or
    /// corrupted payload fails with a named [`SnapshotError`] instead
    /// of panicking; derived state (query model, fault windows,
    /// scenario tables) is rebuilt from them rather than trusted from
    /// the wire.
    pub fn restore(data: &[u8]) -> Result<Simulation, SnapshotError> {
        let mut r = SnapReader::open(data)?;
        r.expect_engine(ENGINE_FAST)?;
        let config = checkpoint::unsnap_config(&mut r)?;
        config
            .validate()
            .map_err(|e| SnapshotError::Malformed(format!("embedded config: {e}")))?;
        let opts = checkpoint::unsnap_opts(&mut r)?;
        let fault_plan = FaultPlan::from_json(r.str("fault plan json")?)
            .map_err(|e| SnapshotError::Malformed(format!("embedded fault plan: {e}")))?;
        fault_plan
            .validate()
            .map_err(|e| SnapshotError::Malformed(format!("embedded fault plan: {e}")))?;
        let scenario_plan = ScenarioPlan::from_json(r.str("scenario plan json")?)
            .map_err(|e| SnapshotError::Malformed(format!("embedded scenario plan: {e}")))?;
        scenario_plan
            .validate()
            .map_err(|e| SnapshotError::Malformed(format!("embedded scenario plan: {e}")))?;
        let now = r.f64("now")?;
        let mut rng_state = [0u64; 4];
        for s in &mut rng_state {
            *s = r.u64("rng state")?;
        }
        let queue = IndexedEventQueue::unsnap(&mut r, Event::unsnap)?;
        let net = SimNetwork::unsnap(&mut r)?;
        let metrics = checkpoint::unsnap_raw_metrics(&mut r)?;
        let obs = checkpoint::unsnap_sim_metrics(&mut r)?;
        let mut faults = FaultState::new(fault_plan, opts.fault_seed);
        faults.unsnap_state(&mut r)?;
        let repair_pending = checkpoint::unsnap_repair_pending(&mut r)?;
        let mut scenario = ScenarioState::new(&scenario_plan, opts.scenario_seed);
        scenario.unsnap_state(&mut r)?;
        let overload = OverloadState::unsnap_state(opts.overload, &mut r)?;
        let mut handle_vecs: [Vec<EventHandle>; 5] = Default::default();
        for handles in &mut handle_vecs {
            let n = r.len("handle vec len")?;
            handles.reserve_exact(n);
            for _ in 0..n {
                handles.push(EventHandle::unsnap(&mut r)?);
            }
        }
        let [leave_h, query_h, update_h, rejoin_h, adapt_h] = handle_vecs;
        let in_fault_crash = r.bool("in_fault_crash")?;
        r.finish()?;
        let model = QueryModel::from_config(&config.query_model);
        Ok(Simulation {
            net,
            queue,
            rng: SpRng::from_state(rng_state),
            now,
            config,
            model,
            opts,
            metrics,
            obs,
            faults,
            faults_final: FaultMetrics::default(),
            repair_final: RepairMetrics::default(),
            overload_final: OverloadMetrics::default(),
            repair_pending,
            monitor: PartitionMonitor::new(),
            in_fault_crash,
            scenario,
            overload,
            scenario_plan,
            leave_h,
            query_h,
            update_h,
            rejoin_h,
            adapt_h,
            scratch_partners: Vec::new(),
            scratch_clients: Vec::new(),
            scratch_members: Vec::new(),
            stamp_cur: 0,
            bfs_parent: Vec::new(),
            bfs_depth: Vec::new(),
            bfs_order: Vec::new(),
            bfs_candidates: Vec::new(),
            flood: Vec::new(),
        })
    }

    fn dispatch(&mut self, event: Event) {
        // Generation guard: an event for a recycled or dead slot is a
        // tombstone and must not run (nor count as delivered). The
        // indexed queue cancels most of these before they fire; the
        // ones that remain (e.g. recruit timers of a failed cluster)
        // are dropped here, exactly like the reference engine does.
        match event {
            Event::PeerLeave { peer, generation }
            | Event::Query { peer, generation }
            | Event::Update { peer, generation }
            | Event::ClientRejoin {
                peer, generation, ..
            } => {
                if self.net.peer(peer, generation).is_none() {
                    self.obs.stale += 1;
                    return;
                }
            }
            Event::RecruitPartner {
                cluster,
                generation,
            }
            | Event::AdaptTick {
                cluster,
                generation,
            }
            | Event::Repair {
                cluster,
                generation,
            } => {
                if self.net.cluster(cluster, generation).is_none() {
                    self.obs.stale += 1;
                    return;
                }
            }
            Event::PeerJoin | Event::Sample | Event::Fault { .. } | Event::Phase { .. } => {}
        }
        let kind = EventKind::of(&event);
        self.obs.record_delivered(kind);
        let timer = ProfileTimer::start(self.opts.profile);
        match event {
            Event::PeerJoin => self.on_join(),
            Event::PeerLeave { peer, generation } => self.on_leave(peer, generation),
            Event::Query { peer, generation } => self.on_query(peer, generation),
            Event::Update { peer, generation } => self.on_update(peer, generation),
            Event::ClientRejoin {
                peer,
                generation,
                orphaned_at,
                attempt,
            } => self.on_rejoin(peer, generation, orphaned_at, attempt),
            Event::RecruitPartner {
                cluster,
                generation,
            } => self.on_recruit(cluster, generation),
            Event::AdaptTick {
                cluster,
                generation,
            } => self.on_adapt(cluster, generation),
            Event::Repair {
                cluster,
                generation,
            } => self.on_repair(cluster, generation),
            Event::Sample => self.on_sample(),
            Event::Fault { index, start } => self.on_fault(index, start),
            Event::Phase { index, start } => self.on_phase(index, start),
        }
        timer.record(&mut self.obs, kind);
    }

    // ---- connection counting ----

    /// Open connections per partner of `cluster` — O(1) via the
    /// network's incrementally maintained neighbor-link cache. Exactly
    /// equal to the reference engine's O(degree) recomputation: the
    /// cache is an integer, so the f64 conversion is identical.
    fn partner_connections(&self, cluster: ClusterId) -> f64 {
        self.net.clusters[cluster as usize]
            .as_ref()
            .expect("cluster alive")
            .partner_connections_cached()
    }

    fn client_connections(&self, cluster: ClusterId) -> f64 {
        self.net.clusters[cluster as usize]
            .as_ref()
            .map(|c| c.partners.len() as f64)
            .unwrap_or(1.0)
    }

    // ---- message charging ----

    #[allow(clippy::too_many_arguments)]
    fn charge_pair(
        &mut self,
        from: PeerId,
        to: PeerId,
        bytes: f64,
        send_units: f64,
        recv_units: f64,
        from_conns: f64,
        to_conns: f64,
    ) {
        let mux = self.config.costs.multiplex_per_connection;
        if self.net.peer_mut(from).is_some() {
            self.net.counters[from as usize].send(bytes, send_units + mux * from_conns);
        }
        if self.net.peer_mut(to).is_some() {
            self.net.counters[to as usize].recv(bytes, recv_units + mux * to_conns);
        }
    }

    /// Picks the next round-robin partner of a cluster.
    fn rr_partner(&mut self, cluster: ClusterId) -> PeerId {
        rr_partner_net(&mut self.net, cluster)
    }

    /// Charges the failed attempts of one submission sequence: a
    /// dropped attempt costs the client its send (the packet left, the
    /// partner never saw it); a flaked attempt reached the partner
    /// (both endpoints pay) but produced no response. The per-counter
    /// charge sequences are order-insensitive here — every client-side
    /// charge in a sequence is the identical value — so batching drops
    /// before flakes is bitwise exact.
    #[allow(clippy::too_many_arguments)]
    fn charge_submission_failures(
        &mut self,
        client: PeerId,
        partner: PeerId,
        drops: u32,
        flakes: u32,
        bytes: f64,
        send_units: f64,
        recv_units: f64,
        c_conns: f64,
        p_conns: f64,
    ) {
        let mux = self.config.costs.multiplex_per_connection;
        for _ in 0..drops {
            if self.net.peer_mut(client).is_some() {
                self.net.counters[client as usize].send(bytes, send_units + mux * c_conns);
            }
        }
        for _ in 0..flakes {
            self.charge_pair(
                client, partner, bytes, send_units, recv_units, c_conns, p_conns,
            );
        }
    }

    // ---- event handlers ----

    fn on_join(&mut self) {
        let files = self.config.population.sample_files(&mut self.rng);
        let lifespan = self.config.population.sample_lifespan(&mut self.rng);
        // Post-draw transform: capacity class + active churn burst.
        let (files, lifespan) = self.scenario.admit_peer(files, lifespan);
        let target_clusters = self.config.num_clusters();
        let peer = self.net.add_peer(files, self.now);
        if self.net.num_alive_clusters() < target_clusters || self.net.num_alive_clusters() == 0 {
            // Become a new super-peer: index own collection, wire into
            // the overlay at the suggested outdegree.
            let c = self.net.add_cluster(peer, self.config.ttl);
            self.reset_cluster_handles(c);
            if let Some(cl) = self.net.cluster_mut(c) {
                cl.last_adapt_at = self.now;
            }
            if self.net.peer_mut(peer).is_some() {
                let units = self.config.costs.process_join_units(files as f64);
                self.net.counters[peer as usize].work(units);
            }
            let want = self.config.avg_outdegree.round().max(1.0) as usize;
            let mut wired = 0;
            let mut attempts = 0;
            while wired < want && attempts < want * 4 {
                attempts += 1;
                if let Some(nb) = self.net.random_cluster(&mut self.rng) {
                    if nb != c && self.net.add_edge(c, nb) {
                        wired += 1;
                    }
                } else {
                    break;
                }
            }
            let generation = self.net.clusters[c as usize]
                .as_ref()
                .expect("new cluster")
                .generation;
            // A fresh cluster starts with a lone partner; under a
            // redundancy policy it must recruit up to k like any
            // cluster that lost a partner would.
            if self.config.redundancy_k > 1 {
                self.queue.schedule(
                    self.now + self.opts.recruit_delay_secs,
                    Event::RecruitPartner {
                        cluster: c,
                        generation,
                    },
                );
            }
            if let Some(adapt) = self.opts.adapt {
                let h = self.queue.schedule(
                    self.now + adapt.interval_secs,
                    Event::AdaptTick {
                        cluster: c,
                        generation,
                    },
                );
                self.adapt_h[c as usize] = h;
            }
        } else {
            let c = self
                .net
                .random_cluster(&mut self.rng)
                .expect("clusters exist");
            self.attach_and_charge_join(peer, c);
        }
        self.schedule_peer_events(peer, lifespan);
    }

    /// Credits a peer's connected time as a client up to now and
    /// restarts its attachment clock. Call sites: immediately before a
    /// client is detached for migration, and immediately after a client
    /// is promoted to partner (its clock still holds the client
    /// period) — otherwise those connected seconds are lost from the
    /// availability accounting.
    fn credit_client_time(&mut self, peer: PeerId) {
        if let Some(p) = self.net.peer_mut(peer) {
            if p.cluster.is_some() {
                let attached_at = p.attached_at;
                p.attached_at = self.now;
                self.metrics.client_connected_secs += self.now - attached_at;
            }
        }
    }

    /// Attaches `peer` as a client of `c`, charging the join protocol
    /// (metadata to every partner).
    fn attach_and_charge_join(&mut self, peer: PeerId, c: ClusterId) {
        self.net.attach_client(peer, c);
        if let Some(p) = self.net.peer_mut(peer) {
            p.attached_at = self.now;
        }
        let files = self.net.peers[peer as usize]
            .as_ref()
            .expect("peer alive")
            .files as f64;
        let cm = self.config.costs;
        let mut partners = std::mem::take(&mut self.scratch_partners);
        partners.clear();
        partners.extend_from_slice(
            &self.net.clusters[c as usize]
                .as_ref()
                .expect("cluster alive")
                .partners,
        );
        let p_conns = self.partner_connections(c);
        let c_conns = self.client_connections(c);
        for &partner in &partners {
            self.charge_pair(
                peer,
                partner,
                cm.join_bytes(files),
                cm.send_join_units(files),
                cm.recv_join_units(files),
                c_conns,
                p_conns,
            );
            if self.net.peer_mut(partner).is_some() {
                self.net.counters[partner as usize].work(cm.process_join_units(files));
            }
        }
        self.scratch_partners = partners;
    }

    fn on_leave(&mut self, peer: PeerId, generation: u32) {
        if self.net.peer(peer, generation).is_none() {
            return;
        }
        let info = self.net.peers[peer as usize].as_ref().expect("alive");
        let is_partner = info.is_partner;
        let attached = info.cluster;
        let attached_at = info.attached_at;

        if let Some(cluster) = attached {
            if is_partner {
                let c = self.net.detach_partner(peer);
                let survivors = self.net.clusters[c as usize]
                    .as_ref()
                    .expect("cluster alive")
                    .partners
                    .len();
                if survivors == 0 {
                    if self.repair_engages(c) {
                        self.begin_headless(c);
                    } else {
                        self.fail_cluster(c);
                    }
                } else if survivors < self.config.redundancy_k {
                    let generation = self.net.clusters[c as usize]
                        .as_ref()
                        .expect("cluster alive")
                        .generation;
                    self.queue.schedule(
                        self.now + self.opts.recruit_delay_secs,
                        Event::RecruitPartner {
                            cluster: c,
                            generation,
                        },
                    );
                }
            } else {
                self.metrics.client_connected_secs += self.now - attached_at;
                self.net.detach_client(peer);
                self.dissolve_if_abandoned(cluster);
            }
            let _ = cluster;
        } else if !is_partner {
            // Left while orphaned: the whole orphan period counts as
            // disconnected.
            self.metrics.client_disconnected_secs += self.now - attached_at;
        }

        let exited = self.net.remove_peer(peer);
        // The departed peer's other timers (query/update/rejoin) would
        // pop as tombstones; cancel them instead. The leave timer
        // itself just fired, so its cancel is a no-op.
        self.cancel_handle(self.query_h[peer as usize]);
        self.cancel_handle(self.update_h[peer as usize]);
        self.cancel_handle(self.rejoin_h[peer as usize]);
        self.query_h[peer as usize] = EventHandle::NULL;
        self.update_h[peer as usize] = EventHandle::NULL;
        self.rejoin_h[peer as usize] = EventHandle::NULL;
        self.leave_h[peer as usize] = EventHandle::NULL;
        let alive_for = self.now - exited.joined_at;
        if alive_for > 1.0 {
            let rate = self.net.counters[peer as usize].mean_rate(alive_for);
            // Attribute by the role the peer held when it left —
            // detach_partner has already cleared `exited.is_partner`,
            // so the captured value is the truthful one.
            if is_partner {
                self.metrics.sp_in.push(rate.in_bw);
                self.metrics.sp_out.push(rate.out_bw);
                self.metrics.sp_proc.push(rate.proc);
            } else {
                self.metrics.client_in.push(rate.in_bw);
                self.metrics.client_out.push(rate.out_bw);
                self.metrics.client_proc.push(rate.proc);
            }
        }
        // Stable population: a departure triggers a fresh arrival.
        let dt = self.exp_delay(1.0 / self.opts.replenish_mean_secs.max(1e-9));
        self.queue.schedule(self.now + dt, Event::PeerJoin);
    }

    /// All partners died: orphan every client and dissolve the cluster.
    fn fail_cluster(&mut self, c: ClusterId) {
        self.metrics.cluster_failures += 1;
        let mut clients = std::mem::take(&mut self.scratch_clients);
        clients.clear();
        clients.extend_from_slice(
            &self.net.clusters[c as usize]
                .as_ref()
                .expect("cluster alive")
                .clients,
        );
        for &client in &clients {
            let attached_at = self.net.peers[client as usize]
                .as_ref()
                .expect("client alive")
                .attached_at;
            self.metrics.client_connected_secs += self.now - attached_at;
            self.net.detach_client(client);
            if let Some(p) = self.net.peer_mut(client) {
                p.attached_at = self.now; // start of the orphan period
            }
            self.metrics.orphan_events += 1;
            let generation = self.net.peer_generation(client);
            let dt = self.exp_delay(1.0 / self.opts.rejoin_mean_secs.max(1e-9));
            let h = self.queue.schedule(
                self.now + dt,
                Event::ClientRejoin {
                    peer: client,
                    generation,
                    orphaned_at: self.now,
                    attempt: 1,
                },
            );
            self.rejoin_h[client as usize] = h;
        }
        self.scratch_clients = clients;
        self.cancel_handle(self.adapt_h[c as usize]);
        self.adapt_h[c as usize] = EventHandle::NULL;
        self.ov_cluster_down(c);
        self.net.remove_cluster(c);
    }

    // ---- overlay repair (see `crate::repair`) ----

    /// Whether a cluster that just lost its last partner enters a
    /// headless repair window instead of dissolving: only under a
    /// promoting policy, only for fault-injected crashes (organic
    /// churn keeps the legacy behavior, so an empty fault plan is
    /// bitwise inert), and only when a client remains to be elected.
    fn repair_engages(&self, c: ClusterId) -> bool {
        self.opts.repair.promotes()
            && self.in_fault_crash
            && !self.net.clusters[c as usize]
                .as_ref()
                .expect("cluster alive")
                .clients
                .is_empty()
    }

    /// Every partner was killed by fault injection and the policy
    /// promotes: the cluster enters a headless window instead of
    /// dissolving. Clients stay attached (their queries are charged as
    /// lost), the overlay edges stay up, and the repair election is
    /// scheduled after the detection delay.
    fn begin_headless(&mut self, c: ClusterId) {
        self.metrics.cluster_failures += 1;
        let generation = self.net.clusters[c as usize]
            .as_ref()
            .expect("cluster alive")
            .generation;
        self.repair_pending[c as usize] = RepairPending {
            active: true,
            down_since: self.now,
            adapt_stalled: false,
        };
        self.queue.schedule(
            self.now + self.opts.repair_delay_secs,
            Event::Repair {
                cluster: c,
                generation,
            },
        );
    }

    /// A headless cluster whose last client departed has nobody left
    /// to elect: dissolve it like an unrepaired failure. The pending
    /// `Event::Repair` goes stale with the generation bump.
    fn dissolve_if_abandoned(&mut self, c: ClusterId) {
        if !self.repair_pending[c as usize].active {
            return;
        }
        let empty = {
            let cl = self.net.clusters[c as usize].as_ref().expect("alive");
            cl.partners.is_empty() && cl.clients.is_empty()
        };
        if !empty {
            return;
        }
        self.repair_pending[c as usize] = RepairPending::default();
        self.metrics.repair.abandoned += 1;
        self.cancel_handle(self.adapt_h[c as usize]);
        self.adapt_h[c as usize] = EventHandle::NULL;
        self.ov_cluster_down(c);
        self.net.remove_cluster(c);
    }

    /// The repair election: promote the highest-capacity client in
    /// place (so it inherits the dead super-peer's neighbor links),
    /// re-index the adopted clients at the paper's per-metadata join
    /// cost, and — policy permitting — recruit a replacement partner
    /// to restore k-redundancy.
    fn on_repair(&mut self, cluster: ClusterId, generation: u32) {
        let pending = self.repair_pending[cluster as usize];
        self.repair_pending[cluster as usize] = RepairPending::default();
        let (has_partner, has_client) = {
            let c = self.net.clusters[cluster as usize].as_ref().expect("alive");
            (!c.partners.is_empty(), !c.clients.is_empty())
        };
        if has_partner {
            return; // already healed through another path
        }
        if !has_client {
            // Every client left during the headless window: nobody to
            // elect, dissolve like an unrepaired failure.
            self.metrics.repair.abandoned += 1;
            self.cancel_handle(self.adapt_h[cluster as usize]);
            self.adapt_h[cluster as usize] = EventHandle::NULL;
            self.ov_cluster_down(cluster);
            self.net.remove_cluster(cluster);
            return;
        }
        // Election: highest capacity (most files shared), ties broken
        // by lowest peer id — a pure fold over the client list, no RNG
        // draw, the same winner in both engines.
        let winner = {
            let c = self.net.clusters[cluster as usize].as_ref().expect("alive");
            let mut best = c.clients[0];
            let mut best_files = self.net.peers[best as usize]
                .as_ref()
                .expect("client alive")
                .files;
            for &cand in &c.clients[1..] {
                let files = self.net.peers[cand as usize]
                    .as_ref()
                    .expect("client alive")
                    .files;
                if files > best_files || (files == best_files && cand < best) {
                    best = cand;
                    best_files = files;
                }
            }
            best
        };
        self.net
            .promote_specific(cluster, winner)
            .expect("elected client is attached");
        self.credit_client_time(winner);
        let cm = self.config.costs;
        // The promoted peer rebuilds an index from scratch: its own
        // collection first (same charge as a fresh super-peer in
        // `on_join`) ...
        let own_files = self.net.peers[winner as usize]
            .as_ref()
            .expect("alive")
            .files as f64;
        if self.net.peer_mut(winner).is_some() {
            self.net.counters[winner as usize].work(cm.process_join_units(own_files));
        }
        // ... then every adopted client re-uploads its metadata at the
        // Table 2 join cost, like `attach_and_charge_join` with the
        // promoted peer as the sole partner.
        let mut clients = std::mem::take(&mut self.scratch_clients);
        clients.clear();
        clients.extend_from_slice(
            &self.net.clusters[cluster as usize]
                .as_ref()
                .expect("alive")
                .clients,
        );
        let p_conns = self.partner_connections(cluster);
        let c_conns = self.client_connections(cluster);
        for &cl in &clients {
            let files = self.net.peers[cl as usize]
                .as_ref()
                .expect("client alive")
                .files as f64;
            self.charge_pair(
                cl,
                winner,
                cm.join_bytes(files),
                cm.send_join_units(files),
                cm.recv_join_units(files),
                c_conns,
                p_conns,
            );
            if self.net.peer_mut(winner).is_some() {
                self.net.counters[winner as usize].work(cm.process_join_units(files));
            }
            self.metrics.repair.reindexed_clients += 1;
            self.metrics.repair.reindex_bytes += cm.join_bytes(files);
        }
        self.scratch_clients = clients;
        self.metrics.repair.promotions += 1;
        self.metrics
            .repair
            .time_to_repair
            .record(self.now - pending.down_since);
        // Restart the adaptation loop the headless window stalled.
        if pending.adapt_stalled {
            if let Some(adapt) = self.opts.adapt {
                if let Some(c) = self.net.cluster_mut(cluster) {
                    c.growth = 0;
                    c.max_response_hop = 0;
                    c.last_adapt_at = self.now;
                }
                let h = self.queue.schedule(
                    self.now + adapt.interval_secs,
                    Event::AdaptTick {
                        cluster,
                        generation,
                    },
                );
                self.adapt_h[cluster as usize] = h;
            }
        }
        // Restore k-redundancy through the ordinary recruitment
        // machinery (full index mirroring charged by
        // `charge_index_transfer`).
        if self.opts.repair.recruits_partner() && self.config.redundancy_k > 1 {
            self.metrics.repair.partner_recruitments += 1;
            self.queue.schedule(
                self.now + self.opts.recruit_delay_secs,
                Event::RecruitPartner {
                    cluster,
                    generation,
                },
            );
        }
    }

    /// Rebuilds the partition monitor over the live super-peer overlay
    /// and returns (component count, largest-component peer fraction).
    /// Headless clusters count as live nodes with their edges intact:
    /// their clients are still attached and recovery is in progress.
    /// Orphaned peers sit in no component and only swell the
    /// denominator.
    fn observe_components(&mut self) -> (u32, f64) {
        let Simulation { net, monitor, .. } = self;
        monitor.begin_epoch();
        for c in net.alive_clusters() {
            let cl = net.clusters[c as usize].as_ref().expect("alive");
            monitor.insert(c, cl.size() as u64);
        }
        for c in net.alive_clusters() {
            let cl = net.clusters[c as usize].as_ref().expect("alive");
            for &nb in &cl.neighbors {
                monitor.union(c, nb);
            }
        }
        let total = net.peers.iter().filter(|p| p.is_some()).count() as u64;
        let frac = if total == 0 {
            1.0
        } else {
            monitor.largest_weight() as f64 / total as f64
        };
        (monitor.component_count(), frac)
    }

    /// Appends one reachability observation to the repair timeline.
    fn observe_reachability(&mut self) {
        let (components, frac) = self.observe_components();
        self.metrics.repair.reachability.push(ReachPoint {
            time: self.now,
            components,
            reachable_fraction: frac,
        });
    }

    fn on_rejoin(&mut self, peer: PeerId, generation: u32, orphaned_at: SimTime, attempt: u32) {
        let Some(info) = self.net.peer(peer, generation) else {
            return;
        };
        if info.cluster.is_some() {
            return; // already re-homed (e.g. by an adaptive action)
        }
        // The connection protocol is a message exchange like any other:
        // while a loss window is active, this attempt's handshake can
        // be dropped in flight (fault stream, drawn after the discovery
        // pick so the main RNG sequence is untouched).
        let target = self.net.random_cluster(&mut self.rng);
        // Discovery can hand back a headless cluster (super-peer dead,
        // repair pending): there is no partner to answer the handshake.
        // Re-resolve at the next tick *without* burning a retry-budget
        // attempt — the client never reached a live peer to be refused
        // by. Unreachable without a promoting repair policy.
        if let Some(c) = target {
            if self.net.clusters[c as usize]
                .as_ref()
                .expect("alive")
                .partners
                .is_empty()
            {
                let dt = self.exp_delay(1.0 / self.opts.rejoin_mean_secs.max(1e-9));
                let h = self.queue.schedule(
                    self.now + dt,
                    Event::ClientRejoin {
                        peer,
                        generation,
                        orphaned_at,
                        attempt,
                    },
                );
                self.rejoin_h[peer as usize] = h;
                return;
            }
        }
        let delivered =
            target.is_some() && !(self.faults.drops_possible() && self.faults.draw_drop());
        match target {
            Some(c) if delivered => {
                let downtime = self.now - orphaned_at;
                self.metrics.client_disconnected_secs += downtime;
                self.metrics.downtime.push(downtime);
                self.metrics.faults.reconnect.record(downtime);
                self.rejoin_h[peer as usize] = EventHandle::NULL;
                self.attach_and_charge_join(peer, c);
            }
            _ => {
                if target.is_some() {
                    self.metrics.faults.injected_drop += 1;
                }
                if self
                    .faults
                    .rejoin_cap()
                    .is_some_and(|cap| attempt >= cap.max(1))
                {
                    self.give_up_rejoin(peer, orphaned_at);
                } else {
                    let dt = self.exp_delay(1.0 / self.opts.rejoin_mean_secs.max(1e-9));
                    let h = self.queue.schedule(
                        self.now + dt,
                        Event::ClientRejoin {
                            peer,
                            generation,
                            orphaned_at,
                            attempt: attempt + 1,
                        },
                    );
                    self.rejoin_h[peer as usize] = h;
                }
            }
        }
    }

    /// An orphaned client exhausted the fault plan's rejoin-attempt
    /// cap: it departs for good, mirroring the orphaned-leave
    /// accounting (and, like any departure, triggers a replenishing
    /// arrival so the population stays stable).
    fn give_up_rejoin(&mut self, peer: PeerId, orphaned_at: SimTime) {
        self.metrics.client_disconnected_secs += self.now - orphaned_at;
        self.metrics.faults.orphan_gave_up += 1;
        let exited = self.net.remove_peer(peer);
        self.cancel_handle(self.leave_h[peer as usize]);
        self.cancel_handle(self.query_h[peer as usize]);
        self.cancel_handle(self.update_h[peer as usize]);
        self.leave_h[peer as usize] = EventHandle::NULL;
        self.query_h[peer as usize] = EventHandle::NULL;
        self.update_h[peer as usize] = EventHandle::NULL;
        self.rejoin_h[peer as usize] = EventHandle::NULL;
        let alive_for = self.now - exited.joined_at;
        if alive_for > 1.0 {
            let rate = self.net.counters[peer as usize].mean_rate(alive_for);
            self.metrics.client_in.push(rate.in_bw);
            self.metrics.client_out.push(rate.out_bw);
            self.metrics.client_proc.push(rate.proc);
        }
        let dt = self.exp_delay(1.0 / self.opts.replenish_mean_secs.max(1e-9));
        self.queue.schedule(self.now + dt, Event::PeerJoin);
    }

    fn on_recruit(&mut self, cluster: ClusterId, generation: u32) {
        if self.net.cluster(cluster, generation).is_none() {
            return;
        }
        let have = self.net.clusters[cluster as usize]
            .as_ref()
            .expect("alive")
            .partners
            .len();
        if have >= self.config.redundancy_k {
            return;
        }
        if have == 0 {
            // Headless repair window: the deterministic election owns
            // the promotion (and its charging); recruitment resumes
            // only after it runs.
            return;
        }
        match self.net.promote_client(cluster, &mut self.rng) {
            Some(new_partner) => {
                self.credit_client_time(new_partner);
                self.charge_index_transfer(cluster, new_partner);
                // Still short (e.g. two partners died)? Keep recruiting.
                let have = self.net.clusters[cluster as usize]
                    .as_ref()
                    .expect("alive")
                    .partners
                    .len();
                if have < self.config.redundancy_k {
                    self.queue.schedule(
                        self.now + self.opts.recruit_delay_secs,
                        Event::RecruitPartner {
                            cluster,
                            generation,
                        },
                    );
                }
            }
            None => {
                // No client to promote yet; retry later.
                self.queue.schedule(
                    self.now + self.opts.recruit_delay_secs,
                    Event::RecruitPartner {
                        cluster,
                        generation,
                    },
                );
            }
        }
    }

    /// A freshly promoted partner downloads the full cluster index from
    /// a co-partner (or rebuilds from its own collection if alone).
    fn charge_index_transfer(&mut self, cluster: ClusterId, new_partner: PeerId) {
        let cm = self.config.costs;
        let (total_files, donor) = {
            let c = self.net.clusters[cluster as usize].as_ref().expect("alive");
            let donor = c.partners.iter().copied().find(|&p| p != new_partner);
            (c.total_files as f64, donor)
        };
        let p_conns = self.partner_connections(cluster);
        match donor {
            Some(d) => {
                self.charge_pair(
                    d,
                    new_partner,
                    cm.join_bytes(total_files),
                    cm.send_join_units(total_files),
                    cm.recv_join_units(total_files),
                    p_conns,
                    p_conns,
                );
                if self.net.peer_mut(new_partner).is_some() {
                    self.net.counters[new_partner as usize]
                        .work(cm.process_join_units(total_files));
                }
            }
            None => {
                if self.net.peer_mut(new_partner).is_some() {
                    self.net.counters[new_partner as usize]
                        .work(cm.process_join_units(total_files));
                }
            }
        }
    }

    fn on_query(&mut self, peer: PeerId, generation: u32) {
        let Some(info) = self.net.peer(peer, generation) else {
            return;
        };
        let source_cluster = info.cluster;
        let is_partner = info.is_partner;
        // Always reschedule the next query first.
        let dt = self.exp_delay(self.config.query_rate * self.scenario.query_rate_mult());
        let h = self
            .queue
            .schedule(self.now + dt, Event::Query { peer, generation });
        self.query_h[peer as usize] = h;
        let Some(mut sc) = source_cluster else {
            return; // orphaned client cannot search
        };

        // Deterministic re-homing: a client that has struck out
        // against a persistently saturated super-peer detaches and
        // joins the shallowest-queue live cluster before submitting,
        // paying the Table 2 join cost. Target choice is a pure fold
        // (min queue depth, ties to lowest cluster id) — no RNG draw,
        // the same winner in both engines.
        if !is_partner && self.overload.active() && self.overload.should_rehome(peer) {
            if let Some(target) = self.rehome_target(sc) {
                let files = self.net.peers[peer as usize]
                    .as_ref()
                    .expect("peer alive")
                    .files as f64;
                let partners_len = self.net.clusters[target as usize]
                    .as_ref()
                    .expect("alive")
                    .partners
                    .len();
                self.credit_client_time(peer);
                self.net.detach_client(peer);
                self.attach_and_charge_join(peer, target);
                self.metrics.overload.rehomed += 1;
                self.metrics.overload.rehome_bytes +=
                    partners_len as f64 * self.config.costs.join_bytes(files);
                self.overload.rehomed(peer);
                sc = target;
            }
        }

        let cm = self.config.costs;
        let j = self.model.sample_query(&mut self.rng);
        // Post-draw transform: rotate the Zipf head while a flash
        // crowd is active (identity otherwise).
        let j = self.scenario.shift_query(j, self.model.num_classes());
        let qbytes = cm.query_bytes();
        let (send_q, recv_q) = (cm.send_query_units(), cm.recv_query_units());

        // Client → super-peer submission, driven through the fault
        // plan's timeout/retry/failover state machine. Partner-sourced
        // queries submit to themselves: always a draw-free direct hit.
        if is_partner {
            self.metrics.faults.record_submission(&Submission::DIRECT);
        } else {
            let partners_len = self.net.clusters[sc as usize]
                .as_ref()
                .expect("alive")
                .partners
                .len();
            if partners_len == 0 {
                // Headless window: the query is issued into the void
                // and lost — charged on both sides of the conservation
                // ledger, no RNG draw, no message cost (nothing ever
                // leaves the client's discovery cache).
                self.metrics.faults.queries_issued += 1;
                self.metrics.faults.queries_lost += 1;
                self.metrics.repair.queries_during_outage += 1;
                return;
            }
            let sub = self.faults.submit_query(partners_len);
            let primary = self.rr_partner(sc);
            let c_conns = self.client_connections(sc);
            let p_conns = self.partner_connections(sc);
            self.charge_submission_failures(
                peer,
                primary,
                sub.primary_drops,
                sub.primary_flakes,
                qbytes,
                send_q,
                recv_q,
                c_conns,
                p_conns,
            );
            let lost = match sub.outcome {
                QueryOutcome::Direct | QueryOutcome::Retry => {
                    self.charge_pair(peer, primary, qbytes, send_q, recv_q, c_conns, p_conns);
                    false
                }
                QueryOutcome::Failover => {
                    let failover = self.rr_partner(sc);
                    self.charge_submission_failures(
                        peer,
                        failover,
                        sub.failover_drops,
                        sub.failover_flakes,
                        qbytes,
                        send_q,
                        recv_q,
                        c_conns,
                        p_conns,
                    );
                    self.charge_pair(peer, failover, qbytes, send_q, recv_q, c_conns, p_conns);
                    false
                }
                QueryOutcome::Lost => {
                    if partners_len >= 2 {
                        let failover = self.rr_partner(sc);
                        self.charge_submission_failures(
                            peer,
                            failover,
                            sub.failover_drops,
                            sub.failover_flakes,
                            qbytes,
                            send_q,
                            recv_q,
                            c_conns,
                            p_conns,
                        );
                    }
                    true
                }
            };
            self.metrics.faults.record_submission(&sub);
            if lost {
                return; // every attempt failed: the query never floods
            }
        }

        // Overload admission: the submission reached a live partner,
        // so the super-peer now decides whether to take the work.
        // Rejected queries never flood (the client's copy dies at the
        // super-peer's door) and land in the rejected ledger; admitted
        // ones may flood with a brownout-degraded TTL/fanout. The
        // whole gate is draw-free, so the empty policy is bitwise
        // inert.
        let ttl = self.net.clusters[sc as usize].as_ref().expect("alive").ttl;
        let (ttl, fanout_limit) = if self.overload.active() {
            match self.overload.admit(
                sc,
                peer,
                is_partner,
                self.now,
                ttl,
                &mut self.metrics.overload,
            ) {
                Admission::Rejected => return,
                Admission::Admitted { ttl, fanout_limit } => (ttl, fanout_limit),
            }
        } else {
            (ttl, None)
        };

        // Flood over the cluster overlay, charging every transmission
        // inline as it is discovered (see `flood_and_charge` for why
        // that is exactly equivalent to the reference engine's
        // record-then-replay). A brownout fanout cap rides the
        // forwarding policy for just this flood.
        let saved_policy = self.opts.forward_policy;
        if let Some(f) = fanout_limit {
            let cap = match saved_policy {
                ForwardPolicy::FloodAll => f as usize,
                ForwardPolicy::RandomSubset { fanout } => fanout.min(f as usize),
            };
            self.opts.forward_policy = ForwardPolicy::RandomSubset { fanout: cap };
        }
        self.flood_and_charge(sc, ttl, qbytes, send_q, recv_q);
        self.opts.forward_policy = saved_policy;
        let order = std::mem::take(&mut self.bfs_order);

        // Process queries, sample results, route responses.
        let f_j = self.model.selection_power(j);
        // Most probes yield zero results; hoist that cost out of the
        // loop (same function, same input — bitwise identical).
        let probe_units_zero = cm.process_query_units(0.0);
        let mux = cm.multiplex_per_connection;
        let mut total_results = 0u64;
        let mut deepest_response = 0u16;
        {
            // Same disjoint-borrow split as `flood_and_charge`: the
            // probe loop reads the per-flood snapshot arrays (file
            // totals, first partners) instead of dereferencing each
            // cluster again, and defers k = 1 rr advances to the flush
            // below.
            let Simulation {
                net,
                rng,
                opts,
                bfs_parent,
                bfs_depth,
                flood,
                ..
            } = self;
            // Window accumulators are only observed by adapt ticks;
            // skip them when adaptation is off (see `LoadCounters`).
            let windows = opts.adapt.is_some();
            for &v in &order {
                let vu = v as usize;
                // Index probe + sampled results. The Poisson draw
                // replicates `Poisson::sample` exactly — same
                // branches, same RNG call sites — skipping the
                // cross-crate constructor + trait call on the hottest
                // loop of the simulation.
                let fs = &mut flood[vu];
                let lambda = f_j * fs.files as f64;
                let results = if lambda == 0.0 {
                    0
                } else if lambda < 30.0 {
                    // Knuth's product method, verbatim from `Poisson`.
                    let limit = (-lambda).exp();
                    let mut product = rng.unit_f64();
                    let mut count = 0u64;
                    while product > limit {
                        product *= rng.unit_f64();
                        count += 1;
                    }
                    count
                } else {
                    let x = lambda + lambda.sqrt() * Normal::standard(rng);
                    x.round().max(0.0) as u64
                };
                let prober = if fs.len == 1 {
                    fs.bump += 1;
                    fs.partner
                } else {
                    rr_partner_net(net, v)
                };
                let probe_units = if results == 0 {
                    probe_units_zero
                } else {
                    cm.process_query_units(results as f64)
                };
                let pc = &mut net.counters[prober as usize];
                if windows {
                    pc.work(probe_units);
                } else {
                    pc.work_unwindowed(probe_units);
                }
                total_results += results;
                if results == 0 {
                    continue;
                }
                deepest_response = deepest_response.max(bfs_depth[vu]);
                // Response travels the reverse path to the source.
                let members = net.clusters[vu].as_ref().expect("alive").size() as u64;
                let addrs = results.min(members) as f64;
                let rbytes = cm.response_bytes(addrs, results as f64);
                let r_send = cm.send_response_units(addrs, results as f64);
                let r_recv = cm.recv_response_units(addrs, results as f64);
                // The response retraces flood edges, so every cluster
                // on the walk is in this flood's snapshot: resolve the
                // k = 1 partners from the slots (deferring the rr
                // advance) exactly like the probe above. Responses
                // outnumber flood transmissions on this workload, so
                // skipping the per-hop cluster dereferences matters.
                let mut hop = v;
                while hop != sc {
                    let parent = bfs_parent[hop as usize];
                    let fh = &mut flood[hop as usize];
                    let s_conns = fh.conns;
                    let sender = if fh.len == 1 {
                        fh.bump += 1;
                        fh.partner
                    } else {
                        rr_partner_net(net, hop)
                    };
                    let fp = &mut flood[parent as usize];
                    let r_conns = fp.conns;
                    let receiver = if fp.len == 1 {
                        fp.bump += 1;
                        fp.partner
                    } else {
                        rr_partner_net(net, parent)
                    };
                    charge_pair_net(
                        net, sender, receiver, rbytes, r_send, r_recv, s_conns, r_conns, mux,
                    );
                    hop = parent;
                }
                // Deliver to a client source. The source cluster's
                // partner count doubles as the client's connection
                // count (one link per partner).
                if !is_partner {
                    let fsc = &mut flood[sc as usize];
                    let p_conns = fsc.conns;
                    let c_conns = f64::from(fsc.len);
                    let partner = if fsc.len == 1 {
                        fsc.bump += 1;
                        fsc.partner
                    } else {
                        rr_partner_net(net, sc)
                    };
                    charge_pair_net(
                        net, partner, peer, rbytes, r_send, r_recv, p_conns, c_conns, mux,
                    );
                }
            }
            // Flush the rr advances deferred by the flood and the
            // probe loop: one cluster write per visited cluster
            // instead of one per transmission. Exact because partner
            // lists cannot change mid-event, a k = 1 cluster's rr
            // cursor is never read while its bump is pending, and the
            // direct rr increments of the response path commute with
            // the pending additions.
            for &v in &order {
                let vu = v as usize;
                let bump = flood[vu].bump;
                if bump != 0 {
                    flood[vu].bump = 0;
                    let c = net.clusters[vu].as_mut().expect("cluster alive");
                    c.rr = c.rr.wrapping_add(bump as usize);
                }
            }
        }
        if let Some(c) = self.net.cluster_mut(sc) {
            c.max_response_hop = c.max_response_hop.max(deepest_response);
        }
        self.bfs_order = order;
        self.metrics.queries += 1;
        self.metrics.results.push(total_results as f64);
    }

    fn on_update(&mut self, peer: PeerId, generation: u32) {
        let Some(info) = self.net.peer(peer, generation) else {
            return;
        };
        let cluster = info.cluster;
        let is_partner = info.is_partner;
        let dt = self.exp_delay(self.config.update_rate);
        let h = self
            .queue
            .schedule(self.now + dt, Event::Update { peer, generation });
        self.update_h[peer as usize] = h;
        let Some(c) = cluster else { return };
        let cm = self.config.costs;
        let mut partners = std::mem::take(&mut self.scratch_partners);
        partners.clear();
        partners.extend_from_slice(
            &self.net.clusters[c as usize]
                .as_ref()
                .expect("alive")
                .partners,
        );
        let p_conns = self.partner_connections(c);
        if is_partner {
            if self.net.peer_mut(peer).is_some() {
                self.net.counters[peer as usize].work(cm.process_update_units());
            }
            for &other in partners.iter().filter(|&&p| p != peer) {
                self.charge_pair(
                    peer,
                    other,
                    cm.update_bytes(),
                    cm.send_update_units(),
                    cm.recv_update_units(),
                    p_conns,
                    p_conns,
                );
                if self.net.peer_mut(other).is_some() {
                    self.net.counters[other as usize].work(cm.process_update_units());
                }
            }
        } else {
            let c_conns = self.client_connections(c);
            for &partner in &partners {
                self.charge_pair(
                    peer,
                    partner,
                    cm.update_bytes(),
                    cm.send_update_units(),
                    cm.recv_update_units(),
                    c_conns,
                    p_conns,
                );
                if self.net.peer_mut(partner).is_some() {
                    self.net.counters[partner as usize].work(cm.process_update_units());
                }
            }
        }
        self.scratch_partners = partners;
    }

    fn on_adapt(&mut self, cluster: ClusterId, generation: u32) {
        let Some(adapt) = self.opts.adapt else { return };
        if self.net.cluster(cluster, generation).is_none() {
            return;
        }
        if self.net.clusters[cluster as usize]
            .as_ref()
            .expect("alive")
            .partners
            .is_empty()
        {
            // Headless window: no partner to measure or act. Stall the
            // adaptation loop; the repair election restarts it.
            self.repair_pending[cluster as usize].adapt_stalled = true;
            self.adapt_h[cluster as usize] = EventHandle::NULL;
            return;
        }
        // Average the partners' window loads over the *measured* window
        // length — ticks are staggered, so the first window is longer
        // than the nominal interval.
        let mut partners = std::mem::take(&mut self.scratch_members);
        partners.clear();
        let window_secs = {
            let c = self.net.clusters[cluster as usize].as_ref().expect("alive");
            partners.extend_from_slice(&c.partners);
            (self.now - c.last_adapt_at).max(1e-9)
        };
        let mut load = Load::ZERO;
        for &p in &partners {
            if self.net.peer_mut(p).is_some() {
                load += self.net.counters[p as usize].take_window(window_secs);
            }
        }
        load = load.scaled(1.0 / partners.len().max(1) as f64);
        // Give the scratch back before applying an action: coalesce
        // re-uses it for the dissolved cluster's partner list.
        partners.clear();
        self.scratch_members = partners;
        let view = {
            let c = self.net.clusters[cluster as usize].as_ref().expect("alive");
            LocalView {
                load,
                limit: adapt.limit,
                num_clients: c.clients.len(),
                num_neighbors: c.neighbors.len(),
                num_partners: c.partners.len(),
                ttl: c.ttl,
                max_response_hop: c.max_response_hop,
                cluster_growing: c.growth > 0,
            }
        };
        if let Some(&action) = advise(&view).first() {
            self.apply_local_action(cluster, action);
            self.metrics.adapt_actions += 1;
        }
        // Reset observation window.
        if let Some(c) = self.net.cluster_mut(cluster) {
            c.growth = 0;
            c.max_response_hop = 0;
            c.last_adapt_at = self.now;
            let generation = c.generation;
            let h = self.queue.schedule(
                self.now + adapt.interval_secs,
                Event::AdaptTick {
                    cluster,
                    generation,
                },
            );
            self.adapt_h[cluster as usize] = h;
        }
    }

    fn apply_local_action(&mut self, cluster: ClusterId, action: LocalAction) {
        match action {
            LocalAction::AcceptClients => {}
            LocalAction::PromotePartner => {
                if let Some(p) = self.net.promote_client(cluster, &mut self.rng) {
                    self.credit_client_time(p);
                    self.charge_index_transfer(cluster, p);
                }
            }
            LocalAction::SplitCluster => self.split_cluster(cluster),
            LocalAction::Coalesce => self.coalesce_cluster(cluster),
            LocalAction::IncreaseOutdegree => {
                if let Some(nb) = self.net.random_cluster(&mut self.rng) {
                    self.net.add_edge(cluster, nb);
                }
            }
            LocalAction::DecreaseTtl => {
                if let Some(c) = self.net.cluster_mut(cluster) {
                    if c.ttl > 1 {
                        c.ttl -= 1;
                    }
                }
            }
            LocalAction::Resign => self.coalesce_cluster(cluster),
        }
    }

    /// Splits half the clients into a fresh cluster led by a promoted
    /// client.
    fn split_cluster(&mut self, cluster: ClusterId) {
        let mut movers = std::mem::take(&mut self.scratch_clients);
        movers.clear();
        {
            let Some(c) = self.net.cluster_mut(cluster) else {
                self.scratch_clients = movers;
                return;
            };
            if c.clients.len() < 2 {
                self.scratch_clients = movers;
                return;
            }
            let half = c.clients.len() / 2;
            movers.extend_from_slice(&c.clients[..half]);
        }
        // The first mover leads the new cluster.
        let lead = movers[0];
        self.credit_client_time(lead);
        self.net.detach_client(lead);
        let files = self.net.peers[lead as usize].as_ref().expect("alive").files as f64;
        let new_cluster = self.net.add_cluster(lead, {
            self.net.clusters[cluster as usize]
                .as_ref()
                .expect("alive")
                .ttl
        });
        self.reset_cluster_handles(new_cluster);
        if let Some(cl) = self.net.cluster_mut(new_cluster) {
            cl.last_adapt_at = self.now;
        }
        if self.net.peer_mut(lead).is_some() {
            self.net.counters[lead as usize].work(self.config.costs.process_join_units(files));
        }
        self.net.add_edge(new_cluster, cluster);
        // Inherit one neighbor to stay searchable.
        if let Some(&nb) = self.net.clusters[cluster as usize]
            .as_ref()
            .expect("alive")
            .neighbors
            .first()
        {
            self.net.add_edge(new_cluster, nb);
        }
        for &mover in movers.iter().skip(1) {
            self.credit_client_time(mover);
            self.net.detach_client(mover);
            self.attach_and_charge_join(mover, new_cluster);
        }
        self.scratch_clients = movers;
        let generation = self.net.clusters[new_cluster as usize]
            .as_ref()
            .expect("alive")
            .generation;
        // The offspring starts with a lone partner; recruit up to k.
        if self.config.redundancy_k > 1 {
            self.queue.schedule(
                self.now + self.opts.recruit_delay_secs,
                Event::RecruitPartner {
                    cluster: new_cluster,
                    generation,
                },
            );
        }
        if let Some(adapt) = self.opts.adapt {
            let h = self.queue.schedule(
                self.now + adapt.interval_secs,
                Event::AdaptTick {
                    cluster: new_cluster,
                    generation,
                },
            );
            self.adapt_h[new_cluster as usize] = h;
        }
    }

    /// Dissolves the cluster into a neighbor (or any random cluster):
    /// clients and partners all become clients elsewhere.
    fn coalesce_cluster(&mut self, cluster: ClusterId) {
        let target = {
            // A headless cluster (repair pending) cannot absorb the
            // members — nobody would index them; the filter is inert
            // without a promoting repair policy.
            let has_partners = |x: ClusterId| {
                !self.net.clusters[x as usize]
                    .as_ref()
                    .expect("alive")
                    .partners
                    .is_empty()
            };
            let c = self.net.clusters[cluster as usize].as_ref().expect("alive");
            c.neighbors
                .iter()
                .copied()
                .find(|&x| has_partners(x))
                .or_else(|| {
                    // No neighbor: any other live cluster.
                    self.net
                        .alive_clusters()
                        .find(|&x| x != cluster && has_partners(x))
                })
        };
        let Some(target) = target else {
            return; // last cluster standing cannot dissolve
        };
        let mut clients = std::mem::take(&mut self.scratch_clients);
        let mut partners = std::mem::take(&mut self.scratch_members);
        clients.clear();
        partners.clear();
        {
            let c = self.net.clusters[cluster as usize].as_ref().expect("alive");
            clients.extend_from_slice(&c.clients);
            partners.extend_from_slice(&c.partners);
        }
        for &cl in &clients {
            self.credit_client_time(cl);
            self.net.detach_client(cl);
            self.attach_and_charge_join(cl, target);
        }
        for &p in &partners {
            self.net.detach_partner(p);
            self.attach_and_charge_join(p, target);
        }
        self.scratch_clients = clients;
        self.scratch_members = partners;
        self.cancel_handle(self.adapt_h[cluster as usize]);
        self.adapt_h[cluster as usize] = EventHandle::NULL;
        self.ov_cluster_down(cluster);
        self.net.remove_cluster(cluster);
    }

    fn on_sample(&mut self) {
        let clusters = self.net.num_alive_clusters();
        let mut sizes = 0usize;
        let mut ttl_sum = 0.0;
        let mut deg_sum = 0.0;
        for c in self.net.alive_clusters() {
            let cl = self.net.clusters[c as usize].as_ref().expect("alive");
            sizes += cl.size();
            ttl_sum += cl.ttl as f64;
            deg_sum += cl.neighbors.len() as f64;
        }
        let peers = self.net.peers.iter().filter(|p| p.is_some()).count();
        self.metrics.timeline.push(TimelinePoint {
            time: self.now,
            clusters,
            peers,
            mean_cluster_size: if clusters > 0 {
                sizes as f64 / clusters as f64
            } else {
                0.0
            },
            mean_ttl: if clusters > 0 {
                ttl_sum / clusters as f64
            } else {
                0.0
            },
            mean_outdegree: if clusters > 0 {
                deg_sum / clusters as f64
            } else {
                0.0
            },
        });
        self.queue
            .schedule(self.now + self.opts.sample_interval_secs, Event::Sample);
        if self.overload.active() {
            self.overload
                .sample(self.now, clusters as u64, &mut self.metrics.overload);
        }
        self.observe_reachability();
    }

    /// Applies a fault-plan event. Crash faults resolve their victims
    /// against the alive-cluster list (same iteration order in both
    /// engines) and then force each victim partner through the normal
    /// `on_leave` path, so recruitment, cluster failure, and orphaning
    /// behave exactly like organic churn.
    fn on_fault(&mut self, index: u32, start: bool) {
        let alive: Vec<ClusterId> = self.net.alive_clusters().collect();
        match self.faults.on_fault_event(index, start, &alive) {
            crate::faults::FaultAction::None => {}
            crate::faults::FaultAction::Crash(victims) => {
                // Snapshot (peer, generation) pairs first: crashing one
                // cluster's partners must not shift a later victim's
                // membership mid-iteration.
                let mut doomed: Vec<(PeerId, u32)> = Vec::new();
                for &c in &victims {
                    if let Some(cl) = self.net.clusters[c as usize].as_ref() {
                        for &p in &cl.partners {
                            doomed.push((p, self.net.peer_generation(p)));
                        }
                    }
                }
                // Repair engages only for fault-injected deaths:
                // organic churn keeps the legacy dissolve-and-orphan
                // path, so an empty fault plan is bitwise inert under
                // every repair policy.
                self.in_fault_crash = true;
                for (p, generation) in doomed {
                    if self.net.peer(p, generation).is_some() {
                        self.metrics.faults.injected_crash += 1;
                        self.on_leave(p, generation);
                    }
                }
                self.in_fault_crash = false;
                // Probe connectivity right after the blast: the dip a
                // coarse sampling grid would miss.
                self.observe_reachability();
            }
        }
    }

    /// Applies a scenario phase boundary. Flash crowds and churn
    /// bursts only toggle modifier state inside [`ScenarioState`].
    /// Mass leaves force victims through the normal `on_leave` path
    /// with `in_fault_crash` left false — the departure is
    /// organic-style churn, so repair does not engage. Split windows
    /// route through the fault layer's partition depth counters, so
    /// the flood hot path carries no scenario-specific branch.
    fn on_phase(&mut self, index: u32, start: bool) {
        match self.scenario.on_phase_event(index, start) {
            PhaseAction::None => {}
            PhaseAction::MassLeave { fraction } => {
                // Snapshot alive peers in slot order (identical in
                // both engines), then generation-guard each victim:
                // an earlier victim's departure cascade must not
                // shift later picks.
                let alive: Vec<(PeerId, u32)> = (0..self.net.peers.len())
                    .filter(|&slot| self.net.peers[slot].is_some())
                    .map(|slot| (slot as PeerId, self.net.peer_generation(slot as PeerId)))
                    .collect();
                let victims = self.scenario.pick_mass_leave(alive.len(), fraction);
                for i in victims {
                    let (p, generation) = alive[i];
                    if self.net.peer(p, generation).is_some() {
                        self.on_leave(p, generation);
                    }
                }
                // Probe connectivity right after the blast, exactly
                // like an injected crash wave.
                self.observe_reachability();
            }
            PhaseAction::SplitBegin { fraction } => {
                let alive: Vec<ClusterId> = self.net.alive_clusters().collect();
                let resolved = self.scenario.pick_split(&alive, fraction);
                self.faults.scenario_partition_begin(&resolved);
                self.scenario.store_split(index, resolved);
            }
            PhaseAction::SplitEnd => {
                let resolved = self.scenario.take_split(index);
                self.faults.scenario_partition_end(&resolved);
            }
        }
    }

    fn finalize(&mut self) {
        // Account still-alive peers.
        for slot in 0..self.net.peers.len() {
            let Some(peer) = self.net.peers[slot].as_ref() else {
                continue;
            };
            let alive_for = self.now - peer.joined_at;
            if alive_for > 1.0 {
                let rate = self.net.counters[slot].mean_rate(alive_for);
                if peer.is_partner {
                    self.metrics.sp_in.push(rate.in_bw);
                    self.metrics.sp_out.push(rate.out_bw);
                    self.metrics.sp_proc.push(rate.proc);
                } else {
                    self.metrics.client_in.push(rate.in_bw);
                    self.metrics.client_out.push(rate.out_bw);
                    self.metrics.client_proc.push(rate.proc);
                }
            }
            if !peer.is_partner {
                if peer.cluster.is_some() {
                    self.metrics.client_connected_secs += self.now - peer.attached_at;
                } else {
                    self.metrics.client_disconnected_secs += self.now - peer.attached_at;
                }
            }
        }
        let (components, frac) = self.observe_components();
        self.metrics.repair.reachability.push(ReachPoint {
            time: self.now,
            components,
            reachable_fraction: frac,
        });
        self.metrics.repair.final_components = components;
        self.metrics.repair.final_reachable_fraction = frac;
        if self.overload.active() {
            self.overload.finalize(self.now, &mut self.metrics.overload);
        }
    }

    /// TTL-bounded BFS over live clusters that charges every query
    /// transmission inline as it is discovered (first copies and
    /// dropped duplicates alike — both consume bandwidth and
    /// processing), honoring the configured forwarding policy. Fills
    /// `bfs_order`, `bfs_depth`, `bfs_parent`, and snapshots each
    /// visited cluster's partner connection count into `flood_conns` at
    /// discovery time.
    ///
    /// Merging traversal and charging is *exact*, not approximate: the
    /// reference engine records the transmission list during its flood
    /// and replays it afterwards, so the transmission sequence is the
    /// discovery sequence either way. Charging mutates only load
    /// counters and round-robin cursors — which the traversal never
    /// reads — and draws no randomness, so the RandomSubset RNG draws,
    /// the round-robin cursor walks, and every per-peer float
    /// accumulation happen in the reference engine's order. Connection
    /// counts are constant for the whole event (nothing joins, leaves,
    /// or rewires mid-query), so the discovery-time snapshot equals the
    /// reference engine's post-flood recomputation.
    fn flood_and_charge(
        &mut self,
        src: ClusterId,
        ttl: u16,
        qbytes: f64,
        send_q: f64,
        recv_q: f64,
    ) {
        let n = self.net.clusters.len();
        if self.flood.len() < n {
            self.flood.resize(n, FloodSlot::default());
            self.bfs_parent.resize(n, 0);
            self.bfs_depth.resize(n, 0);
        }
        // Split `self` into disjoint field borrows so the hot loop
        // works on locals: with `&mut self` method calls inside the
        // loop the compiler would have to re-load every array pointer
        // and the stamp around each call to allow for aliasing.
        let Simulation {
            net,
            rng,
            config,
            opts,
            metrics,
            faults,
            stamp_cur,
            bfs_parent,
            bfs_depth,
            bfs_order,
            bfs_candidates: candidates,
            flood,
            ..
        } = self;
        // Hoisted fault-window flags: a fault-free flood takes none of
        // the fault branches and makes no fault-stream draws.
        let part_on = faults.partitions_possible();
        let drop_on = faults.drops_possible();
        let delay_on = faults.delays_possible();
        let mux = config.costs.multiplex_per_connection;
        // Window accumulators are only observed by adapt ticks; skip
        // them when adaptation is off (see `LoadCounters`).
        let windows = opts.adapt.is_some();
        *stamp_cur = stamp_cur.wrapping_add(1);
        if *stamp_cur == 0 {
            for slot in flood.iter_mut() {
                slot.stamp = 0;
            }
            *stamp_cur = 1;
        }
        let cur = *stamp_cur;
        bfs_order.clear();
        bfs_depth[src as usize] = 0;
        bfs_parent[src as usize] = src;
        let fsrc = &mut flood[src as usize];
        fsrc.stamp = cur;
        flood_snapshot_into(net, fsrc, recv_q, mux, src);
        bfs_order.push(src);
        let mut head = 0;
        while head < bfs_order.len() {
            let v = bfs_order[head];
            head += 1;
            let vu = v as usize;
            let d = bfs_depth[vu];
            if d >= ttl {
                continue;
            }
            let Some(cv) = net.clusters[vu].as_mut() else {
                continue;
            };
            // Move v's neighbor list out (pointer swap, no copy) so it
            // can be iterated while charging mutates the network;
            // restored at the end of this turn. Nothing below reads
            // v's (empty) neighbor list: charging touches partner
            // lists, counters, and the cached link counts only.
            let neighbors = std::mem::take(&mut cv.neighbors);
            let parent = bfs_parent[vu];
            // Apply the forwarding policy. Flooding iterates the
            // neighbor list directly, skipping the arrival link
            // inline; bounded fanout needs a mutable selection buffer
            // (partial Fisher–Yates: the first `fanout` entries become
            // a uniform sample).
            let mut fanout_sel = false;
            if let ForwardPolicy::RandomSubset { fanout } = opts.forward_policy {
                candidates.clear();
                candidates.extend(
                    neighbors
                        .iter()
                        .copied()
                        .filter(|&u| v == src || u != parent),
                );
                if candidates.len() > fanout {
                    for i in 0..fanout {
                        let j = i + rng.index(candidates.len() - i);
                        candidates.swap(i, j);
                    }
                    candidates.truncate(fanout);
                }
                fanout_sel = true;
            }
            let skip_parent = !fanout_sel && v != src;
            let targets: &[ClusterId] = if fanout_sel { candidates } else { &neighbors };
            // Charge receivers first, then all of v's sends. This
            // reorders only operations on *distinct* clusters/peers
            // relative to the reference's per-candidate interleaving:
            // each cluster's rr-cursor calls and each peer's counter
            // adds keep their original relative order (the overlay has
            // no self-loops, so u != v and the receiving partner is
            // never the sending partner), and no RNG is involved — so
            // the result is bitwise identical while letting the sender
            // side hoist its cluster and peer lookups out of the loop.
            let v_conns = flood[vu].conns;
            let v_part = part_on && faults.is_partitioned(v);
            let mut n_sent = 0usize;
            for &u in targets {
                if skip_parent && u == parent {
                    continue;
                }
                // Partitioned link: severed before anything is sent
                // (no charge, no rr advance, no discovery).
                if part_on && (v_part || faults.is_partitioned(u)) {
                    metrics.faults.injected_partition_block += 1;
                    continue;
                }
                // Headless neighbor (repair pending): no partner to
                // receive the copy — the edge stays up but carries
                // nothing. No charge, no fault draw, no discovery.
                if net.clusters[u as usize]
                    .as_ref()
                    .expect("cluster alive")
                    .partners
                    .is_empty()
                {
                    continue;
                }
                n_sent += 1;
                // Message loss: the copy left the sender (charged with
                // the bulk send below) but never arrives — the target
                // is neither charged nor discovered through this edge.
                if drop_on && faults.draw_drop() {
                    metrics.faults.injected_drop += 1;
                    continue;
                }
                if delay_on {
                    if let Some(extra) = faults.draw_delay() {
                        metrics.faults.injected_delay += 1;
                        metrics.faults.delay_added_secs += extra;
                    }
                }
                let uu = u as usize;
                let fs = &mut flood[uu];
                if fs.stamp != cur {
                    fs.stamp = cur;
                    bfs_depth[uu] = d + 1;
                    bfs_parent[uu] = v;
                    flood_snapshot_into(net, fs, recv_q, mux, u);
                    bfs_order.push(u);
                }
                let receiver = if fs.len == 1 {
                    fs.bump += 1;
                    fs.partner
                } else {
                    rr_partner_net(net, u)
                };
                // Receivers are partners of alive clusters, so the
                // slot is live: charge the dense counter directly.
                // (`recv_q + mux * conns` was computed once at
                // discovery; clusters average >2 incoming copies.)
                let units = fs.recv_units;
                let rc = &mut net.counters[receiver as usize];
                if windows {
                    rc.recv(qbytes, units);
                } else {
                    rc.recv_unwindowed(qbytes, units);
                }
            }
            let send_units = send_q + mux * v_conns;
            let fv = &mut flood[vu];
            if fv.len == 1 {
                // Common k = 1 case: every send leaves the same peer,
                // so resolve it once and advance rr in bulk.
                let sender = fv.partner;
                fv.bump += n_sent as u32;
                let sc = &mut net.counters[sender as usize];
                if windows {
                    for _ in 0..n_sent {
                        sc.send(qbytes, send_units);
                    }
                } else {
                    for _ in 0..n_sent {
                        sc.send_unwindowed(qbytes, send_units);
                    }
                }
            } else {
                for _ in 0..n_sent {
                    let sender = rr_partner_net(net, v);
                    let sc = &mut net.counters[sender as usize];
                    if windows {
                        sc.send(qbytes, send_units);
                    } else {
                        sc.send_unwindowed(qbytes, send_units);
                    }
                }
            }
            net.clusters[vu].as_mut().expect("cluster alive").neighbors = neighbors;
        }
        // Deferred rr advances stay pending in `rr_bump` until the
        // caller's flush at the end of the query event (the probe loop
        // adds its own bumps first); nothing reads a k = 1 cluster's
        // rr cursor in between.
    }
}

/// Free-function core of [`Simulation::rr_partner`], callable while
/// the caller holds disjoint borrows of other `Simulation` fields.
#[inline]
fn rr_partner_net(net: &mut SimNetwork, cluster: ClusterId) -> PeerId {
    let c = net.cluster_mut(cluster).expect("cluster alive");
    // k = 1 clusters are the common case on the query hot path:
    // skip the division (rr % 1 == 0).
    let len = c.partners.len();
    let idx = if len == 1 { 0 } else { c.rr % len };
    c.rr = c.rr.wrapping_add(1);
    c.partners[idx]
}

/// Records a cluster's partner-connection count, first partner, and
/// partner count into the per-flood snapshot arrays (one cluster
/// dereference at discovery instead of one per transmission).
#[inline]
fn flood_snapshot_into(
    net: &SimNetwork,
    slot: &mut FloodSlot,
    recv_q: f64,
    mux: f64,
    u: ClusterId,
) {
    let c = net.clusters[u as usize].as_ref().expect("cluster alive");
    let cc = c.partner_connections_cached();
    slot.conns = cc;
    slot.len = c.partners.len() as u32;
    slot.partner = c.partners[0];
    slot.files = c.total_files;
    slot.recv_units = recv_q + mux * cc;
}

/// Free-function core of [`Simulation::charge_pair`], callable while
/// the caller holds disjoint borrows of other `Simulation` fields.
#[allow(clippy::too_many_arguments)]
#[inline]
fn charge_pair_net(
    net: &mut SimNetwork,
    from: PeerId,
    to: PeerId,
    bytes: f64,
    send_units: f64,
    recv_units: f64,
    from_conns: f64,
    to_conns: f64,
    mux: f64,
) {
    // Both endpoints are members of alive clusters on every call
    // path, so the slots are live and the check can be skipped.
    net.counters[from as usize].send(bytes, send_units + mux * from_conns);
    net.counters[to as usize].recv(bytes, recv_units + mux * to_conns);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Config {
        Config {
            graph_size: 100,
            cluster_size: 10,
            ..Config::default()
        }
    }

    #[test]
    fn bootstrap_mirrors_instance() {
        let cfg = small_config();
        let sim = Simulation::new(&cfg, SimOptions::default());
        assert_eq!(sim.net.num_alive_clusters(), 10);
        sim.net.check_invariants().unwrap();
    }

    #[test]
    fn short_run_processes_queries_and_stays_consistent() {
        let cfg = small_config();
        let mut sim = Simulation::new(
            &cfg,
            SimOptions {
                duration_secs: 600.0,
                seed: 1,
                ..Default::default()
            },
        );
        let m = sim.run();
        assert!(m.queries > 0, "no queries simulated");
        assert!(m.results.count() == m.queries);
        sim.net.check_invariants().unwrap();
        assert!(m.sp_proc.mean() > m.client_proc.mean());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = small_config();
        let run = |seed| {
            let mut s = Simulation::new(
                &cfg,
                SimOptions {
                    duration_secs: 300.0,
                    seed,
                    ..Default::default()
                },
            );
            let m = s.run();
            (m.queries, m.results.mean(), m.cluster_failures)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).0, run(10).0);
    }

    #[test]
    fn snapshot_round_trip_resumes_bitwise() {
        let cfg = small_config();
        let opts = SimOptions {
            duration_secs: 600.0,
            seed: 7,
            ..Default::default()
        };
        let mut full = Simulation::new(&cfg, opts);
        let baseline = full.run();

        let mut head = Simulation::new(&cfg, opts);
        head.run_to(200.0);
        let snap = head.snapshot();
        let mut resumed = Simulation::restore(&snap).expect("restore");
        let resumed_metrics = resumed.run();
        assert_eq!(baseline, resumed_metrics);
        assert_eq!(
            full.observability().delivered,
            resumed.observability().delivered
        );
        assert_eq!(full.observability().stale, resumed.observability().stale);
    }

    #[test]
    fn chained_checkpoints_resume_bitwise() {
        let cfg = small_config();
        let opts = SimOptions {
            duration_secs: 600.0,
            seed: 11,
            ..Default::default()
        };
        let mut full = Simulation::new(&cfg, opts);
        let baseline = full.run();

        let mut sim = Simulation::new(&cfg, opts);
        sim.run_to(150.0);
        let mut sim = Simulation::restore(&sim.snapshot()).expect("restore at 150");
        sim.run_to(400.0);
        let mut sim = Simulation::restore(&sim.snapshot()).expect("restore at 400");
        assert_eq!(baseline, sim.run());
    }

    #[test]
    fn restore_rejects_corrupted_snapshot() {
        let cfg = small_config();
        let mut sim = Simulation::new(&cfg, SimOptions::default());
        sim.run_to(100.0);
        let mut snap = sim.snapshot();
        // Flip one payload byte; the fingerprint must catch it.
        let mid = snap.len() / 2;
        snap[mid] ^= 0x40;
        assert!(Simulation::restore(&snap).is_err());
        // Truncation is named, not a panic.
        let good = sim.snapshot();
        assert!(Simulation::restore(&good[..good.len() - 3]).is_err());
    }

    #[test]
    fn churn_triggers_failures_without_redundancy() {
        let cfg = Config {
            graph_size: 100,
            cluster_size: 10,
            // Short sessions → heavy churn.
            population: sp_model::population::PopulationModel {
                lifespan_mean_secs: 300.0,
                ..Default::default()
            },
            ..Config::default()
        };
        let mut sim = Simulation::new(
            &cfg,
            SimOptions {
                duration_secs: 1800.0,
                seed: 2,
                ..Default::default()
            },
        );
        let m = sim.run();
        assert!(m.cluster_failures > 0, "expected super-peer deaths");
        assert!(m.orphan_events > 0);
        assert!(m.availability() < 1.0);
        sim.net.check_invariants().unwrap();
    }

    #[test]
    fn redundancy_improves_availability() {
        let base = Config {
            graph_size: 120,
            cluster_size: 12,
            population: sp_model::population::PopulationModel {
                lifespan_mean_secs: 300.0,
                ..Default::default()
            },
            ..Config::default()
        };
        let avail = |cfg: &Config| {
            let mut s = Simulation::new(
                cfg,
                SimOptions {
                    duration_secs: 2400.0,
                    seed: 3,
                    ..Default::default()
                },
            );
            s.run().availability()
        };
        let plain = avail(&base);
        let red = avail(&base.clone().with_redundancy(true));
        assert!(
            red > plain,
            "redundancy did not improve availability: {red} vs {plain}"
        );
    }

    #[test]
    fn adaptive_mode_applies_actions() {
        let cfg = small_config();
        let mut sim = Simulation::new(
            &cfg,
            SimOptions {
                duration_secs: 1200.0,
                seed: 4,
                adapt: Some(AdaptSettings {
                    interval_secs: 120.0,
                    limit: Load {
                        in_bw: 1e5,
                        out_bw: 1e5,
                        proc: 1e7,
                    },
                }),
                ..Default::default()
            },
        );
        let m = sim.run();
        assert!(m.adapt_actions > 0, "no local actions taken");
        sim.net.check_invariants().unwrap();
    }

    #[test]
    fn timeline_is_sampled() {
        let cfg = small_config();
        let mut sim = Simulation::new(
            &cfg,
            SimOptions {
                duration_secs: 700.0,
                sample_interval_secs: 100.0,
                seed: 5,
                ..Default::default()
            },
        );
        let m = sim.run();
        assert!(
            m.timeline.len() >= 6,
            "timeline {} points",
            m.timeline.len()
        );
        assert!(m.timeline[0].clusters > 0);
    }

    #[test]
    fn churn_cancels_timers_instead_of_leaving_tombstones() {
        let cfg = Config {
            graph_size: 100,
            cluster_size: 10,
            population: sp_model::population::PopulationModel {
                lifespan_mean_secs: 300.0,
                ..Default::default()
            },
            ..Config::default()
        };
        let mut sim = Simulation::new(
            &cfg,
            SimOptions {
                duration_secs: 1800.0,
                seed: 6,
                ..Default::default()
            },
        );
        sim.run();
        let obs = sim.observability();
        assert!(obs.cancelled > 0, "churn should cancel pending timers");
        // The only tombstones left are recruit timers of failed
        // clusters (deliberately not slot-mapped: several can be
        // legitimately outstanding per cluster). Under this much churn
        // they must be a small minority of all popped events.
        assert!(
            obs.stale < obs.delivered_total() / 10,
            "stale {} vs delivered {}",
            obs.stale,
            obs.delivered_total()
        );
        assert!(obs.queue_high_water > 0);
        assert!(sim.events_delivered() == obs.delivered_total());
    }

    #[test]
    fn profiling_populates_wall_histograms() {
        let cfg = small_config();
        let mut sim = Simulation::new(
            &cfg,
            SimOptions {
                duration_secs: 300.0,
                seed: 7,
                profile: true,
                ..Default::default()
            },
        );
        sim.run();
        let obs = sim.observability();
        assert!(obs.profiled);
        assert_eq!(
            obs.wall[EventKind::Query as usize].count(),
            obs.delivered_of(EventKind::Query)
        );
        assert!(obs.wall[EventKind::Query as usize].mean_ns() > 0.0);
        let manifest = sim.manifest(1.0);
        assert!(manifest.to_json().contains("\"profiled\": true"));
        assert!(manifest.events_per_sec() > 0.0);
    }
}
