//! # sp-sim
//!
//! Discrete-event simulator for super-peer networks, complementing the
//! mean-value analysis of `sp-model` with the *dynamic* phenomena the
//! paper argues about but cannot capture analytically:
//!
//! * **Churn and failover** (Section 3.2): peers join and leave with
//!   heavy-tailed lifespans; when a lone super-peer dies its clients
//!   are orphaned until they find a new cluster, while a k-redundant
//!   virtual super-peer keeps serving as long as one partner survives
//!   and recruits replacements from its clients. The
//!   [`scenario::reliability`] experiment quantifies the availability
//!   gap the paper asserts ("the probability that all partners fail
//!   before any failed partner can be replaced is much lower").
//! * **Steady-state validation**: [`scenario::steady_state`] measures
//!   per-role loads from actual simulated message traffic (same Table 2
//!   cost model) and is compared against the analytic engine in the
//!   integration tests.
//! * **Local adaptation** (Section 5.3): [`scenario::adaptive`] gives
//!   every super-peer a load limit and lets it follow the
//!   `sp-design::local_rules` advisor — accept clients, promote
//!   partners, split, coalesce, grow outdegree, shrink TTL — and
//!   tracks whether the network converges to an efficient,
//!   non-overloaded configuration.
//!
//! The simulator is deterministic given a seed, single-threaded, and
//! processes hundreds of thousands of events per second; the scenarios
//! in the benches simulate hours of network time for thousands of
//! peers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod engine;
pub mod events;
pub mod network;
pub mod scenario;

pub use engine::{ForwardPolicy, SimOptions, Simulation};
pub use scenario::{adaptive, reliability, steady_state, AdaptOptions, SimReport};
