//! # sp-sim
//!
//! Discrete-event simulator for super-peer networks, complementing the
//! mean-value analysis of `sp-model` with the *dynamic* phenomena the
//! paper argues about but cannot capture analytically:
//!
//! * **Churn and failover** (Section 3.2): peers join and leave with
//!   heavy-tailed lifespans; when a lone super-peer dies its clients
//!   are orphaned until they find a new cluster, while a k-redundant
//!   virtual super-peer keeps serving as long as one partner survives
//!   and recruits replacements from its clients. The
//!   [`scenario::reliability`] experiment quantifies the availability
//!   gap the paper asserts ("the probability that all partners fail
//!   before any failed partner can be replaced is much lower").
//! * **Steady-state validation**: [`scenario::steady_state`] measures
//!   per-role loads from actual simulated message traffic (same Table 2
//!   cost model) and is compared against the analytic engine in the
//!   integration tests.
//! * **Local adaptation** (Section 5.3): [`scenario::adaptive`] gives
//!   every super-peer a load limit and lets it follow the
//!   `sp-design::local_rules` advisor — accept clients, promote
//!   partners, split, coalesce, grow outdegree, shrink TTL — and
//!   tracks whether the network converges to an efficient,
//!   non-overloaded configuration.
//!
//! Each simulation run is deterministic given a seed and runs on one
//! thread; independent scenario *trials* shard across threads through
//! the same thread-budget cascade as `sp_model::trials`, with per-trial
//! RNG streams keeping the reduced results bitwise identical at any
//! thread count (see [`scenario::run_sim_trials`]).
//!
//! Two engines implement the same simulator: [`engine::Simulation`]
//! (indexed event queue with O(log n) churn cancellation, pooled
//! scratch buffers, cached connection counts) and
//! [`reference::ReferenceSimulation`] (the original implementation,
//! kept as the behavioral oracle and performance baseline). They
//! produce bitwise-identical [`engine::RawMetrics`] on every seed;
//! `tests/sim_determinism.rs` enforces it. A third engine,
//! [`shard::ShardedSimulation`], trades per-peer lifecycle fidelity
//! for scale: shared-nothing per-shard reactors exchanging messages at
//! tick barriers, bitwise identical at any shard count, sized for
//! million-peer overlays (see the [`shard`] module docs and DESIGN.md
//! §15). The [`metrics`] module adds
//! engine observability: event-rate counters, queue high-water marks,
//! optional per-event-type wall-time histograms, and a structured run
//! manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub(crate) mod checkpoint;
pub mod counters;
pub mod engine;
pub mod events;
pub mod faults;
pub mod metrics;
pub mod network;
pub mod overload;
pub mod phases;
pub mod reference;
pub mod repair;
pub mod scenario;
pub mod shard;

pub use campaign::{
    run_campaign, run_campaign_with, CampaignOptions, CampaignReport, CampaignResume,
    CompletedScenario, Divergence, Quarantine, ScenarioOutcome, CAMPAIGN_SCHEMA_VERSION,
};
pub use engine::{ForwardPolicy, SimOptions, Simulation};
pub use faults::{FaultMetrics, FaultState, QueryOutcome, ReconnectHistogram, Submission};
pub use metrics::{EventKind, RunManifest, SimMetrics};
pub use overload::{Admission, OvPoint, OverloadMetrics, OverloadState};
pub use phases::{PhaseAction, ScenarioState};
pub use reference::ReferenceSimulation;
pub use repair::{ReachPoint, RepairMetrics};
pub use scenario::{
    adaptive, adaptive_trials, crash_storm, crash_storm_trials, reliability, reliability_trials,
    routing, routing_trials, run_sim_trials, steady_state, steady_trials, AdaptOptions, SimReport,
    SimTrialOptions,
};
pub use shard::{ScaleDiag, ScaleMetrics, ScaleOptions, ShardFailure, ShardedSimulation};
