//! Item-level parsing on top of [`crate::lexer`]: just enough `mod` /
//! `use` / `fn` structure for the workspace-aware rules (L1, P1, R1)
//! to ask "what module does this token live in and what does that
//! module import?".
//!
//! Like the lexer, this is deliberately not a Rust grammar. It tracks
//! brace depth, inline `mod name { … }` nesting, expands `use` trees
//! (groups, globs, `as` aliases) into flat [`UseDecl`]s, records `fn`
//! item spans so findings can name their enclosing function, and owns
//! the `#[cfg(test)]` region tracker that the token rules already
//! relied on. Malformed input degrades gracefully — the parser never
//! fails, it just sees less structure.

use crate::lexer::{Tok, TokKind};

/// One flattened `use` import. `use a::{b, c as d};` yields two
/// decls: `a::b` and `a::c` (alias `d`).
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Path segments as written (`["std", "fs"]`, `["crate", "x"]`).
    pub path: Vec<String>,
    /// `use … as alias` rename, if any.
    pub alias: Option<String>,
    /// Whether the decl ends in `::*`.
    pub glob: bool,
    /// 1-based line of the `use` keyword.
    pub line: u32,
    /// 1-based column of the `use` keyword.
    pub col: u32,
    /// Inline-module nesting at the decl site (empty at file scope).
    pub in_mod: Vec<String>,
    /// Whether the decl sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

impl UseDecl {
    /// The name this import binds locally (`alias`, else the last
    /// path segment).
    pub fn binds(&self) -> Option<&str> {
        if self.glob {
            return None;
        }
        self.alias
            .as_deref()
            .or_else(|| self.path.last().map(String::as_str))
    }
}

/// One `mod` declaration (`mod x;` out-of-line or `mod x { … }`
/// inline).
#[derive(Debug, Clone)]
pub struct ModDecl {
    /// Module name.
    pub name: String,
    /// 1-based line of the `mod` keyword.
    pub line: u32,
    /// Inline-module nesting at the decl site.
    pub in_mod: Vec<String>,
    /// Whether the decl has an inline body.
    pub inline: bool,
}

/// One `fn` item, with its body token range so a finding inside the
/// body can be attributed to the function by name.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range `[start, end]` covering signature + body.
    pub span: (usize, usize),
}

/// One `impl` block span (kept so rules could scope to impls; the
/// current rules only need the count for structure sanity checks).
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Token-index range `[start, end]` of the whole block.
    pub span: (usize, usize),
}

/// Item-level structure of one file.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    /// Flattened `use` imports, in source order.
    pub uses: Vec<UseDecl>,
    /// `mod` declarations, in source order.
    pub mods: Vec<ModDecl>,
    /// `fn` items, in source order.
    pub fns: Vec<FnItem>,
    /// `impl` blocks, in source order.
    pub impls: Vec<ImplItem>,
    /// Token-index ranges `[start, end]` covered by `use` decls, for
    /// token-pattern rules that must not double-report an import.
    pub use_ranges: Vec<(usize, usize)>,
    /// Inline module body spans: (nested mod path, start, end).
    pub mod_spans: Vec<(Vec<String>, usize, usize)>,
}

impl Parsed {
    /// Whether token `i` is inside a `use` declaration.
    pub fn in_use_decl(&self, i: usize) -> bool {
        self.use_ranges.iter().any(|&(s, e)| i >= s && i <= e)
    }

    /// The inline-module nesting enclosing token `i` (innermost
    /// match; empty slice at file scope).
    pub fn module_nesting_of(&self, i: usize) -> &[String] {
        self.mod_spans
            .iter()
            .filter(|&&(_, s, e)| i >= s && i <= e)
            .max_by_key(|(path, _, _)| path.len())
            .map(|(path, _, _)| path.as_slice())
            .unwrap_or(&[])
    }

    /// The `fn` item whose span encloses token `i` (innermost).
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| i >= f.span.0 && i <= f.span.1)
            .min_by_key(|f| f.span.1 - f.span.0)
    }
}

/// Parses the item structure of a token stream. `tests` drives the
/// `in_test` flag on `use` decls.
pub fn parse(toks: &[Tok], tests: &TestRegions) -> Parsed {
    let mut out = Parsed::default();
    // (name, start_idx, depth) for open inline mods.
    let mut mod_stack: Vec<(String, usize, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    let code: Vec<usize> = (0..toks.len()).filter(|&k| !toks[k].is_comment()).collect();
    // Map raw token index -> position in `code` for lookahead.
    let mut code_pos = vec![usize::MAX; toks.len()];
    for (k, &ci) in code.iter().enumerate() {
        code_pos[ci] = k;
    }
    let next_code = |i: usize, n: usize| -> Option<usize> {
        if i >= toks.len() || code_pos[i] == usize::MAX {
            return None;
        }
        code.get(code_pos[i] + n).copied()
    };

    while i < toks.len() {
        let t = &toks[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        match t.kind {
            TokKind::Punct('{') => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if let Some(&(_, start, d)) = mod_stack.last() {
                    if d == depth {
                        let (name, _, _) = mod_stack.pop().expect("non-empty: just peeked");
                        let mut path: Vec<String> =
                            mod_stack.iter().map(|(n, _, _)| n.clone()).collect();
                        path.push(name);
                        out.mod_spans.push((path, start, i));
                    }
                }
                i += 1;
            }
            TokKind::Ident if t.text == "mod" => {
                // `mod name ;` or `mod name {`. A `mod` not followed
                // by an identifier (e.g. a macro arg) is skipped.
                let name_idx = next_code(i, 1);
                let Some(ni) = name_idx else {
                    i += 1;
                    continue;
                };
                if toks[ni].kind != TokKind::Ident {
                    i += 1;
                    continue;
                }
                let name = toks[ni].text.clone();
                let after = next_code(i, 2);
                let nesting: Vec<String> = mod_stack.iter().map(|(n, _, _)| n.clone()).collect();
                match after.map(|ai| &toks[ai]) {
                    Some(a) if a.is_punct('{') => {
                        out.mods.push(ModDecl {
                            name: name.clone(),
                            line: t.line,
                            in_mod: nesting,
                            inline: true,
                        });
                        mod_stack.push((name, i, depth));
                        depth += 1;
                        i = after.expect("matched Some above") + 1;
                    }
                    Some(a) if a.is_punct(';') => {
                        out.mods.push(ModDecl {
                            name,
                            line: t.line,
                            in_mod: nesting,
                            inline: false,
                        });
                        i = after.expect("matched Some above") + 1;
                    }
                    _ => i += 1,
                }
            }
            TokKind::Ident if t.text == "use" => {
                let start = i;
                let nesting: Vec<String> = mod_stack.iter().map(|(n, _, _)| n.clone()).collect();
                let end = parse_use(toks, i, t.line, t.col, &nesting, tests, &mut out.uses);
                out.use_ranges.push((start, end));
                i = end + 1;
            }
            TokKind::Ident if t.text == "fn" => {
                let Some(ni) = next_code(i, 1) else {
                    i += 1;
                    continue;
                };
                if toks[ni].kind != TokKind::Ident {
                    i += 1;
                    continue;
                }
                let name = toks[ni].text.clone();
                let end = item_body_end(toks, ni + 1);
                out.fns.push(FnItem {
                    name,
                    line: t.line,
                    span: (i, end),
                });
                // Do NOT jump past the body: mod/use tracking inside
                // fn bodies (scoped imports) still matters, and brace
                // depth must stay balanced. Just record the span.
                i += 1;
            }
            TokKind::Ident if t.text == "impl" => {
                let end = item_body_end(toks, i + 1);
                out.impls.push(ImplItem {
                    line: t.line,
                    span: (i, end),
                });
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Finds the token index of the `}` closing the first `{` at or after
/// `from` (or of a terminating `;` before any `{`). Returns the last
/// token index on malformed input.
fn item_body_end(toks: &[Tok], from: usize) -> usize {
    let mut depth = 0usize;
    let mut angle = 0usize; // suppress `;` inside generic bounds? not needed
    let _ = &mut angle;
    for (j, t) in toks.iter().enumerate().skip(from) {
        if t.is_comment() {
            continue;
        }
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j;
            }
        } else if t.is_punct(';') && depth == 0 {
            // `fn f();` in a trait, or `impl Trait for T;` — no body.
            return j;
        }
    }
    toks.len().saturating_sub(1)
}

/// Parses one `use …;` starting at the `use` keyword index; pushes
/// flattened decls and returns the index of the terminating `;` (or
/// the last consumed token on malformed input).
fn parse_use(
    toks: &[Tok],
    use_idx: usize,
    line: u32,
    col: u32,
    nesting: &[String],
    tests: &TestRegions,
    out: &mut Vec<UseDecl>,
) -> usize {
    // Collect the code tokens of the decl up to the `;`.
    let mut end = use_idx;
    let mut decl: Vec<&Tok> = Vec::new();
    for (j, t) in toks.iter().enumerate().skip(use_idx + 1) {
        if t.is_comment() {
            continue;
        }
        if t.is_punct(';') {
            end = j;
            break;
        }
        decl.push(t);
        end = j;
    }
    let in_test = tests.contains(use_idx);
    let mut pos = 0usize;
    // Leading `pub` / visibility was consumed before `use`, so the
    // decl body starts at the path. Parse the (possibly grouped) tree.
    parse_use_tree(
        &decl,
        &mut pos,
        &mut Vec::new(),
        line,
        col,
        nesting,
        in_test,
        out,
    );
    end
}

/// Recursive descent over a use tree: `path`, `path::{a, b}`,
/// `path::*`, `path as alias`.
#[allow(clippy::too_many_arguments)]
fn parse_use_tree(
    decl: &[&Tok],
    pos: &mut usize,
    prefix: &mut Vec<String>,
    line: u32,
    col: u32,
    nesting: &[String],
    in_test: bool,
    out: &mut Vec<UseDecl>,
) {
    let depth_at_entry = prefix.len();
    let mut path: Vec<String> = Vec::new();
    let mut alias: Option<String> = None;
    let mut glob = false;
    while *pos < decl.len() {
        let t = decl[*pos];
        match t.kind {
            TokKind::Ident if t.text == "as" => {
                *pos += 1;
                if let Some(a) = decl.get(*pos) {
                    if a.kind == TokKind::Ident {
                        alias = Some(a.text.clone());
                        *pos += 1;
                    }
                }
            }
            TokKind::Ident => {
                path.push(t.text.clone());
                *pos += 1;
            }
            TokKind::Punct(':') => {
                *pos += 1; // `::` arrives as two `:` puncts
            }
            TokKind::Punct('*') => {
                glob = true;
                *pos += 1;
            }
            TokKind::Punct('{') => {
                *pos += 1;
                prefix.append(&mut path);
                loop {
                    parse_use_tree(decl, pos, prefix, line, col, nesting, in_test, out);
                    match decl.get(*pos).map(|t| t.kind) {
                        Some(TokKind::Punct(',')) => {
                            *pos += 1;
                            if decl.get(*pos).map(|t| t.is_punct('}')).unwrap_or(true) {
                                break;
                            }
                        }
                        _ => break,
                    }
                }
                if decl.get(*pos).map(|t| t.is_punct('}')).unwrap_or(false) {
                    *pos += 1;
                }
                prefix.truncate(depth_at_entry);
                return; // a group terminates this branch
            }
            TokKind::Punct(',') | TokKind::Punct('}') => break,
            _ => {
                *pos += 1; // visibility puncts, stray tokens
            }
        }
    }
    if !path.is_empty() || glob {
        let mut full = prefix.clone();
        full.extend(path);
        if !full.is_empty() {
            out.push(UseDecl {
                path: full,
                alias,
                glob,
                line,
                col,
                in_mod: nesting.to_vec(),
                in_test,
            });
        }
    }
    prefix.truncate(depth_at_entry);
}

/// Token-index ranges covered by `#[cfg(test)]` / `#[test]` items.
/// Moved here from the rule engine so the parser and all rule
/// families share one definition.
pub struct TestRegions {
    /// Sorted, non-overlapping (start, end) token-index ranges.
    ranges: Vec<(usize, usize)>,
}

impl TestRegions {
    /// Computes the test regions of a token stream.
    pub fn compute(toks: &[Tok]) -> TestRegions {
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let mut open: Vec<(usize, usize)> = Vec::new(); // (start idx, depth)
        let mut depth = 0usize;
        let mut pending_test_attr = false;
        let mut i = 0;
        while i < toks.len() {
            let t = &toks[i];
            if t.is_comment() {
                i += 1;
                continue;
            }
            if t.is_punct('#') {
                // `#[…]` outer attribute (`#![…]` inner attributes are
                // skipped: they never mark a following item as test).
                let mut j = i + 1;
                while j < toks.len() && toks[j].is_comment() {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct('[') {
                    let (end, is_test) = scan_attribute(toks, j);
                    if is_test {
                        pending_test_attr = true;
                    }
                    i = end;
                    continue;
                }
            }
            match t.kind {
                TokKind::Punct(';') if open.is_empty() => {
                    // `#[cfg(test)] use …;` — attribute without a body.
                    pending_test_attr = false;
                }
                TokKind::Punct('{') => {
                    if pending_test_attr {
                        open.push((i, depth));
                        pending_test_attr = false;
                    }
                    depth += 1;
                }
                TokKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if let Some(&(start, d)) = open.last() {
                        if d == depth {
                            open.pop();
                            ranges.push((start, i));
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // An unterminated region (malformed input) extends to EOF.
        for (start, _) in open {
            ranges.push((start, toks.len()));
        }
        ranges.sort_unstable();
        TestRegions { ranges }
    }

    /// Whether token `tok_idx` is inside a test region.
    pub fn contains(&self, tok_idx: usize) -> bool {
        self.ranges
            .iter()
            .any(|&(s, e)| tok_idx >= s && tok_idx <= e)
    }

    /// The raw (start, end) ranges — exposed for span-tracking tests.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }
}

/// Scans an attribute starting at the `[` token; returns the token
/// index just past the closing `]` and whether the attribute marks
/// test-only code (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`
/// — but not `#[cfg(not(test))]`).
fn scan_attribute(toks: &[Tok], open_bracket: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    let mut i = open_bracket;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                i += 1;
                break;
            }
        } else if t.kind == TokKind::Ident {
            idents.push(&t.text);
        }
        i += 1;
    }
    let has_test = idents.contains(&"test");
    let negated = idents.contains(&"not");
    let is_cfg = idents.first().map(|s| *s == "cfg").unwrap_or(false);
    let is_bare_test = idents.len() == 1 && idents[0] == "test";
    (i, has_test && !negated && (is_cfg || is_bare_test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse_src(src: &str) -> Parsed {
        let toks = tokenize(src);
        let tests = TestRegions::compute(&toks);
        parse(&toks, &tests)
    }

    fn use_paths(p: &Parsed) -> Vec<String> {
        p.uses.iter().map(|u| u.path.join("::")).collect()
    }

    #[test]
    fn flat_use_and_group_expansion() {
        let p = parse_src("use std::fs;\nuse a::{b, c::d, e as f};\n");
        assert_eq!(use_paths(&p), ["std::fs", "a::b", "a::c::d", "a::e"]);
        assert_eq!(p.uses[3].alias.as_deref(), Some("f"));
        assert_eq!(p.uses[0].line, 1);
        assert_eq!(p.uses[1].line, 2);
    }

    #[test]
    fn nested_groups_and_globs() {
        let p = parse_src("use a::{b::{c, d::*}, self};\n");
        assert_eq!(use_paths(&p), ["a::b::c", "a::b::d", "a::self"]);
        assert!(p.uses[1].glob);
        assert!(!p.uses[0].glob);
    }

    #[test]
    fn inline_mods_nest_and_attribute_tokens() {
        let src = "mod outer {\n  mod inner {\n    use x::y;\n  }\n}\nmod flat;\n";
        let p = parse_src(src);
        assert_eq!(p.mods.len(), 3);
        assert!(p.mods[0].inline && p.mods[0].name == "outer");
        assert!(p.mods[1].inline && p.mods[1].in_mod == ["outer"]);
        assert!(!p.mods[2].inline && p.mods[2].name == "flat");
        assert_eq!(p.uses[0].in_mod, ["outer", "inner"]);
        // Token attribution: the `y` token sits in outer::inner.
        let toks = tokenize(src);
        let y = toks.iter().position(|t| t.is_ident("y")).unwrap();
        assert_eq!(p.module_nesting_of(y), ["outer", "inner"]);
    }

    #[test]
    fn fn_items_carry_spans() {
        let src = "fn a() { inner(); }\nfn b(x: u32) -> u32 { x }\n";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "a");
        assert_eq!(p.fns[1].name, "b");
        let toks = tokenize(src);
        let inner = toks.iter().position(|t| t.is_ident("inner")).unwrap();
        assert_eq!(p.enclosing_fn(inner).unwrap().name, "a");
    }

    #[test]
    fn use_ranges_cover_decl_tokens() {
        let src = "use std::fs;\nfn f() { fs::read(\"x\"); }\n";
        let p = parse_src(src);
        let toks = tokenize(src);
        let first_fs = toks.iter().position(|t| t.is_ident("fs")).unwrap();
        let second_fs = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("fs"))
            .nth(1)
            .unwrap()
            .0;
        assert!(p.in_use_decl(first_fs));
        assert!(!p.in_use_decl(second_fs));
    }

    #[test]
    fn test_regions_mark_use_decls() {
        let src = "#[cfg(test)]\nmod tests {\n  use std::fs;\n}\nuse std::net;\n";
        let p = parse_src(src);
        assert!(p.uses[0].in_test);
        assert!(!p.uses[1].in_test);
    }
}
