//! `sp_lint` — the standalone lint binary (CI entry point).
//!
//! ```text
//! sp_lint [--root DIR] [--config FILE] [--json [FILE]] [--sarif [FILE]] [--warnings]
//! ```
//!
//! Exit codes follow the `spnet` convention: `0` clean (warnings are
//! advisory), `1` at least one deny-level finding, `2` usage or
//! configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use sp_lint::{lint_workspace, load_config, LintConfig};

struct Options {
    root: PathBuf,
    config: Option<PathBuf>,
    json: Option<Option<PathBuf>>,
    sarif: Option<Option<PathBuf>>,
    warnings: bool,
}

fn parse_args(raw: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        config: None,
        json: None,
        sarif: None,
        warnings: false,
    };
    let mut iter = raw.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => {
                let v = iter.next().ok_or("--root needs a directory")?;
                opts.root = PathBuf::from(v);
            }
            "--config" => {
                let v = iter.next().ok_or("--config needs a file")?;
                opts.config = Some(PathBuf::from(v));
            }
            "--json" => {
                // Optional value: `--json` prints to stdout,
                // `--json report.json` writes the file.
                let takes_value = iter
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false);
                opts.json = Some(if takes_value {
                    iter.next().map(PathBuf::from)
                } else {
                    None
                });
            }
            "--sarif" => {
                // Same optional-value shape as --json.
                let takes_value = iter
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false);
                opts.sarif = Some(if takes_value {
                    iter.next().map(PathBuf::from)
                } else {
                    None
                });
            }
            "--warnings" => opts.warnings = true,
            "--help" | "-h" => {
                println!(
                    "sp_lint — workspace determinism-and-safety static analysis\n\n\
                     USAGE: sp_lint [--root DIR] [--config FILE] [--json [FILE]] [--sarif [FILE]] [--warnings]\n\n\
                     OPTIONS:\n\
                       --root DIR     workspace root to lint (default: .)\n\
                       --config FILE  lint configuration (default: <root>/lint.toml)\n\
                       --json [FILE]  machine-readable report to FILE (or stdout)\n\
                       --sarif [FILE] SARIF 2.1.0 report to FILE (or stdout), for code scanning\n\
                       --warnings     list warn-level findings (always counted)\n\n\
                     EXIT CODES: 0 clean, 1 deny-level findings, 2 usage/config error\n\
                     RULES: D1 hash containers, D2 wall-clock/env reads, D3 unseeded RNG,\n\
                            S1 unsafe hygiene, S2 unwrap/expect, F1 parallel float sums,\n\
                            F2 locks/atomics in shared-nothing hot paths, F3 channel unwraps,\n\
                            L1 crate layering, P1 I/O purity, R1 RNG lineage\n\
                     (see DESIGN.md §13 for the contract and lint.toml for the baseline)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other:?} (try --help)")),
        }
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<bool, String> {
    let cfg: LintConfig = match &opts.config {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            LintConfig::parse(&text)?
        }
        None => load_config(&opts.root)?,
    };
    let report = lint_workspace(&opts.root, &cfg)?;
    match &opts.sarif {
        Some(Some(path)) => {
            std::fs::write(path, sp_lint::sarif::render_sarif(&report, &cfg))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        Some(None) => print!("{}", sp_lint::sarif::render_sarif(&report, &cfg)),
        None => {}
    }
    match &opts.json {
        Some(Some(path)) => {
            std::fs::write(path, report.render_json())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            // Keep the human summary on stderr so a JSON-to-stdout
            // pipeline stays parseable either way.
            eprint!("{}", report.render_human(opts.warnings));
        }
        Some(None) => {
            print!("{}", report.render_json());
            eprint!("{}", report.render_human(opts.warnings));
        }
        None => print!("{}", report.render_human(opts.warnings)),
    }
    Ok(report.deny_count() == 0)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&raw) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
