//! Workspace traversal: which files get linted, and what
//! [`crate::rules::FileContext`] each one carries.
//!
//! Scope matches the determinism contract, not the filesystem:
//! every `.rs` file under `crates/<name>/{src,tests,benches}` and the
//! workspace-level `tests/` and `examples/` directories, excluding
//!
//! * `crates/compat/**` — vendored API stubs for offline builds; they
//!   mirror external crates' source, which is not ours to lint;
//! * `crates/lint/tests/fixtures/**` — known-bad corpus that exists
//!   precisely to violate every rule.

use std::fs;
use std::path::{Path, PathBuf};

use crate::rules::FileContext;

/// One file to lint.
#[derive(Debug, Clone)]
pub struct WorkspaceFile {
    /// Absolute (or root-joined) path for reading.
    pub full_path: PathBuf,
    /// Context handed to the rules (repo-relative path inside).
    pub ctx: FileContext,
}

/// Collects every lintable file under `root` (the workspace root),
/// sorted by repo-relative path so reports and JSON artifacts are
/// stable across filesystems.
pub fn workspace_files(root: &Path) -> Result<Vec<WorkspaceFile>, String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read crates/: {e}"))?;
        let crate_name = entry.file_name().to_string_lossy().to_string();
        if crate_name == "compat" || !entry.path().is_dir() {
            continue;
        }
        for sub in ["src", "tests", "benches"] {
            let dir = entry.path().join(sub);
            if dir.is_dir() {
                collect_rs(&dir, root, &crate_name, sub != "src", &mut out)?;
            }
        }
    }
    // Workspace-level integration tests and examples: test-only code
    // that still must honor the determinism rules (D1–D3).
    for (dir, label) in [("tests", "workspace-tests"), ("examples", "examples")] {
        let path = root.join(dir);
        if path.is_dir() {
            collect_rs(&path, root, label, true, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.ctx.path.cmp(&b.ctx.path));
    Ok(out)
}

fn collect_rs(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    is_test_file: bool,
    out: &mut Vec<WorkspaceFile>,
) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if rel == "crates/lint/tests/fixtures" {
                continue;
            }
            collect_rs(&path, root, crate_name, is_test_file, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            let is_lib_root = rel.ends_with("/src/lib.rs");
            out.push(WorkspaceFile {
                full_path: path.clone(),
                ctx: FileContext {
                    path: rel,
                    crate_name: crate_name.to_string(),
                    is_test_file,
                    is_lib_root,
                },
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        // crates/lint -> crates -> workspace root
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .map(Path::to_path_buf)
            .expect("lint crate lives two levels under the workspace root")
    }

    #[test]
    fn walk_finds_known_files_and_skips_exclusions() {
        let files = workspace_files(&repo_root()).unwrap();
        let paths: Vec<&str> = files.iter().map(|f| f.ctx.path.as_str()).collect();
        assert!(paths.contains(&"crates/sim/src/engine.rs"));
        assert!(paths.contains(&"crates/lint/src/walk.rs"));
        assert!(paths.iter().all(|p| !p.starts_with("crates/compat/")));
        assert!(paths
            .iter()
            .all(|p| !p.starts_with("crates/lint/tests/fixtures/")));
        // Sorted and de-duplicated.
        let mut sorted = paths.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(paths, sorted);
    }

    #[test]
    fn contexts_classify_tests_and_lib_roots() {
        let files = workspace_files(&repo_root()).unwrap();
        let by_path = |p: &str| files.iter().find(|f| f.ctx.path == p).unwrap();
        let lib = by_path("crates/sim/src/lib.rs");
        assert!(lib.ctx.is_lib_root && !lib.ctx.is_test_file);
        assert_eq!(lib.ctx.crate_name, "sim");
        let t = by_path("crates/sim/tests/sim_determinism.rs");
        assert!(t.ctx.is_test_file && !t.ctx.is_lib_root);
        let e2e = files.iter().find(|f| f.ctx.path == "tests/end_to_end.rs");
        assert!(e2e.map(|f| f.ctx.is_test_file).unwrap_or(false));
    }
}
