//! SARIF 2.1.0 renderer, so CI can upload lint results to the GitHub
//! code-scanning UI (`github/codeql-action/upload-sarif`). Emitted by
//! hand like the JSON report — same offline-dependency policy.
//!
//! Shape: one run, `tool.driver.rules` carrying metadata for every
//! rule id, one `result` per finding (deny → `error`, warn →
//! `warning`), and suppressed findings included with an `external`
//! suppression so the `[[allow]]` baseline stays visible in the UI.

use crate::config::RULE_IDS;
use crate::diag::{json_escape, Finding, Report, Severity};

/// One-line description per rule id, for `tool.driver.rules`.
fn rule_description(rule: &str) -> &'static str {
    match rule {
        "D1" => "Unordered hash containers (HashMap/HashSet) in deterministic crates",
        "D2" => "Wall-clock / env reads outside the observability module scopes",
        "D3" => "Unseeded RNG construction (thread_rng, from_entropy, OsRng)",
        "S1" => "unsafe without a SAFETY comment; missing #![forbid(unsafe_code)] on lib roots",
        "S2" => "unwrap()/expect() outside #[cfg(test)]",
        "F1" => "Float .sum() over a parallel iterator (order-dependent reduction)",
        "F2" => "Locks/atomics (Mutex, RwLock, Atomic*, Condvar) in shared-nothing hot paths",
        "F3" => "Bare .unwrap()/.expect() on inter-shard channel operations",
        "L1" => "Cross-crate use that violates the declared [layering] DAG",
        "P1" => "I/O (std::net/fs/process, stdio, print macros) in pure-core modules",
        "R1" => "RNG lineage breaks: foreign RNG types, roots outside seed-root modules, RNG state in inter-shard channels",
        _ => "sp-lint rule",
    }
}

fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Deny => "error",
        Severity::Warn => "warning",
        Severity::Allow => "note",
    }
}

fn push_result(s: &mut String, f: &Finding, suppressed: Option<&str>, sep: &str) {
    let mut text = f.message.clone();
    if !f.import_chain.is_empty() {
        text.push_str(&format!(" (chain: {})", f.import_chain.join(" -> ")));
    }
    text.push_str(&format!(" — fix: {}", f.hint));
    s.push_str("        {\n");
    s.push_str(&format!("          \"ruleId\": \"{}\",\n", f.rule));
    s.push_str(&format!(
        "          \"level\": \"{}\",\n",
        level(f.severity)
    ));
    s.push_str(&format!(
        "          \"message\": {{ \"text\": \"{}\" }},\n",
        json_escape(&text)
    ));
    s.push_str("          \"locations\": [\n");
    s.push_str("            {\n");
    s.push_str("              \"physicalLocation\": {\n");
    s.push_str(&format!(
        "                \"artifactLocation\": {{ \"uri\": \"{}\" }},\n",
        json_escape(&f.path)
    ));
    s.push_str(&format!(
        "                \"region\": {{ \"startLine\": {}, \"startColumn\": {} }}\n",
        f.line, f.col
    ));
    s.push_str("              }\n");
    s.push_str("            }\n");
    if let Some(justification) = suppressed {
        s.push_str("          ],\n");
        s.push_str(&format!(
            "          \"suppressions\": [ {{ \"kind\": \"external\", \"justification\": \"{}\" }} ]\n",
            json_escape(justification)
        ));
    } else {
        s.push_str("          ]\n");
    }
    s.push_str(&format!("        }}{sep}\n"));
}

/// Renders the report as a SARIF 2.1.0 document. Findings keep the
/// report's `(path, line, col, rule)` order, so the document is as
/// byte-reproducible as the JSON artifact.
pub fn render_sarif(report: &Report, cfg: &crate::config::LintConfig) -> String {
    let mut s = String::with_capacity(8192);
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n");
    s.push_str("    {\n");
    s.push_str("      \"tool\": {\n");
    s.push_str("        \"driver\": {\n");
    s.push_str("          \"name\": \"sp-lint\",\n");
    s.push_str("          \"informationUri\": \"https://example.invalid/sp-lint\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, rule) in RULE_IDS.iter().enumerate() {
        let sep = if i + 1 < RULE_IDS.len() { "," } else { "" };
        s.push_str(&format!(
            "            {{ \"id\": \"{rule}\", \"shortDescription\": {{ \"text\": \"{}\" }}, \"defaultConfiguration\": {{ \"level\": \"{}\" }} }}{sep}\n",
            json_escape(rule_description(rule)),
            level(cfg.severity_of(rule))
        ));
    }
    s.push_str("          ]\n");
    s.push_str("        }\n");
    s.push_str("      },\n");
    s.push_str("      \"results\": [\n");
    let total = report.findings.len() + report.suppressed.len();
    let mut emitted = 0usize;
    for f in &report.findings {
        emitted += 1;
        let sep = if emitted < total { "," } else { "" };
        push_result(&mut s, f, None, sep);
    }
    for f in &report.suppressed {
        emitted += 1;
        let sep = if emitted < total { "," } else { "" };
        let justification = cfg
            .allow_entry(f.rule, &f.path)
            .map(|a| a.justification.as_str())
            .unwrap_or("suppressed by lint.toml [[allow]]");
        push_result(&mut s, f, Some(justification), sep);
    }
    s.push_str("      ]\n");
    s.push_str("    }\n");
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LintConfig;
    use crate::diag::Report;

    fn finding(rule: &'static str, severity: Severity) -> Finding {
        Finding {
            rule,
            severity,
            path: "crates/sim/src/x.rs".into(),
            line: 7,
            col: 5,
            module_path: "sp_sim::x".into(),
            import_chain: vec!["sp_graph".into(), "sp_sim".into()],
            message: "a \"quoted\" message".into(),
            hint: "do the right thing",
        }
    }

    #[test]
    fn sarif_document_is_balanced_and_carries_rules() {
        let cfg = LintConfig::default();
        let r = Report {
            findings: vec![finding("L1", Severity::Deny), finding("S2", Severity::Warn)],
            suppressed: vec![],
            files_scanned: 2,
        };
        let sarif = render_sarif(&r, &cfg);
        assert_eq!(sarif.matches('{').count(), sarif.matches('}').count());
        assert_eq!(sarif.matches('[').count(), sarif.matches(']').count());
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        for rule in RULE_IDS {
            assert!(sarif.contains(&format!("\"id\": \"{rule}\"")), "{rule}");
        }
        assert!(sarif.contains("\"level\": \"error\""));
        assert!(sarif.contains("\"level\": \"warning\""));
        assert!(sarif.contains("\"startColumn\": 5"));
        assert!(sarif.contains("chain: sp_graph -> sp_sim"));
        assert!(!sarif.contains("\"suppressions\""));
    }

    #[test]
    fn suppressed_findings_carry_external_suppressions() {
        let mut cfg = LintConfig::default();
        cfg.allow.push(crate::config::AllowEntry {
            rule: "S2".into(),
            path: "crates/sim/src/x.rs".into(),
            justification: "documented invariant".into(),
        });
        let r = Report {
            findings: vec![],
            suppressed: vec![finding("S2", Severity::Deny)],
            files_scanned: 1,
        };
        let sarif = render_sarif(&r, &cfg);
        assert!(sarif.contains("\"kind\": \"external\""));
        assert!(sarif.contains("documented invariant"));
        assert_eq!(sarif.matches('{').count(), sarif.matches('}').count());
    }
}
