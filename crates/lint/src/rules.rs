//! The token-pattern rules of the static determinism-and-safety
//! contract (the workspace-graph rules L1/P1/R1 live in
//! [`crate::rules_ws`]).
//!
//! | Rule | Class        | What it catches                                             |
//! |------|--------------|-------------------------------------------------------------|
//! | D1   | determinism  | default-hashed `HashMap`/`HashSet` in deterministic crates  |
//! | D2   | determinism  | wall-clock / env reads outside observability modules        |
//! | D3   | determinism  | unseeded RNG (`thread_rng`, `from_entropy`, `OsRng`)        |
//! | S1   | safety       | `unsafe` without a `// SAFETY:` comment; deterministic      |
//! |      |              | crates missing `#![forbid(unsafe_code)]`                    |
//! | S2   | safety       | `unwrap()` / `expect()` outside `#[cfg(test)]`              |
//! | F1   | determinism  | float `.sum::<f64>()` over a parallel iterator              |
//! | F2   | determinism  | locks/atomics (`Mutex`, `RwLock`, `Atomic*`, `Condvar`)     |
//! |      |              | in shared-nothing simulator hot paths                       |
//! | F3   | robustness   | bare `.unwrap()`/`.expect()` on inter-shard channel         |
//! |      |              | `send`/`recv` calls in supervised hot paths                 |
//!
//! All rules operate on the token stream from [`crate::lexer`]; none
//! need type information. That bounds what they can see — a
//! `HashMap` smuggled through a type alias is invisible — but the
//! contract these rules enforce is about what the *source* says, and
//! the fixture corpus pins the exact behavior either way.

use crate::config::LintConfig;
use crate::diag::{Finding, Severity};
use crate::lexer::{Tok, TokKind};
use crate::resolve::{AnalyzedFile, SourceUnit};

/// Where a file sits in the workspace; drives which rules apply.
#[derive(Debug, Clone, Default)]
pub struct FileContext {
    /// Repo-relative path (`crates/sim/src/engine.rs`).
    pub path: String,
    /// Crate directory name under `crates/` (`sim`, `cli`, …).
    pub crate_name: String,
    /// Whether the file is test-only code (under `tests/`,
    /// `benches/`, or `examples/`): S2 does not apply there.
    pub is_test_file: bool,
    /// Whether the file is a crate root (`src/lib.rs`): the S1
    /// `#![forbid(unsafe_code)]` audit applies only there.
    pub is_lib_root: bool,
}

/// Lints one source file through the full pipeline (token rules plus
/// the workspace-graph rules on a single-file workspace). Returns raw
/// findings; the `[[allow]]` baseline only applies through
/// [`crate::lint_sources`], so per-file callers — the fixture tests —
/// see everything when run against the default (baseline-free)
/// configuration.
pub fn lint_source(src: &str, ctx: &FileContext, cfg: &LintConfig) -> Vec<Finding> {
    let unit = SourceUnit {
        ctx: ctx.clone(),
        src: src.to_string(),
    };
    let mut report = crate::lint_sources(vec![unit], cfg);
    let mut out = report.findings;
    out.append(&mut report.suppressed);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Runs the token-pattern rules (D1–F3) over one analyzed file.
pub fn lint_tokens(af: &AnalyzedFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    rule_d1(af, cfg, out);
    rule_d2(af, cfg, out);
    rule_d3(af, cfg, out);
    rule_s1(af, cfg, out);
    rule_s2(af, cfg, out);
    rule_f1(af, cfg, out);
    rule_f2(af, cfg, out);
    rule_f3(af, cfg, out);
}

/// Looks up the `n`-th code token after position `k` in the `code`
/// index list, if any.
fn code_tok<'a>(toks: &'a [Tok], code: &[usize], k: usize, n: usize) -> Option<&'a Tok> {
    code.get(k + n).map(|&i| &toks[i])
}

#[allow(clippy::too_many_arguments)]
fn push(
    out: &mut Vec<Finding>,
    rule: &'static str,
    severity: Severity,
    af: &AnalyzedFile,
    tok_idx: usize,
    message: String,
    hint: &'static str,
) {
    if severity == Severity::Allow {
        return;
    }
    let (line, col) = af
        .toks
        .get(tok_idx)
        .map(|t| (t.line, t.col))
        .unwrap_or((1, 1));
    out.push(Finding {
        rule,
        severity,
        path: af.ctx.path.clone(),
        line,
        col,
        module_path: af.module_of(tok_idx),
        import_chain: Vec::new(),
        message,
        hint,
    });
}

/// D1 — default-hashed containers in deterministic crates. Iteration
/// order of `std::collections::HashMap`/`HashSet` varies run-to-run
/// (SipHash keys are randomized per process), so any drain feeding
/// metrics breaks bitwise reproducibility. The rule bans the types
/// outright — including in `#[cfg(test)]` code, where order-dependent
/// assertions become flaky — and the popular third-party spellings.
fn rule_d1(af: &AnalyzedFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !cfg.is_deterministic(&af.ctx.crate_name) {
        return;
    }
    let severity = cfg.severity_of("D1");
    const BANNED: [&str; 6] = [
        "HashMap",
        "HashSet",
        "AHashMap",
        "AHashSet",
        "FxHashMap",
        "FxHashSet",
    ];
    for &i in &af.code {
        let t = &af.toks[i];
        if t.kind == TokKind::Ident && BANNED.contains(&t.text.as_str()) {
            // `HashMap::with_hasher` with an explicit deterministic
            // hasher would be legal, but no call site needs it; keep
            // the rule simple and absolute.
            push(
                out,
                "D1",
                severity,
                af,
                i,
                format!(
                    "default-hashed `{}` in deterministic crate `{}`",
                    t.text, af.ctx.crate_name
                ),
                "use BTreeMap/BTreeSet (or a sorted drain / a fixed-hash set like sp_graph::PairSet)",
            );
        }
    }
}

/// D2 — wall-clock and environment reads. `Instant::now`,
/// `SystemTime`, and `env::var` make output depend on when/where the
/// process runs; they are only legal in the allowlisted observability
/// set (`sp_sim::metrics`, bench binaries, the CLI).
fn rule_d2(af: &AnalyzedFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if cfg.d2_allowed(&af.ctx.path, &af.module_path) {
        return;
    }
    let (toks, code) = (&af.toks, &af.code);
    let severity = cfg.severity_of("D2");
    for (k, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            // `Instant::now()` / `SystemTime::now()`.
            "Instant" | "SystemTime" => {
                let colons = code_tok(toks, code, k, 1)
                    .map(|t| t.is_punct(':'))
                    .unwrap_or(false)
                    && code_tok(toks, code, k, 2)
                        .map(|t| t.is_punct(':'))
                        .unwrap_or(false);
                let now = code_tok(toks, code, k, 3)
                    .map(|t| t.is_ident("now"))
                    .unwrap_or(false);
                if t.text == "SystemTime" {
                    // Any SystemTime use is wall-clock dependent.
                    true
                } else {
                    colons && now
                }
            }
            // `env::var(…)` / `env::var_os(…)` / `env::vars()`.
            "env" => {
                code_tok(toks, code, k, 1)
                    .map(|t| t.is_punct(':'))
                    .unwrap_or(false)
                    && code_tok(toks, code, k, 2)
                        .map(|t| t.is_punct(':'))
                        .unwrap_or(false)
                    && code_tok(toks, code, k, 3)
                        .map(|t| matches!(t.text.as_str(), "var" | "var_os" | "vars"))
                        .unwrap_or(false)
            }
            _ => false,
        };
        if flagged {
            push(
                out,
                "D2",
                severity,
                af,
                i,
                format!(
                    "wall-clock/environment read (`{}`) outside the observability allowlist",
                    t.text
                ),
                "move the read into sp_sim::metrics / bench / CLI, or thread the value in as a parameter",
            );
        }
    }
}

/// D3 — unseeded randomness, anywhere (tests included): `thread_rng`,
/// `from_entropy`, and `OsRng` all pull operating-system entropy, so
/// no run that touches them can ever be replayed.
fn rule_d3(af: &AnalyzedFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let severity = cfg.severity_of("D3");
    for &i in &af.code {
        let t = &af.toks[i];
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "thread_rng" | "from_entropy" | "OsRng")
        {
            push(
                out,
                "D3",
                severity,
                af,
                i,
                format!("unseeded RNG (`{}`)", t.text),
                "derive every stream from the run seed (SpRng::seed_from_u64 + named substreams)",
            );
        }
    }
}

/// S1 — unsafe hygiene. Every `unsafe` keyword must be announced by a
/// `// SAFETY:` comment: on the same line, or in the contiguous
/// comment block directly above (multi-line SAFETY paragraphs count).
/// Deterministic crate roots must additionally carry
/// `#![forbid(unsafe_code)]` so the audit cannot rot.
fn rule_s1(af: &AnalyzedFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let (toks, code) = (&af.toks, &af.code);
    let severity = cfg.severity_of("S1");
    // Per-line comment facts. A block comment spanning lines marks
    // every line it covers.
    let mut comment_lines = std::collections::BTreeSet::new();
    let mut safety_lines = std::collections::BTreeSet::new();
    for t in toks {
        if !t.is_comment() {
            continue;
        }
        let span = t.text.matches('\n').count() as u32;
        for line in t.line..=t.line + span {
            comment_lines.insert(line);
        }
        if t.text.contains("SAFETY:") {
            safety_lines.insert(t.line);
        }
    }
    for &i in code {
        let t = &toks[i];
        if !t.is_ident("unsafe") {
            continue;
        }
        // Walk up through the contiguous comment block above the
        // `unsafe` line; any SAFETY: marker in it (or on the line
        // itself) documents the block.
        let mut lo = t.line;
        while lo > 1 && comment_lines.contains(&(lo - 1)) {
            lo -= 1;
        }
        let documented = safety_lines.range(lo..=t.line).next().is_some();
        if !documented {
            push(
                out,
                "S1",
                severity,
                af,
                i,
                "`unsafe` without a `// SAFETY:` comment".to_string(),
                "document the invariant that makes this sound in a `// SAFETY:` comment directly above",
            );
        }
    }
    if af.ctx.is_lib_root && cfg.is_deterministic(&af.ctx.crate_name) {
        // `forbid ( unsafe_code` as consecutive code tokens.
        let has_forbid = (0..code.len()).any(|k| {
            toks[code[k]].is_ident("forbid")
                && code_tok(toks, code, k, 1)
                    .map(|t| t.is_punct('('))
                    .unwrap_or(false)
                && code_tok(toks, code, k, 2)
                    .map(|t| t.is_ident("unsafe_code"))
                    .unwrap_or(false)
        });
        if !has_forbid {
            push(
                out,
                "S1",
                severity,
                af,
                0,
                format!(
                    "deterministic crate `{}` is missing `#![forbid(unsafe_code)]` in its crate root",
                    af.ctx.crate_name
                ),
                "add `#![forbid(unsafe_code)]` to src/lib.rs",
            );
        }
    }
}

/// S2 — panic paths in library code. `unwrap()` outside `#[cfg(test)]`
/// is denied; `expect("…")` carries its invariant in the message and
/// gets a separately configurable (default: warn) severity, because
/// converting hot-loop invariant checks to `Result` plumbing has a
/// measured throughput cost (see DESIGN.md §13).
fn rule_s2(af: &AnalyzedFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if af.ctx.is_test_file || !cfg.checks_unwrap(&af.ctx.crate_name) {
        return;
    }
    let (toks, code) = (&af.toks, &af.code);
    for (k, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || af.tests.contains(i) {
            continue;
        }
        let preceded_by_dot = k > 0 && toks[code[k - 1]].is_punct('.');
        if !preceded_by_dot {
            continue;
        }
        match t.text.as_str() {
            "unwrap"
                if code_tok(toks, code, k, 1)
                    .map(|t| t.is_punct('('))
                    .unwrap_or(false)
                    && code_tok(toks, code, k, 2)
                        .map(|t| t.is_punct(')'))
                        .unwrap_or(false) =>
            {
                push(
                    out,
                    "S2",
                    cfg.severity_of("S2"),
                    af,
                    i,
                    "`.unwrap()` in library code outside #[cfg(test)]".to_string(),
                    "propagate with `?` (CliError in the CLI), or use expect(\"documented invariant\")",
                );
            }
            "expect"
                if code_tok(toks, code, k, 1)
                    .map(|t| t.is_punct('('))
                    .unwrap_or(false) =>
            {
                push(
                    out,
                    "S2",
                    cfg.s2_expect,
                    af,
                    i,
                    "`.expect()` in library code outside #[cfg(test)]".to_string(),
                    "prefer Result propagation where the caller can recover; keep expect only for documented invariants",
                );
            }
            _ => {}
        }
    }
}

/// F1 — order-sensitive float reductions. Float addition is not
/// associative, so `.sum::<f64>()` over a parallel iterator produces
/// run-dependent results. The rule flags a float `sum`/`product`
/// turbofish in any statement that also mentions a rayon-style
/// parallel-iterator constructor.
fn rule_f1(af: &AnalyzedFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !cfg.is_deterministic(&af.ctx.crate_name) {
        return;
    }
    let (toks, code) = (&af.toks, &af.code);
    let severity = cfg.severity_of("F1");
    for (k, &i) in code.iter().enumerate() {
        let t = &toks[i];
        let is_float_reduce = matches!(t.text.as_str(), "sum" | "product")
            && t.kind == TokKind::Ident
            && k > 0
            && toks[code[k - 1]].is_punct('.')
            && code_tok(toks, code, k, 1)
                .map(|t| t.is_punct(':'))
                .unwrap_or(false)
            && code_tok(toks, code, k, 2)
                .map(|t| t.is_punct(':'))
                .unwrap_or(false)
            && code_tok(toks, code, k, 3)
                .map(|t| t.is_punct('<'))
                .unwrap_or(false)
            && code_tok(toks, code, k, 4)
                .map(|t| matches!(t.text.as_str(), "f64" | "f32"))
                .unwrap_or(false);
        if !is_float_reduce {
            continue;
        }
        // Scan backwards to the statement start (`;`, `{`, or `}`)
        // looking for a parallel-iterator source.
        let mut parallel = false;
        for back in (0..k).rev() {
            let b = &toks[code[back]];
            if matches!(
                b.kind,
                TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}')
            ) {
                break;
            }
            if b.kind == TokKind::Ident
                && matches!(
                    b.text.as_str(),
                    "par_iter" | "into_par_iter" | "par_bridge" | "par_chunks"
                )
            {
                parallel = true;
                break;
            }
        }
        if parallel {
            push(
                out,
                "F1",
                severity,
                af,
                i,
                format!(
                    "non-deterministic float `.{}::<…>()` over a parallel iterator",
                    t.text
                ),
                "reduce per-shard into an ordered Vec, then fold sequentially in shard order",
            );
        }
    }
}

/// F2 — shared mutable state in shared-nothing hot paths. The sharded
/// simulator's determinism proof rests on shards owning their state
/// outright and exchanging messages only at tick barriers (DESIGN.md
/// §15); a `Mutex` or atomic counter reintroduces scheduling-dependent
/// interleaving that no test can pin. The rule bans the primitive
/// *types* (`Mutex`, `RwLock`, `Condvar`, `Barrier`, `Atomic*`,
/// `OnceLock`, `LazyLock`) in the configured hot-path files — tests
/// included, since a lock in a test of a lock-free module is a design
/// smell, not a convenience. Bounded `mpsc` channels stay legal: they
/// are the sanctioned barrier transport.
fn rule_f2(af: &AnalyzedFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !cfg.f2_hot(&af.ctx.path) {
        return;
    }
    let severity = cfg.severity_of("F2");
    for &i in &af.code {
        let t = &af.toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let banned = matches!(
            t.text.as_str(),
            "Mutex" | "RwLock" | "Condvar" | "Barrier" | "OnceLock" | "LazyLock"
        ) || (t.text.starts_with("Atomic") && t.text.len() > "Atomic".len());
        if banned {
            push(
                out,
                "F2",
                severity,
                af,
                i,
                format!(
                    "shared-state primitive `{}` in shared-nothing hot path",
                    t.text
                ),
                "shards own their state; cross-shard data moves through bounded mpsc batches at tick barriers",
            );
        }
    }
}

/// F3 — unsupervised channel unwraps in supervised hot paths. The
/// shard supervisor's crash-containment proof (DESIGN.md §17) rests on
/// every inter-shard channel operation being error-aware: when a peer
/// reactor dies, its channels disconnect, and the survivors must
/// convert that `Err` into a named `ShardFailure` so the supervisor
/// can report *which* shard failed at *which* tick. A bare
/// `.send(…).unwrap()` / `.recv().unwrap()` (or `.expect(…)` — the
/// message cannot name the dead shard) instead cascades the panic
/// through every surviving reactor, turning one diagnosable failure
/// into a pile of "channel closed" backtraces. Tests included, same
/// rationale as F2.
fn rule_f3(af: &AnalyzedFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !cfg.f3_hot(&af.ctx.path) {
        return;
    }
    let (toks, code) = (&af.toks, &af.code);
    let severity = cfg.severity_of("F3");
    for (k, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || !matches!(
                t.text.as_str(),
                "send" | "recv" | "try_recv" | "recv_timeout"
            )
        {
            continue;
        }
        // Must be a method call: `.send(` / `.recv(` etc.
        let preceded_by_dot = k > 0 && toks[code[k - 1]].is_punct('.');
        let opens_call = code_tok(toks, code, k, 1)
            .map(|t| t.is_punct('('))
            .unwrap_or(false);
        if !preceded_by_dot || !opens_call {
            continue;
        }
        // Skip the balanced argument list to the closing `)`.
        let mut depth = 0usize;
        let mut close = None;
        for (j, &ci) in code.iter().enumerate().skip(k + 1) {
            if toks[ci].is_punct('(') {
                depth += 1;
            } else if toks[ci].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    close = Some(j);
                    break;
                }
            }
        }
        let Some(close) = close else { continue };
        let chained_panic = code_tok(toks, code, close, 1)
            .map(|t| t.is_punct('.'))
            .unwrap_or(false)
            && code_tok(toks, code, close, 2)
                .map(|t| matches!(t.text.as_str(), "unwrap" | "expect"))
                .unwrap_or(false)
            && code_tok(toks, code, close, 3)
                .map(|t| t.is_punct('('))
                .unwrap_or(false);
        if chained_panic {
            let method = &code_tok(toks, code, close, 2).expect("matched above").text;
            push(
                out,
                "F3",
                severity,
                af,
                i,
                format!(
                    "unsupervised `.{}(…).{}(…)` on an inter-shard channel",
                    t.text, method
                ),
                "map the channel error to a ShardFailure (a dead peer shard must surface as a supervised failure, not a cascading panic)",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_det() -> FileContext {
        FileContext {
            path: "crates/sim/src/x.rs".into(),
            crate_name: "sim".into(),
            is_test_file: false,
            is_lib_root: false,
        }
    }

    fn run(src: &str, ctx: &FileContext) -> Vec<Finding> {
        lint_source(src, ctx, &LintConfig::default())
    }

    #[test]
    fn d1_flags_hash_containers_and_spares_btree() {
        let f = run(
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32>; }",
            &ctx_det(),
        );
        assert!(f.iter().filter(|f| f.rule == "D1").count() >= 2);
        let f = run(
            "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, u32>; }",
            &ctx_det(),
        );
        assert!(f.iter().all(|f| f.rule != "D1"));
    }

    #[test]
    fn d1_skips_non_deterministic_crates() {
        let ctx = FileContext {
            path: "crates/bench/src/x.rs".into(),
            crate_name: "bench".into(),
            ..FileContext::default()
        };
        let f = run("use std::collections::HashMap;", &ctx);
        assert!(f.iter().all(|f| f.rule != "D1"));
    }

    #[test]
    fn d2_flags_clock_and_env_outside_allowlist() {
        let src = "fn f() { let t = Instant::now(); let v = std::env::var(\"X\"); }";
        let f = run(src, &ctx_det());
        assert_eq!(f.iter().filter(|f| f.rule == "D2").count(), 2);
        // Allowlisted module (sp_sim::metrics): clean.
        let ctx = FileContext {
            path: "crates/sim/src/metrics.rs".into(),
            crate_name: "sim".into(),
            ..FileContext::default()
        };
        assert!(run(src, &ctx).iter().all(|f| f.rule != "D2"));
    }

    #[test]
    fn d2_does_not_flag_instant_elapsed_or_durations() {
        let f = run(
            "fn f(t: Instant) -> u64 { t.elapsed().as_nanos() as u64 }",
            &ctx_det(),
        );
        assert!(f.iter().all(|f| f.rule != "D2"));
    }

    #[test]
    fn d3_flags_unseeded_rng_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { let r = thread_rng(); }\n}";
        let f = run(src, &ctx_det());
        assert_eq!(f.iter().filter(|f| f.rule == "D3").count(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn findings_carry_col_and_module_path() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { let r = thread_rng(); }\n}";
        let f = run(src, &ctx_det());
        let d3 = f.iter().find(|f| f.rule == "D3").unwrap();
        assert_eq!(d3.col, 19, "column of the thread_rng token");
        assert_eq!(d3.module_path, "sp_sim::x::tests");
    }

    #[test]
    fn s1_requires_safety_comment() {
        let bad = "fn f() { unsafe { do_it() } }";
        let f = run(bad, &ctx_det());
        assert_eq!(f.iter().filter(|f| f.rule == "S1").count(), 1);
        let good =
            "fn f() {\n    // SAFETY: the buffer outlives the call.\n    unsafe { do_it() }\n}";
        assert!(run(good, &ctx_det()).iter().all(|f| f.rule != "S1"));
    }

    #[test]
    fn s1_audits_forbid_on_deterministic_lib_roots() {
        let ctx = FileContext {
            path: "crates/sim/src/lib.rs".into(),
            crate_name: "sim".into(),
            is_lib_root: true,
            ..FileContext::default()
        };
        let f = run("pub mod x;", &ctx);
        assert!(f
            .iter()
            .any(|f| f.rule == "S1" && f.message.contains("forbid")));
        let f = run("#![forbid(unsafe_code)]\npub mod x;", &ctx);
        assert!(f.iter().all(|f| f.rule != "S1"));
    }

    #[test]
    fn s2_unwrap_deny_expect_warn_tests_exempt() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.expect(\"always set\") }\n\
                   #[cfg(test)]\nmod tests { fn t(x: Option<u32>) -> u32 { x.unwrap() } }";
        let f = run(src, &ctx_det());
        let s2: Vec<_> = f.iter().filter(|f| f.rule == "S2").collect();
        assert_eq!(s2.len(), 2);
        assert_eq!(s2[0].severity, Severity::Deny);
        assert_eq!(s2[0].line, 1);
        assert_eq!(s2[1].severity, Severity::Warn);
        assert_eq!(s2[1].line, 2);
    }

    #[test]
    fn s2_spares_unwrap_or_variants_and_test_files() {
        let f = run("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }", &ctx_det());
        assert!(f.iter().all(|f| f.rule != "S2"));
        let ctx = FileContext {
            path: "crates/sim/tests/t.rs".into(),
            crate_name: "sim".into(),
            is_test_file: true,
            ..FileContext::default()
        };
        let f = run("fn f(x: Option<u32>) -> u32 { x.unwrap() }", &ctx);
        assert!(f.iter().all(|f| f.rule != "S2"));
    }

    #[test]
    fn f1_flags_parallel_float_sums_only() {
        let bad = "fn f(v: &[f64]) -> f64 { v.par_iter().map(|x| x * 2.0).sum::<f64>() }";
        let f = run(bad, &ctx_det());
        assert_eq!(f.iter().filter(|f| f.rule == "F1").count(), 1);
        let good = "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }";
        assert!(run(good, &ctx_det()).iter().all(|f| f.rule != "F1"));
        let intsum = "fn f(v: &[u64]) -> u64 { v.par_iter().sum::<u64>() }";
        assert!(run(intsum, &ctx_det()).iter().all(|f| f.rule != "F1"));
    }

    #[test]
    fn f2_flags_locks_and_atomics_in_hot_paths_only() {
        let bad = "use std::sync::{Mutex, atomic::AtomicU64};\n\
                   struct S { total: AtomicU64, guard: Mutex<u32> }";
        let f = run(bad, &ctx_det());
        assert_eq!(f.iter().filter(|f| f.rule == "F2").count(), 4);
        // mpsc is the sanctioned transport.
        let good = "use std::sync::mpsc::{sync_channel, Receiver, SyncSender};";
        assert!(run(good, &ctx_det()).iter().all(|f| f.rule != "F2"));
        // Outside the configured hot paths the primitives are legal.
        let ctx = FileContext {
            path: "crates/cli/src/commands.rs".into(),
            crate_name: "cli".into(),
            ..FileContext::default()
        };
        assert!(run(bad, &ctx).iter().all(|f| f.rule != "F2"));
    }

    #[test]
    fn f3_flags_channel_unwraps_even_in_tests_and_spares_mapped_errors() {
        // In a test region S2 is blind; F3 must still fire.
        let bad = "#[cfg(test)]\nmod tests {\n fn f(tx: SyncSender<u64>, rx: Receiver<u64>) {\n \
                   tx.send(1).unwrap();\n let v = rx.recv().expect(\"alive\");\n let _ = v;\n }\n}";
        let f = run(bad, &ctx_det());
        let f3: Vec<_> = f.iter().filter(|f| f.rule == "F3").collect();
        assert_eq!(f3.len(), 2);
        assert_eq!(f3[0].line, 4);
        assert_eq!(f3[1].line, 5);
        // The supervised idiom — error mapped to a failure value — is clean.
        let good = "fn f(tx: &SyncSender<u64>) -> Result<(), LinkDown> {\n \
                    tx.send(1).map_err(|_| LinkDown { shard: 0 })\n}";
        assert!(run(good, &ctx_det()).iter().all(|f| f.rule != "F3"));
        // Non-channel unwraps (no send/recv receiver) are S2's business.
        let other = "#[cfg(test)]\nmod tests { fn f(x: Option<u32>) -> u32 { x.unwrap() } }";
        assert!(run(other, &ctx_det()).iter().all(|f| f.rule != "F3"));
        // Outside the configured hot paths the pattern is legal.
        let ctx = FileContext {
            path: "crates/cli/src/commands.rs".into(),
            crate_name: "cli".into(),
            ..FileContext::default()
        };
        assert!(run(bad, &ctx).iter().all(|f| f.rule != "F3"));
    }

    #[test]
    fn strings_and_comments_never_trigger() {
        let src = "fn f() -> &'static str {\n\
                   // HashMap, thread_rng, unsafe, .unwrap() — commentary only\n\
                   \"HashMap thread_rng Instant::now .unwrap()\"\n}";
        assert!(run(src, &ctx_det()).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let f = run(src, &ctx_det());
        assert_eq!(f.iter().filter(|f| f.rule == "S2").count(), 1);
    }
}
