//! The six rules of the static determinism-and-safety contract.
//!
//! | Rule | Class        | What it catches                                             |
//! |------|--------------|-------------------------------------------------------------|
//! | D1   | determinism  | default-hashed `HashMap`/`HashSet` in deterministic crates  |
//! | D2   | determinism  | wall-clock / env reads outside observability modules        |
//! | D3   | determinism  | unseeded RNG (`thread_rng`, `from_entropy`, `OsRng`)        |
//! | S1   | safety       | `unsafe` without a `// SAFETY:` comment; deterministic      |
//! |      |              | crates missing `#![forbid(unsafe_code)]`                    |
//! | S2   | safety       | `unwrap()` / `expect()` outside `#[cfg(test)]`              |
//! | F1   | determinism  | float `.sum::<f64>()` over a parallel iterator              |
//! | F2   | determinism  | locks/atomics (`Mutex`, `RwLock`, `Atomic*`, `Condvar`)     |
//! |      |              | in shared-nothing simulator hot paths                       |
//! | F3   | robustness   | bare `.unwrap()`/`.expect()` on inter-shard channel         |
//! |      |              | `send`/`recv` calls in supervised hot paths                 |
//!
//! All rules operate on the token stream from [`crate::lexer`]; none
//! need type information. That bounds what they can see — a
//! `HashMap` smuggled through a type alias is invisible — but the
//! contract these rules enforce is about what the *source* says, and
//! the fixture corpus pins the exact behavior either way.

use crate::config::LintConfig;
use crate::diag::{Finding, Severity};
use crate::lexer::{tokenize, Tok, TokKind};

/// Where a file sits in the workspace; drives which rules apply.
#[derive(Debug, Clone, Default)]
pub struct FileContext {
    /// Repo-relative path (`crates/sim/src/engine.rs`).
    pub path: String,
    /// Crate directory name under `crates/` (`sim`, `cli`, …).
    pub crate_name: String,
    /// Whether the file is test-only code (under `tests/`,
    /// `benches/`, or `examples/`): S2 does not apply there.
    pub is_test_file: bool,
    /// Whether the file is a crate root (`src/lib.rs`): the S1
    /// `#![forbid(unsafe_code)]` audit applies only there.
    pub is_lib_root: bool,
}

/// Lints one source file. Returns raw findings (allowlist filtering
/// happens in [`crate::lint_workspace`] so per-file callers — the
/// fixture tests — see everything).
pub fn lint_source(src: &str, ctx: &FileContext, cfg: &LintConfig) -> Vec<Finding> {
    let toks = tokenize(src);
    let tests = TestRegions::compute(&toks);
    // Indices of non-comment tokens, for code-pattern matching.
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mut out = Vec::new();

    rule_d1(&toks, &code, &tests, ctx, cfg, &mut out);
    rule_d2(&toks, &code, ctx, cfg, &mut out);
    rule_d3(&toks, &code, ctx, cfg, &mut out);
    rule_s1(&toks, &code, ctx, cfg, &mut out);
    rule_s2(&toks, &code, &tests, ctx, cfg, &mut out);
    rule_f1(&toks, &code, &tests, ctx, cfg, &mut out);
    rule_f2(&toks, &code, ctx, cfg, &mut out);
    rule_f3(&toks, &code, ctx, cfg, &mut out);

    out.sort_by_key(|f| (f.line, f.rule));
    out
}

/// Token-index ranges covered by `#[cfg(test)]` / `#[test]` items.
struct TestRegions {
    /// Sorted, non-overlapping (start, end) token-index ranges.
    ranges: Vec<(usize, usize)>,
}

impl TestRegions {
    fn compute(toks: &[Tok]) -> TestRegions {
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let mut open: Vec<(usize, usize)> = Vec::new(); // (start idx, depth)
        let mut depth = 0usize;
        let mut pending_test_attr = false;
        let mut i = 0;
        while i < toks.len() {
            let t = &toks[i];
            if t.is_comment() {
                i += 1;
                continue;
            }
            if t.is_punct('#') {
                // `#[…]` outer attribute (`#![…]` inner attributes are
                // skipped: they never mark a following item as test).
                let mut j = i + 1;
                while j < toks.len() && toks[j].is_comment() {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct('[') {
                    let (end, is_test) = scan_attribute(toks, j);
                    if is_test {
                        pending_test_attr = true;
                    }
                    i = end;
                    continue;
                }
            }
            match t.kind {
                TokKind::Punct(';') if open.is_empty() => {
                    // `#[cfg(test)] use …;` — attribute without a body.
                    pending_test_attr = false;
                }
                TokKind::Punct('{') => {
                    if pending_test_attr {
                        open.push((i, depth));
                        pending_test_attr = false;
                    }
                    depth += 1;
                }
                TokKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if let Some(&(start, d)) = open.last() {
                        if d == depth {
                            open.pop();
                            ranges.push((start, i));
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // An unterminated region (malformed input) extends to EOF.
        for (start, _) in open {
            ranges.push((start, toks.len()));
        }
        ranges.sort_unstable();
        TestRegions { ranges }
    }

    fn contains(&self, tok_idx: usize) -> bool {
        self.ranges
            .iter()
            .any(|&(s, e)| tok_idx >= s && tok_idx <= e)
    }
}

/// Scans an attribute starting at the `[` token; returns the token
/// index just past the closing `]` and whether the attribute marks
/// test-only code (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`
/// — but not `#[cfg(not(test))]`).
fn scan_attribute(toks: &[Tok], open_bracket: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    let mut i = open_bracket;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                i += 1;
                break;
            }
        } else if t.kind == TokKind::Ident {
            idents.push(&t.text);
        }
        i += 1;
    }
    let has_test = idents.contains(&"test");
    let negated = idents.contains(&"not");
    let is_cfg = idents.first().map(|s| *s == "cfg").unwrap_or(false);
    let is_bare_test = idents.len() == 1 && idents[0] == "test";
    (i, has_test && !negated && (is_cfg || is_bare_test))
}

/// Looks up the `n`-th code token after position `k` in the `code`
/// index list, if any.
fn code_tok<'a>(toks: &'a [Tok], code: &[usize], k: usize, n: usize) -> Option<&'a Tok> {
    code.get(k + n).map(|&i| &toks[i])
}

fn push(
    out: &mut Vec<Finding>,
    rule: &'static str,
    severity: Severity,
    ctx: &FileContext,
    line: u32,
    message: String,
    hint: &'static str,
) {
    if severity == Severity::Allow {
        return;
    }
    out.push(Finding {
        rule,
        severity,
        path: ctx.path.clone(),
        line,
        message,
        hint,
    });
}

/// D1 — default-hashed containers in deterministic crates. Iteration
/// order of `std::collections::HashMap`/`HashSet` varies run-to-run
/// (SipHash keys are randomized per process), so any drain feeding
/// metrics breaks bitwise reproducibility. The rule bans the types
/// outright — including in `#[cfg(test)]` code, where order-dependent
/// assertions become flaky — and the popular third-party spellings.
fn rule_d1(
    toks: &[Tok],
    code: &[usize],
    _tests: &TestRegions,
    ctx: &FileContext,
    cfg: &LintConfig,
    out: &mut Vec<Finding>,
) {
    if !cfg.is_deterministic(&ctx.crate_name) {
        return;
    }
    let severity = cfg.severity_of("D1");
    const BANNED: [&str; 6] = [
        "HashMap",
        "HashSet",
        "AHashMap",
        "AHashSet",
        "FxHashMap",
        "FxHashSet",
    ];
    for (k, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if t.kind == TokKind::Ident && BANNED.contains(&t.text.as_str()) {
            // `HashMap::with_hasher` with an explicit deterministic
            // hasher would be legal, but no call site needs it; keep
            // the rule simple and absolute.
            let _ = k;
            push(
                out,
                "D1",
                severity,
                ctx,
                t.line,
                format!(
                    "default-hashed `{}` in deterministic crate `{}`",
                    t.text, ctx.crate_name
                ),
                "use BTreeMap/BTreeSet (or a sorted drain / a fixed-hash set like sp_graph::PairSet)",
            );
        }
    }
}

/// D2 — wall-clock and environment reads. `Instant::now`,
/// `SystemTime`, and `env::var` make output depend on when/where the
/// process runs; they are only legal in the allowlisted observability
/// set (`sp_sim::metrics`, bench binaries, the CLI).
fn rule_d2(
    toks: &[Tok],
    code: &[usize],
    ctx: &FileContext,
    cfg: &LintConfig,
    out: &mut Vec<Finding>,
) {
    if cfg.d2_allowed(&ctx.path) {
        return;
    }
    let severity = cfg.severity_of("D2");
    for (k, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            // `Instant::now()` / `SystemTime::now()`.
            "Instant" | "SystemTime" => {
                let colons = code_tok(toks, code, k, 1)
                    .map(|t| t.is_punct(':'))
                    .unwrap_or(false)
                    && code_tok(toks, code, k, 2)
                        .map(|t| t.is_punct(':'))
                        .unwrap_or(false);
                let now = code_tok(toks, code, k, 3)
                    .map(|t| t.is_ident("now"))
                    .unwrap_or(false);
                if t.text == "SystemTime" {
                    // Any SystemTime use is wall-clock dependent.
                    true
                } else {
                    colons && now
                }
            }
            // `env::var(…)` / `env::var_os(…)` / `env::vars()`.
            "env" => {
                code_tok(toks, code, k, 1)
                    .map(|t| t.is_punct(':'))
                    .unwrap_or(false)
                    && code_tok(toks, code, k, 2)
                        .map(|t| t.is_punct(':'))
                        .unwrap_or(false)
                    && code_tok(toks, code, k, 3)
                        .map(|t| matches!(t.text.as_str(), "var" | "var_os" | "vars"))
                        .unwrap_or(false)
            }
            _ => false,
        };
        if flagged {
            push(
                out,
                "D2",
                severity,
                ctx,
                t.line,
                format!(
                    "wall-clock/environment read (`{}`) outside the observability allowlist",
                    t.text
                ),
                "move the read into sp_sim::metrics / bench / CLI, or thread the value in as a parameter",
            );
        }
    }
}

/// D3 — unseeded randomness, anywhere (tests included): `thread_rng`,
/// `from_entropy`, and `OsRng` all pull operating-system entropy, so
/// no run that touches them can ever be replayed.
fn rule_d3(
    toks: &[Tok],
    code: &[usize],
    ctx: &FileContext,
    cfg: &LintConfig,
    out: &mut Vec<Finding>,
) {
    let severity = cfg.severity_of("D3");
    for &i in code {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "thread_rng" | "from_entropy" | "OsRng")
        {
            push(
                out,
                "D3",
                severity,
                ctx,
                t.line,
                format!("unseeded RNG (`{}`)", t.text),
                "derive every stream from the run seed (SpRng::seed_from_u64 + named substreams)",
            );
        }
    }
}

/// S1 — unsafe hygiene. Every `unsafe` keyword must be announced by a
/// `// SAFETY:` comment: on the same line, or in the contiguous
/// comment block directly above (multi-line SAFETY paragraphs count).
/// Deterministic crate roots must additionally carry
/// `#![forbid(unsafe_code)]` so the audit cannot rot.
fn rule_s1(
    toks: &[Tok],
    code: &[usize],
    ctx: &FileContext,
    cfg: &LintConfig,
    out: &mut Vec<Finding>,
) {
    let severity = cfg.severity_of("S1");
    // Per-line comment facts. A block comment spanning lines marks
    // every line it covers.
    let mut comment_lines = std::collections::BTreeSet::new();
    let mut safety_lines = std::collections::BTreeSet::new();
    for t in toks {
        if !t.is_comment() {
            continue;
        }
        let span = t.text.matches('\n').count() as u32;
        for line in t.line..=t.line + span {
            comment_lines.insert(line);
        }
        if t.text.contains("SAFETY:") {
            safety_lines.insert(t.line);
        }
    }
    for &i in code {
        let t = &toks[i];
        if !t.is_ident("unsafe") {
            continue;
        }
        // Walk up through the contiguous comment block above the
        // `unsafe` line; any SAFETY: marker in it (or on the line
        // itself) documents the block.
        let mut lo = t.line;
        while lo > 1 && comment_lines.contains(&(lo - 1)) {
            lo -= 1;
        }
        let documented = safety_lines.range(lo..=t.line).next().is_some();
        if !documented {
            push(
                out,
                "S1",
                severity,
                ctx,
                t.line,
                "`unsafe` without a `// SAFETY:` comment".to_string(),
                "document the invariant that makes this sound in a `// SAFETY:` comment directly above",
            );
        }
    }
    if ctx.is_lib_root && cfg.is_deterministic(&ctx.crate_name) {
        // `forbid ( unsafe_code` as consecutive code tokens.
        let has_forbid = (0..code.len()).any(|k| {
            toks[code[k]].is_ident("forbid")
                && code_tok(toks, code, k, 1)
                    .map(|t| t.is_punct('('))
                    .unwrap_or(false)
                && code_tok(toks, code, k, 2)
                    .map(|t| t.is_ident("unsafe_code"))
                    .unwrap_or(false)
        });
        if !has_forbid {
            push(
                out,
                "S1",
                severity,
                ctx,
                1,
                format!(
                    "deterministic crate `{}` is missing `#![forbid(unsafe_code)]` in its crate root",
                    ctx.crate_name
                ),
                "add `#![forbid(unsafe_code)]` to src/lib.rs",
            );
        }
    }
}

/// S2 — panic paths in library code. `unwrap()` outside `#[cfg(test)]`
/// is denied; `expect("…")` carries its invariant in the message and
/// gets a separately configurable (default: warn) severity, because
/// converting hot-loop invariant checks to `Result` plumbing has a
/// measured throughput cost (see DESIGN.md §13).
fn rule_s2(
    toks: &[Tok],
    code: &[usize],
    tests: &TestRegions,
    ctx: &FileContext,
    cfg: &LintConfig,
    out: &mut Vec<Finding>,
) {
    if ctx.is_test_file || !cfg.checks_unwrap(&ctx.crate_name) {
        return;
    }
    for (k, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || tests.contains(i) {
            continue;
        }
        let preceded_by_dot = k > 0 && toks[code[k - 1]].is_punct('.');
        if !preceded_by_dot {
            continue;
        }
        match t.text.as_str() {
            "unwrap"
                if code_tok(toks, code, k, 1)
                    .map(|t| t.is_punct('('))
                    .unwrap_or(false)
                    && code_tok(toks, code, k, 2)
                        .map(|t| t.is_punct(')'))
                        .unwrap_or(false) =>
            {
                push(
                    out,
                    "S2",
                    cfg.severity_of("S2"),
                    ctx,
                    t.line,
                    "`.unwrap()` in library code outside #[cfg(test)]".to_string(),
                    "propagate with `?` (CliError in the CLI), or use expect(\"documented invariant\")",
                );
            }
            "expect"
                if code_tok(toks, code, k, 1)
                    .map(|t| t.is_punct('('))
                    .unwrap_or(false) =>
            {
                push(
                    out,
                    "S2",
                    cfg.s2_expect,
                    ctx,
                    t.line,
                    "`.expect()` in library code outside #[cfg(test)]".to_string(),
                    "prefer Result propagation where the caller can recover; keep expect only for documented invariants",
                );
            }
            _ => {}
        }
    }
}

/// F1 — order-sensitive float reductions. Float addition is not
/// associative, so `.sum::<f64>()` over a parallel iterator produces
/// run-dependent results. The rule flags a float `sum`/`product`
/// turbofish in any statement that also mentions a rayon-style
/// parallel-iterator constructor.
fn rule_f1(
    toks: &[Tok],
    code: &[usize],
    _tests: &TestRegions,
    ctx: &FileContext,
    cfg: &LintConfig,
    out: &mut Vec<Finding>,
) {
    if !cfg.is_deterministic(&ctx.crate_name) {
        return;
    }
    let severity = cfg.severity_of("F1");
    for (k, &i) in code.iter().enumerate() {
        let t = &toks[i];
        let is_float_reduce = matches!(t.text.as_str(), "sum" | "product")
            && t.kind == TokKind::Ident
            && k > 0
            && toks[code[k - 1]].is_punct('.')
            && code_tok(toks, code, k, 1)
                .map(|t| t.is_punct(':'))
                .unwrap_or(false)
            && code_tok(toks, code, k, 2)
                .map(|t| t.is_punct(':'))
                .unwrap_or(false)
            && code_tok(toks, code, k, 3)
                .map(|t| t.is_punct('<'))
                .unwrap_or(false)
            && code_tok(toks, code, k, 4)
                .map(|t| matches!(t.text.as_str(), "f64" | "f32"))
                .unwrap_or(false);
        if !is_float_reduce {
            continue;
        }
        // Scan backwards to the statement start (`;`, `{`, or `}`)
        // looking for a parallel-iterator source.
        let mut parallel = false;
        for back in (0..k).rev() {
            let b = &toks[code[back]];
            if matches!(
                b.kind,
                TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}')
            ) {
                break;
            }
            if b.kind == TokKind::Ident
                && matches!(
                    b.text.as_str(),
                    "par_iter" | "into_par_iter" | "par_bridge" | "par_chunks"
                )
            {
                parallel = true;
                break;
            }
        }
        if parallel {
            push(
                out,
                "F1",
                severity,
                ctx,
                t.line,
                format!(
                    "non-deterministic float `.{}::<…>()` over a parallel iterator",
                    t.text
                ),
                "reduce per-shard into an ordered Vec, then fold sequentially in shard order",
            );
        }
    }
}

/// F2 — shared mutable state in shared-nothing hot paths. The sharded
/// simulator's determinism proof rests on shards owning their state
/// outright and exchanging messages only at tick barriers (DESIGN.md
/// §15); a `Mutex` or atomic counter reintroduces scheduling-dependent
/// interleaving that no test can pin. The rule bans the primitive
/// *types* (`Mutex`, `RwLock`, `Condvar`, `Barrier`, `Atomic*`,
/// `OnceLock`, `LazyLock`) in the configured hot-path files — tests
/// included, since a lock in a test of a lock-free module is a design
/// smell, not a convenience. Bounded `mpsc` channels stay legal: they
/// are the sanctioned barrier transport.
fn rule_f2(
    toks: &[Tok],
    code: &[usize],
    ctx: &FileContext,
    cfg: &LintConfig,
    out: &mut Vec<Finding>,
) {
    if !cfg.f2_hot(&ctx.path) {
        return;
    }
    let severity = cfg.severity_of("F2");
    for &i in code {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let banned = matches!(
            t.text.as_str(),
            "Mutex" | "RwLock" | "Condvar" | "Barrier" | "OnceLock" | "LazyLock"
        ) || (t.text.starts_with("Atomic") && t.text.len() > "Atomic".len());
        if banned {
            push(
                out,
                "F2",
                severity,
                ctx,
                t.line,
                format!(
                    "shared-state primitive `{}` in shared-nothing hot path",
                    t.text
                ),
                "shards own their state; cross-shard data moves through bounded mpsc batches at tick barriers",
            );
        }
    }
}

/// F3 — unsupervised channel unwraps in supervised hot paths. The
/// shard supervisor's crash-containment proof (DESIGN.md §17) rests on
/// every inter-shard channel operation being error-aware: when a peer
/// reactor dies, its channels disconnect, and the survivors must
/// convert that `Err` into a named `ShardFailure` so the supervisor
/// can report *which* shard failed at *which* tick. A bare
/// `.send(…).unwrap()` / `.recv().unwrap()` (or `.expect(…)` — the
/// message cannot name the dead shard) instead cascades the panic
/// through every surviving reactor, turning one diagnosable failure
/// into a pile of "channel closed" backtraces. Tests included, same
/// rationale as F2.
fn rule_f3(
    toks: &[Tok],
    code: &[usize],
    ctx: &FileContext,
    cfg: &LintConfig,
    out: &mut Vec<Finding>,
) {
    if !cfg.f3_hot(&ctx.path) {
        return;
    }
    let severity = cfg.severity_of("F3");
    for (k, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || !matches!(
                t.text.as_str(),
                "send" | "recv" | "try_recv" | "recv_timeout"
            )
        {
            continue;
        }
        // Must be a method call: `.send(` / `.recv(` etc.
        let preceded_by_dot = k > 0 && toks[code[k - 1]].is_punct('.');
        let opens_call = code_tok(toks, code, k, 1)
            .map(|t| t.is_punct('('))
            .unwrap_or(false);
        if !preceded_by_dot || !opens_call {
            continue;
        }
        // Skip the balanced argument list to the closing `)`.
        let mut depth = 0usize;
        let mut close = None;
        for (j, &ci) in code.iter().enumerate().skip(k + 1) {
            if toks[ci].is_punct('(') {
                depth += 1;
            } else if toks[ci].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    close = Some(j);
                    break;
                }
            }
        }
        let Some(close) = close else { continue };
        let chained_panic = code_tok(toks, code, close, 1)
            .map(|t| t.is_punct('.'))
            .unwrap_or(false)
            && code_tok(toks, code, close, 2)
                .map(|t| matches!(t.text.as_str(), "unwrap" | "expect"))
                .unwrap_or(false)
            && code_tok(toks, code, close, 3)
                .map(|t| t.is_punct('('))
                .unwrap_or(false);
        if chained_panic {
            let method = &code_tok(toks, code, close, 2).expect("matched above").text;
            push(
                out,
                "F3",
                severity,
                ctx,
                t.line,
                format!(
                    "unsupervised `.{}(…).{}(…)` on an inter-shard channel",
                    t.text, method
                ),
                "map the channel error to a ShardFailure (a dead peer shard must surface as a supervised failure, not a cascading panic)",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_det() -> FileContext {
        FileContext {
            path: "crates/sim/src/x.rs".into(),
            crate_name: "sim".into(),
            is_test_file: false,
            is_lib_root: false,
        }
    }

    fn run(src: &str, ctx: &FileContext) -> Vec<Finding> {
        lint_source(src, ctx, &LintConfig::default())
    }

    #[test]
    fn d1_flags_hash_containers_and_spares_btree() {
        let f = run(
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32>; }",
            &ctx_det(),
        );
        assert!(f.iter().filter(|f| f.rule == "D1").count() >= 2);
        let f = run(
            "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, u32>; }",
            &ctx_det(),
        );
        assert!(f.iter().all(|f| f.rule != "D1"));
    }

    #[test]
    fn d1_skips_non_deterministic_crates() {
        let ctx = FileContext {
            path: "crates/bench/src/x.rs".into(),
            crate_name: "bench".into(),
            ..FileContext::default()
        };
        let f = run("use std::collections::HashMap;", &ctx);
        assert!(f.iter().all(|f| f.rule != "D1"));
    }

    #[test]
    fn d2_flags_clock_and_env_outside_allowlist() {
        let src = "fn f() { let t = Instant::now(); let v = std::env::var(\"X\"); }";
        let f = run(src, &ctx_det());
        assert_eq!(f.iter().filter(|f| f.rule == "D2").count(), 2);
        // Allowlisted path: clean.
        let ctx = FileContext {
            path: "crates/sim/src/metrics.rs".into(),
            crate_name: "sim".into(),
            ..FileContext::default()
        };
        assert!(run(src, &ctx).iter().all(|f| f.rule != "D2"));
    }

    #[test]
    fn d2_does_not_flag_instant_elapsed_or_durations() {
        let f = run(
            "fn f(t: Instant) -> u64 { t.elapsed().as_nanos() as u64 }",
            &ctx_det(),
        );
        assert!(f.iter().all(|f| f.rule != "D2"));
    }

    #[test]
    fn d3_flags_unseeded_rng_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { let r = thread_rng(); }\n}";
        let f = run(src, &ctx_det());
        assert_eq!(f.iter().filter(|f| f.rule == "D3").count(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn s1_requires_safety_comment() {
        let bad = "fn f() { unsafe { do_it() } }";
        let f = run(bad, &ctx_det());
        assert_eq!(f.iter().filter(|f| f.rule == "S1").count(), 1);
        let good =
            "fn f() {\n    // SAFETY: the buffer outlives the call.\n    unsafe { do_it() }\n}";
        assert!(run(good, &ctx_det()).iter().all(|f| f.rule != "S1"));
    }

    #[test]
    fn s1_audits_forbid_on_deterministic_lib_roots() {
        let ctx = FileContext {
            path: "crates/sim/src/lib.rs".into(),
            crate_name: "sim".into(),
            is_lib_root: true,
            ..FileContext::default()
        };
        let f = run("pub mod x;", &ctx);
        assert!(f
            .iter()
            .any(|f| f.rule == "S1" && f.message.contains("forbid")));
        let f = run("#![forbid(unsafe_code)]\npub mod x;", &ctx);
        assert!(f.iter().all(|f| f.rule != "S1"));
    }

    #[test]
    fn s2_unwrap_deny_expect_warn_tests_exempt() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.expect(\"always set\") }\n\
                   #[cfg(test)]\nmod tests { fn t(x: Option<u32>) -> u32 { x.unwrap() } }";
        let f = run(src, &ctx_det());
        let s2: Vec<_> = f.iter().filter(|f| f.rule == "S2").collect();
        assert_eq!(s2.len(), 2);
        assert_eq!(s2[0].severity, Severity::Deny);
        assert_eq!(s2[0].line, 1);
        assert_eq!(s2[1].severity, Severity::Warn);
        assert_eq!(s2[1].line, 2);
    }

    #[test]
    fn s2_spares_unwrap_or_variants_and_test_files() {
        let f = run("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }", &ctx_det());
        assert!(f.iter().all(|f| f.rule != "S2"));
        let ctx = FileContext {
            path: "crates/sim/tests/t.rs".into(),
            crate_name: "sim".into(),
            is_test_file: true,
            ..FileContext::default()
        };
        let f = run("fn f(x: Option<u32>) -> u32 { x.unwrap() }", &ctx);
        assert!(f.iter().all(|f| f.rule != "S2"));
    }

    #[test]
    fn f1_flags_parallel_float_sums_only() {
        let bad = "fn f(v: &[f64]) -> f64 { v.par_iter().map(|x| x * 2.0).sum::<f64>() }";
        let f = run(bad, &ctx_det());
        assert_eq!(f.iter().filter(|f| f.rule == "F1").count(), 1);
        let good = "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }";
        assert!(run(good, &ctx_det()).iter().all(|f| f.rule != "F1"));
        let intsum = "fn f(v: &[u64]) -> u64 { v.par_iter().sum::<u64>() }";
        assert!(run(intsum, &ctx_det()).iter().all(|f| f.rule != "F1"));
    }

    #[test]
    fn f2_flags_locks_and_atomics_in_hot_paths_only() {
        let bad = "use std::sync::{Mutex, atomic::AtomicU64};\n\
                   struct S { total: AtomicU64, guard: Mutex<u32> }";
        let f = run(bad, &ctx_det());
        assert_eq!(f.iter().filter(|f| f.rule == "F2").count(), 4);
        // mpsc is the sanctioned transport.
        let good = "use std::sync::mpsc::{sync_channel, Receiver, SyncSender};";
        assert!(run(good, &ctx_det()).iter().all(|f| f.rule != "F2"));
        // Outside the configured hot paths the primitives are legal.
        let ctx = FileContext {
            path: "crates/cli/src/commands.rs".into(),
            crate_name: "cli".into(),
            ..FileContext::default()
        };
        assert!(run(bad, &ctx).iter().all(|f| f.rule != "F2"));
    }

    #[test]
    fn f3_flags_channel_unwraps_even_in_tests_and_spares_mapped_errors() {
        // In a test region S2 is blind; F3 must still fire.
        let bad = "#[cfg(test)]\nmod tests {\n fn f(tx: SyncSender<u64>, rx: Receiver<u64>) {\n \
                   tx.send(1).unwrap();\n let v = rx.recv().expect(\"alive\");\n let _ = v;\n }\n}";
        let f = run(bad, &ctx_det());
        let f3: Vec<_> = f.iter().filter(|f| f.rule == "F3").collect();
        assert_eq!(f3.len(), 2);
        assert_eq!(f3[0].line, 4);
        assert_eq!(f3[1].line, 5);
        // The supervised idiom — error mapped to a failure value — is clean.
        let good = "fn f(tx: &SyncSender<u64>) -> Result<(), LinkDown> {\n \
                    tx.send(1).map_err(|_| LinkDown { shard: 0 })\n}";
        assert!(run(good, &ctx_det()).iter().all(|f| f.rule != "F3"));
        // Non-channel unwraps (no send/recv receiver) are S2's business.
        let other = "#[cfg(test)]\nmod tests { fn f(x: Option<u32>) -> u32 { x.unwrap() } }";
        assert!(run(other, &ctx_det()).iter().all(|f| f.rule != "F3"));
        // Outside the configured hot paths the pattern is legal.
        let ctx = FileContext {
            path: "crates/cli/src/commands.rs".into(),
            crate_name: "cli".into(),
            ..FileContext::default()
        };
        assert!(run(bad, &ctx).iter().all(|f| f.rule != "F3"));
    }

    #[test]
    fn strings_and_comments_never_trigger() {
        let src = "fn f() -> &'static str {\n\
                   // HashMap, thread_rng, unsafe, .unwrap() — commentary only\n\
                   \"HashMap thread_rng Instant::now .unwrap()\"\n}";
        assert!(run(src, &ctx_det()).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let f = run(src, &ctx_det());
        assert_eq!(f.iter().filter(|f| f.rule == "S2").count(), 1);
    }
}
