//! Workspace resolution: maps every file to its canonical module
//! path (`crates/sim/src/engine.rs` → `sp_sim::engine`), builds the
//! crate-and-module import graph from the parsed `use` decls, and
//! answers the reachability questions the graph rules (L1, P1, R1)
//! ask — including the seed-lineage chain from any module back to the
//! `sp_stats` RNG API.
//!
//! Everything is `BTree`-backed so iteration order — and therefore
//! report order — is independent of file-discovery order.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{tokenize, Tok};
use crate::parser::{self, Parsed, TestRegions};
use crate::rules::FileContext;

/// One source file handed to the analyzer: its context plus content.
/// Tests construct these directly; [`crate::lint_workspace`] builds
/// them from the walker.
#[derive(Debug, Clone)]
pub struct SourceUnit {
    /// Where the file sits in the workspace.
    pub ctx: FileContext,
    /// File contents.
    pub src: String,
}

/// One fully analyzed file: tokens, item structure, test regions, and
/// the canonical module path the resolver assigned.
pub struct AnalyzedFile {
    /// Where the file sits in the workspace.
    pub ctx: FileContext,
    /// Canonical module path (`sp_sim::engine`, `sp_stats`,
    /// `workspace-tests::end_to_end`).
    pub module_path: String,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Indices of non-comment tokens, for code-pattern matching.
    pub code: Vec<usize>,
    /// Item-level structure.
    pub parsed: Parsed,
    /// `#[cfg(test)]` region index.
    pub tests: TestRegions,
}

impl AnalyzedFile {
    /// The module path of the (possibly inline) module containing
    /// token `i` — the file module plus any inline `mod` nesting.
    pub fn module_of(&self, i: usize) -> String {
        let nesting = self.parsed.module_nesting_of(i);
        if nesting.is_empty() {
            self.module_path.clone()
        } else {
            format!("{}::{}", self.module_path, nesting.join("::"))
        }
    }
}

/// The analyzed workspace: all files plus the module import graph.
pub struct Workspace {
    /// Analyzed files, in input order.
    pub files: Vec<AnalyzedFile>,
    /// Every module path the resolver assigned (file modules and
    /// their inline submodules are keys; lookups use longest-prefix).
    pub modules: BTreeSet<String>,
    /// Module → set of module paths it imports (resolved to the
    /// longest known module prefix; external paths kept verbatim).
    pub imports: BTreeMap<String, BTreeSet<String>>,
}

/// The crate ident a `crates/<dir>` crate exports (`sim` → `sp_sim`).
/// Pseudo-labels (`workspace-tests`, `examples`) have no importable
/// ident and map to themselves.
pub fn crate_ident(crate_name: &str) -> String {
    if crate_name == "workspace-tests" || crate_name == "examples" {
        crate_name.to_string()
    } else {
        format!("sp_{}", crate_name.replace('-', "_"))
    }
}

/// The crate label (`sim`) behind an importable ident (`sp_sim`), if
/// the ident has the workspace shape.
pub fn ident_crate(ident: &str) -> Option<&str> {
    ident.strip_prefix("sp_")
}

/// Canonical module path for a workspace file. The convention mirrors
/// rustc's module tree:
///
/// * `crates/X/src/lib.rs`, `src/main.rs` → `sp_X`
/// * `crates/X/src/a/b.rs` → `sp_X::a::b`; `src/a/mod.rs` → `sp_X::a`
/// * `crates/X/src/bin/foo.rs` → `sp_X::bin::foo`
/// * `crates/X/tests/foo.rs` → `sp_X::tests::foo` (likewise benches)
/// * `tests/foo.rs` → `workspace-tests::foo`
/// * `examples/foo.rs` → `examples::foo`
pub fn module_path_for(ctx: &FileContext) -> String {
    let root = crate_ident(&ctx.crate_name);
    let rel = ctx.path.as_str();
    // Strip the crate prefix to get the in-crate path.
    let inner = if let Some(rest) = rel.strip_prefix(&format!("crates/{}/", ctx.crate_name)) {
        rest
    } else {
        rel // workspace-level `tests/foo.rs` / `examples/foo.rs`
    };
    let no_ext = inner.strip_suffix(".rs").unwrap_or(inner);
    let mut segs: Vec<&str> = no_ext.split('/').collect();
    // `src` is the crate root, not a module segment.
    if segs.first() == Some(&"src") {
        segs.remove(0);
    }
    // Workspace-level files already carry the pseudo-label as root.
    if segs.first() == Some(&"tests") && ctx.crate_name == "workspace-tests" {
        segs.remove(0);
    }
    if segs.first() == Some(&"examples") && ctx.crate_name == "examples" {
        segs.remove(0);
    }
    // lib.rs / main.rs are the crate root; `a/mod.rs` is module `a`.
    match segs.last().copied() {
        Some("lib") | Some("main") if segs.len() == 1 => segs.clear(),
        Some("mod") => {
            segs.pop();
        }
        _ => {}
    }
    if segs.is_empty() {
        root
    } else {
        format!("{}::{}", root, segs.join("::"))
    }
}

/// Analyzes one source unit: tokenize, compute test regions, parse.
pub fn analyze_unit(unit: &SourceUnit) -> AnalyzedFile {
    let toks = tokenize(&unit.src);
    let tests = TestRegions::compute(&toks);
    let parsed = parser::parse(&toks, &tests);
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let module_path = module_path_for(&unit.ctx);
    AnalyzedFile {
        ctx: unit.ctx.clone(),
        module_path,
        toks,
        code,
        parsed,
        tests,
    }
}

impl Workspace {
    /// Builds the workspace from analyzed files: collects module
    /// paths (including inline submodules and `mod x;` children) and
    /// resolves every `use` into the import graph.
    pub fn build(files: Vec<AnalyzedFile>) -> Workspace {
        let mut modules: BTreeSet<String> = BTreeSet::new();
        for f in &files {
            modules.insert(f.module_path.clone());
            for m in &f.parsed.mods {
                let mut base = f.module_path.clone();
                for seg in &m.in_mod {
                    base.push_str("::");
                    base.push_str(seg);
                }
                modules.insert(format!("{base}::{}", m.name));
            }
        }
        let mut imports: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for f in &files {
            // Parent links: a module implicitly reaches its children
            // declared via `mod x;` / `mod x { … }` and vice versa —
            // `pub use` re-exports travel through the parent.
            let entry = imports.entry(f.module_path.clone()).or_default();
            for m in &f.parsed.mods {
                if m.in_mod.is_empty() {
                    entry.insert(format!("{}::{}", f.module_path, m.name));
                }
            }
            // Child → parent (a submodule can name items via super::).
            if let Some((parent, _)) = f.module_path.rsplit_once("::") {
                imports
                    .entry(f.module_path.clone())
                    .or_default()
                    .insert(parent.to_string());
            }
            for u in &f.parsed.uses {
                let decl_module = if u.in_mod.is_empty() {
                    f.module_path.clone()
                } else {
                    format!("{}::{}", f.module_path, u.in_mod.join("::"))
                };
                let Some(target) = resolve_use(&u.path, &f.module_path, &f.ctx, &u.in_mod) else {
                    continue;
                };
                let resolved =
                    longest_known_prefix(&modules, &target).unwrap_or_else(|| target.clone());
                imports
                    .entry(decl_module)
                    .or_default()
                    .insert(resolved.clone());
                // Inline-module imports also count for the file module:
                // the rules reason at file-module granularity.
                if !u.in_mod.is_empty() {
                    imports
                        .entry(f.module_path.clone())
                        .or_default()
                        .insert(resolved);
                }
            }
        }
        Workspace {
            files,
            modules,
            imports,
        }
    }

    /// BFS over the import graph from `from`, looking for any module
    /// matching `goal` (exact or prefix: `sp_stats` matches
    /// `sp_stats::rng`). Returns the module chain `from → … → goal`,
    /// or `None` when unreachable.
    pub fn import_chain(&self, from: &str, goal: &str) -> Option<Vec<String>> {
        let matches_goal = |m: &str| {
            m == goal || m.starts_with(&format!("{goal}::")) || goal.starts_with(&format!("{m}::"))
        };
        if matches_goal(from) {
            return Some(vec![from.to_string()]);
        }
        let mut prev: BTreeMap<String, String> = BTreeMap::new();
        let mut queue: VecDeque<String> = VecDeque::new();
        queue.push_back(from.to_string());
        prev.insert(from.to_string(), String::new());
        while let Some(cur) = queue.pop_front() {
            // Follow the edges of `cur` and of every known ancestor
            // module (a file in `sp_stats::dist` sees `sp_stats`'s
            // imports through the crate root re-exports).
            let mut sources: Vec<&str> = vec![cur.as_str()];
            let mut anc = cur.as_str();
            while let Some((parent, _)) = anc.rsplit_once("::") {
                sources.push(parent);
                anc = parent;
            }
            for src in sources {
                let Some(outs) = self.imports.get(src) else {
                    continue;
                };
                for next in outs {
                    if prev.contains_key(next) {
                        continue;
                    }
                    prev.insert(next.clone(), cur.clone());
                    if matches_goal(next) {
                        let mut chain = vec![next.clone()];
                        let mut at = cur.clone();
                        while !at.is_empty() {
                            chain.push(at.clone());
                            at = prev.get(&at).cloned().unwrap_or_default();
                        }
                        chain.reverse();
                        return Some(chain);
                    }
                    queue.push_back(next.clone());
                }
            }
        }
        None
    }
}

/// Resolves a `use` path to an absolute module-ish path: `crate::` →
/// the crate root ident, `self::`/`super::` relative to the declaring
/// module, everything else kept as written. Returns `None` for paths
/// that cannot name a module (bare `self`).
fn resolve_use(
    path: &[String],
    file_module: &str,
    ctx: &FileContext,
    in_mod: &[String],
) -> Option<String> {
    let mut segs: Vec<String> = Vec::new();
    let decl_module = if in_mod.is_empty() {
        file_module.to_string()
    } else {
        format!("{file_module}::{}", in_mod.join("::"))
    };
    let mut rest = path.iter().peekable();
    match path.first().map(String::as_str) {
        Some("crate") => {
            segs.extend(crate_ident(&ctx.crate_name).split("::").map(String::from));
            rest.next();
        }
        Some("self") => {
            segs.extend(decl_module.split("::").map(String::from));
            rest.next();
        }
        Some("super") => {
            let mut base: Vec<String> = decl_module.split("::").map(String::from).collect();
            while rest.peek().map(|s| s.as_str()) == Some("super") {
                base.pop();
                rest.next();
            }
            if base.is_empty() {
                return None;
            }
            segs.extend(base);
        }
        _ => {}
    }
    for s in rest {
        if s == "self" {
            continue; // `use a::{self}` names module `a`
        }
        segs.push(s.clone());
    }
    if segs.is_empty() {
        None
    } else {
        Some(segs.join("::"))
    }
}

/// The longest prefix of `path` (on `::` boundaries) that names a
/// known module. `sp_stats::rng::SpRng` resolves to `sp_stats::rng`.
fn longest_known_prefix(modules: &BTreeSet<String>, path: &str) -> Option<String> {
    let mut cur = path;
    loop {
        if modules.contains(cur) {
            return Some(cur.to_string());
        }
        match cur.rsplit_once("::") {
            Some((head, _)) => cur = head,
            None => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str, crate_name: &str) -> FileContext {
        FileContext {
            path: path.into(),
            crate_name: crate_name.into(),
            is_test_file: false,
            is_lib_root: path.ends_with("/src/lib.rs"),
        }
    }

    #[test]
    fn module_paths_follow_the_convention() {
        let cases = [
            ("crates/sim/src/lib.rs", "sim", "sp_sim"),
            ("crates/sim/src/engine.rs", "sim", "sp_sim::engine"),
            ("crates/stats/src/dist/mod.rs", "stats", "sp_stats::dist"),
            (
                "crates/stats/src/dist/zipf.rs",
                "stats",
                "sp_stats::dist::zipf",
            ),
            ("crates/cli/src/main.rs", "cli", "sp_cli"),
            (
                "crates/bench/src/bin/repro_bench.rs",
                "bench",
                "sp_bench::bin::repro_bench",
            ),
            (
                "crates/sim/tests/sim_determinism.rs",
                "sim",
                "sp_sim::tests::sim_determinism",
            ),
            (
                "tests/end_to_end.rs",
                "workspace-tests",
                "workspace-tests::end_to_end",
            ),
            ("examples/quickstart.rs", "examples", "examples::quickstart"),
        ];
        for (path, name, want) in cases {
            assert_eq!(module_path_for(&ctx(path, name)), want, "{path}");
        }
    }

    #[test]
    fn use_resolution_handles_crate_self_super() {
        let c = ctx("crates/sim/src/shard.rs", "sim");
        let r = |p: &[&str]| {
            resolve_use(
                &p.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
                "sp_sim::shard",
                &c,
                &[],
            )
        };
        assert_eq!(r(&["crate", "metrics"]).unwrap(), "sp_sim::metrics");
        assert_eq!(r(&["self", "inner"]).unwrap(), "sp_sim::shard::inner");
        assert_eq!(r(&["super", "engine"]).unwrap(), "sp_sim::engine");
        assert_eq!(
            r(&["sp_stats", "rng", "SpRng"]).unwrap(),
            "sp_stats::rng::SpRng"
        );
        assert_eq!(r(&["std", "fs"]).unwrap(), "std::fs");
    }

    #[test]
    fn workspace_builds_import_graph_and_chains() {
        let units = [
            SourceUnit {
                ctx: ctx("crates/sim/src/lib.rs", "sim"),
                src: "pub mod engine;\nuse sp_stats::rng::SpRng;\n".into(),
            },
            SourceUnit {
                ctx: ctx("crates/sim/src/engine.rs", "sim"),
                src: "use crate::metrics;\nuse sp_model::query_model::QueryModel;\n".into(),
            },
            SourceUnit {
                ctx: ctx("crates/stats/src/lib.rs", "stats"),
                src: "pub mod rng;\n".into(),
            },
        ];
        let ws = Workspace::build(units.iter().map(analyze_unit).collect());
        assert!(ws.modules.contains("sp_sim::engine"));
        assert!(ws.modules.contains("sp_stats::rng"));
        // engine -> (parent) sp_sim -> sp_stats::rng.
        let chain = ws.import_chain("sp_sim::engine", "sp_stats").unwrap();
        assert_eq!(chain.first().map(String::as_str), Some("sp_sim::engine"));
        assert!(chain.last().unwrap().starts_with("sp_stats"));
        // Unreachable goal.
        assert!(ws.import_chain("sp_stats", "sp_model").is_none());
    }
}
