//! `sp-lint` — static enforcement of the workspace determinism-and-
//! safety contract.
//!
//! The paper's evaluation (Sec. 6: means + 95% CIs over seeded runs)
//! and this repo's perf gates both rest on one invariant: **fixed
//! seed + plan ⇒ identical `RawMetrics`, at any `--threads` value**.
//! PRs 1–3 enforce that at runtime (`sim_determinism`,
//! `engine_determinism`, fault proptests). This crate enforces it at
//! *analysis time*, before a hazard reaches a 30-minute repro run:
//! the classes of source construct that have historically broken
//! bitwise reproducibility are simply not allowed to exist in the
//! deterministic crates.
//!
//! See [`rules`] for the rule table, [`config`] for `lint.toml`
//! (severities, rule parameters, and the justification-carrying
//! `[[allow]]` baseline), and DESIGN.md §13 for policy.
//!
//! The tool is self-contained — hand-rolled lexer, hand-rolled TOML
//! subset, hand-rolled JSON — consistent with the offline
//! `crates/compat` dependency policy: linting must work in the same
//! registry-less environment the build does.
#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::path::Path;

pub use config::{AllowEntry, LintConfig, RULE_IDS};
pub use diag::{Finding, Report, Severity};
pub use rules::{lint_source, FileContext};

/// Lints every workspace file under `root`, applying the `[[allow]]`
/// baseline from `cfg` (suppressed findings are kept on
/// [`Report::suppressed`] so the baseline stays visible in the JSON
/// artifact).
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> Result<Report, String> {
    let files = walk::workspace_files(root)?;
    let mut report = Report::default();
    for file in &files {
        let src = std::fs::read_to_string(&file.full_path)
            .map_err(|e| format!("cannot read {}: {e}", file.full_path.display()))?;
        for finding in lint_source(&src, &file.ctx, cfg) {
            if cfg.allow_entry(finding.rule, &finding.path).is_some() {
                report.suppressed.push(finding);
            } else {
                report.findings.push(finding);
            }
        }
    }
    report.files_scanned = files.len();
    Ok(report)
}

/// Reads `lint.toml` from `root`, falling back to the built-in
/// default policy when the file does not exist.
pub fn load_config(root: &Path) -> Result<LintConfig, String> {
    let path = root.join("lint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => LintConfig::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(LintConfig::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_lint_runs_and_counts_files() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let cfg = load_config(root).expect("lint.toml parses");
        let report = lint_workspace(root, &cfg).expect("workspace lints");
        assert!(report.files_scanned > 50, "walker found the workspace");
    }
}
