//! `sp-lint` — static enforcement of the workspace determinism-and-
//! safety contract.
//!
//! The paper's evaluation (Sec. 6: means + 95% CIs over seeded runs)
//! and this repo's perf gates both rest on one invariant: **fixed
//! seed + plan ⇒ identical `RawMetrics`, at any `--threads` value**.
//! PRs 1–3 enforce that at runtime (`sim_determinism`,
//! `engine_determinism`, fault proptests). This crate enforces it at
//! *analysis time*, before a hazard reaches a 30-minute repro run:
//! the classes of source construct that have historically broken
//! bitwise reproducibility are simply not allowed to exist in the
//! deterministic crates.
//!
//! The v2 analyzer is a pipeline: [`lexer`] (tokens with line/col) →
//! [`parser`] (item structure: `mod`/`use`/`fn`/`impl`) → [`resolve`]
//! (canonical module paths + the crate-and-module import graph) →
//! rules. Token rules (D/S/F families, [`rules`]) look at one file;
//! graph rules (L1 layering, P1 I/O purity, R1 RNG lineage,
//! [`rules_ws`]) look at the whole [`resolve::Workspace`].
//!
//! See [`rules`] for the rule table, [`config`] for `lint.toml`
//! (severities, rule parameters, the `[layering]` DAG, and the
//! justification-carrying `[[allow]]` baseline), and DESIGN.md §13
//! for policy.
//!
//! The tool is self-contained — hand-rolled lexer, hand-rolled TOML
//! subset, hand-rolled JSON and SARIF — consistent with the offline
//! `crates/compat` dependency policy: linting must work in the same
//! registry-less environment the build does.
#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod resolve;
pub mod rules;
pub mod rules_ws;
pub mod sarif;
pub mod walk;

use std::path::Path;

pub use config::{AllowEntry, LintConfig, RULE_IDS};
pub use diag::{Finding, Report, Severity};
pub use resolve::{AnalyzedFile, SourceUnit, Workspace};
pub use rules::{lint_source, FileContext};

/// Lints a set of in-memory source units as one workspace: analyzes
/// every file, builds the import graph, runs the token rules and the
/// graph rules, and applies the `[[allow]]` baseline.
///
/// Findings are sorted by `(path, line, col, rule)` — the report is
/// byte-identical across runs and across input orderings.
pub fn lint_sources(units: Vec<SourceUnit>, cfg: &LintConfig) -> Report {
    let files_scanned = units.len();
    let ws = Workspace::build(units.iter().map(resolve::analyze_unit).collect());
    let mut all: Vec<Finding> = Vec::new();
    for af in &ws.files {
        rules::lint_tokens(af, cfg, &mut all);
    }
    rules_ws::lint_graph(&ws, cfg, &mut all);
    all.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    let mut report = Report {
        files_scanned,
        ..Report::default()
    };
    for finding in all {
        if cfg.allow_entry(finding.rule, &finding.path).is_some() {
            report.suppressed.push(finding);
        } else {
            report.findings.push(finding);
        }
    }
    report
}

/// Lints every workspace file under `root`, applying the `[[allow]]`
/// baseline from `cfg` (suppressed findings are kept on
/// [`Report::suppressed`] so the baseline stays visible in the JSON
/// artifact).
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> Result<Report, String> {
    let files = walk::workspace_files(root)?;
    let mut units = Vec::with_capacity(files.len());
    for file in &files {
        let src = std::fs::read_to_string(&file.full_path)
            .map_err(|e| format!("cannot read {}: {e}", file.full_path.display()))?;
        units.push(SourceUnit {
            ctx: file.ctx.clone(),
            src,
        });
    }
    Ok(lint_sources(units, cfg))
}

/// Reads `lint.toml` from `root`, falling back to the built-in
/// default policy when the file does not exist.
pub fn load_config(root: &Path) -> Result<LintConfig, String> {
    let path = root.join("lint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => LintConfig::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(LintConfig::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_lint_runs_and_counts_files() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let cfg = load_config(root).expect("lint.toml parses");
        let report = lint_workspace(root, &cfg).expect("workspace lints");
        assert!(report.files_scanned > 50, "walker found the workspace");
    }

    #[test]
    fn reports_are_sorted_and_order_independent() {
        let unit = |path: &str, crate_name: &str, src: &str| SourceUnit {
            ctx: FileContext {
                path: path.into(),
                crate_name: crate_name.into(),
                is_test_file: false,
                is_lib_root: false,
            },
            src: src.into(),
        };
        let cfg = LintConfig::default();
        let a = unit(
            "crates/model/src/a.rs",
            "model",
            "fn f() { println!(\"x\"); let _ = std::fs::read(\"y\"); }\n",
        );
        let b = unit(
            "crates/graph/src/b.rs",
            "graph",
            "use sp_sim::engine::Simulation;\n",
        );
        let fwd = lint_sources(vec![a.clone(), b.clone()], &cfg).render_json();
        let rev = lint_sources(vec![b, a], &cfg).render_json();
        assert_eq!(fwd, rev, "report must not depend on input order");
        // graph path sorts before model path.
        let gi = fwd.find("crates/graph").expect("graph finding present");
        let mi = fwd.find("crates/model").expect("model finding present");
        assert!(gi < mi, "findings sorted by path");
    }
}
