//! A minimal Rust lexer: just enough token structure for line-accurate
//! pattern rules, with comments and string/char literals correctly
//! delimited so that `"unwrap()"` inside a string or a doc example
//! never triggers a finding.
//!
//! This is deliberately not a full Rust grammar. The rules in
//! [`crate::rules`] only need four properties from the token stream:
//!
//! 1. identifiers are whole words (`unsafe_code` is one token, never a
//!    match for the `unsafe` keyword);
//! 2. comments survive as tokens (so `// SAFETY:` audits can see
//!    them) but are skippable for code-pattern matching;
//! 3. string/char/number literals are opaque single tokens;
//! 4. every token knows its 1-based source line.

/// What a token is. Punctuation is kept as single characters; rules
/// match multi-character operators (`::`) as consecutive tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// One punctuation character (`.`, `:`, `#`, `{`, …).
    Punct(char),
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`) — distinct from [`TokKind::Char`].
    Lifetime,
    /// `// …` comment (doc comments included), text preserved.
    LineComment,
    /// `/* … */` comment (nesting handled), text preserved.
    BlockComment,
}

/// One lexed token with its 1-based starting line and column.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text (identifier name, comment body, literal text).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based column (in chars) the token starts on.
    pub col: u32,
}

impl Tok {
    /// Whether this token is a comment (skipped by code-pattern rules).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Lexes `src` into a token stream. The lexer never fails: malformed
/// input (an unterminated string, say) degrades to a best-effort token
/// ending at EOF, which is the right behavior for a linter that must
/// not crash on code rustc itself will reject.
pub fn tokenize(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Tok>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, at: (u32, u32)) {
        self.out.push(Tok {
            kind,
            text,
            line: at.0,
            col: at.1,
        });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let at = (self.line, self.col);
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(at),
                '/' if self.peek(1) == Some('*') => self.block_comment(at),
                '"' => self.string(at),
                '\'' => self.char_or_lifetime(at),
                _ if c.is_ascii_digit() => self.number(at),
                _ if is_ident_start(c) => self.word(at),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct(c), c.to_string(), at);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, at: (u32, u32)) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment, text, at);
    }

    fn block_comment(&mut self, at: (u32, u32)) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::BlockComment, text, at);
    }

    /// Ordinary `"…"` string with escapes.
    fn string(&mut self, at: (u32, u32)) {
        let mut text = String::new();
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                text.push(c);
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '"' {
                break;
            } else {
                text.push(c);
            }
        }
        self.push(TokKind::Str, text, at);
    }

    /// Raw string `r"…"` / `r#"…"#` with `hashes` leading `#`s; the
    /// caller has already consumed the prefix up to and including the
    /// opening quote.
    fn raw_string_body(&mut self, hashes: usize, at: (u32, u32)) {
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // A closing quote must be followed by `hashes` #s.
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        text.push(c);
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(TokKind::Str, text, at);
    }

    /// `'a` lifetime, `'x'` char, or `'\n'` escaped char.
    fn char_or_lifetime(&mut self, at: (u32, u32)) {
        self.bump(); // opening quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume until closing quote.
                let mut text = String::new();
                while let Some(c) = self.bump() {
                    if c == '\\' {
                        text.push(c);
                        if let Some(e) = self.bump() {
                            text.push(e);
                        }
                    } else if c == '\'' {
                        break;
                    } else {
                        text.push(c);
                    }
                }
                self.push(TokKind::Char, text, at);
            }
            Some(c) if is_ident_start(c) => {
                // Could be 'a' (char) or 'a (lifetime): scan the
                // identifier run and look for a closing quote.
                let mut end = 0usize;
                while self.peek(end).map(is_ident_cont).unwrap_or(false) {
                    end += 1;
                }
                if self.peek(end) == Some('\'') {
                    let mut text = String::new();
                    for _ in 0..end {
                        text.push(self.bump().unwrap_or('\0'));
                    }
                    self.bump(); // closing quote
                    self.push(TokKind::Char, text, at);
                } else {
                    let mut text = String::new();
                    for _ in 0..end {
                        text.push(self.bump().unwrap_or('\0'));
                    }
                    self.push(TokKind::Lifetime, text, at);
                }
            }
            Some(c) => {
                // Degenerate literal like '@' (or stray quote at EOF).
                let mut text = String::new();
                text.push(c);
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Char, text, at);
            }
            None => self.push(TokKind::Char, String::new(), at),
        }
    }

    fn number(&mut self, at: (u32, u32)) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_cont(c) {
                text.push(c);
                self.bump();
                // Exponent sign: `1e-3`, `2.5E+10`.
                if (c == 'e' || c == 'E')
                    && matches!(self.peek(0), Some('+') | Some('-'))
                    && self.peek(1).map(|d| d.is_ascii_digit()).unwrap_or(false)
                {
                    text.push(self.bump().unwrap_or('\0'));
                }
            } else if c == '.' && self.peek(1).map(|d| d.is_ascii_digit()).unwrap_or(false) {
                // Fractional part — but `1..5` (range) and `x.sum()`
                // stay separate tokens because `.` is only consumed
                // when a digit follows.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, at);
    }

    /// Identifier, or a string prefix (`r"…"`, `b"…"`, `r#"…"#`,
    /// `b'…'`, raw ident `r#ident`).
    fn word(&mut self, at: (u32, u32)) {
        // Scan the identifier run without consuming, so prefixes can
        // be re-interpreted.
        let mut end = 0usize;
        while self.peek(end).map(is_ident_cont).unwrap_or(false) {
            end += 1;
        }
        let word: String = (0..end).filter_map(|i| self.peek(i)).collect();
        let next = self.peek(end);
        match (word.as_str(), next) {
            ("r" | "b" | "br" | "rb", Some('"')) => {
                for _ in 0..=end {
                    self.bump(); // prefix + opening quote
                }
                if word.starts_with('r') || word.ends_with('r') {
                    self.raw_string_body(0, at);
                } else {
                    // b"…" behaves like an ordinary string body.
                    let mut text = String::new();
                    while let Some(c) = self.bump() {
                        if c == '\\' {
                            text.push(c);
                            if let Some(e) = self.bump() {
                                text.push(e);
                            }
                        } else if c == '"' {
                            break;
                        } else {
                            text.push(c);
                        }
                    }
                    self.push(TokKind::Str, text, at);
                }
            }
            ("r" | "br" | "rb", Some('#')) => {
                // Count the #s; a quote after them means raw string,
                // anything else means raw identifier `r#ident`.
                let mut hashes = 0usize;
                while self.peek(end + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(end + hashes) == Some('"') {
                    for _ in 0..end + hashes + 1 {
                        self.bump();
                    }
                    self.raw_string_body(hashes, at);
                } else {
                    // Raw identifier: consume `r#` then the word.
                    for _ in 0..end + 1 {
                        self.bump();
                    }
                    let mut text = String::new();
                    while let Some(c) = self.peek(0) {
                        if is_ident_cont(c) {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Ident, text, at);
                }
            }
            ("b", Some('\'')) => {
                self.bump(); // the `b`
                self.char_or_lifetime(at);
            }
            _ => {
                for _ in 0..end {
                    self.bump();
                }
                self.push(TokKind::Ident, word, at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("let x = a.unwrap();");
        assert_eq!(t[0], (TokKind::Ident, "let".into()));
        assert_eq!(t[3], (TokKind::Ident, "a".into()));
        assert_eq!(t[4], (TokKind::Punct('.'), ".".into()));
        assert_eq!(t[5], (TokKind::Ident, "unwrap".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let t = kinds(r#"let s = "call .unwrap() here";"#);
        assert!(t.iter().all(|(k, x)| *k != TokKind::Ident || x != "unwrap"));
        assert!(t.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let t = kinds(r##"let s = r#"no "unwrap()" match"#; let r#fn = 1;"##);
        assert!(t.iter().all(|(k, x)| *k != TokKind::Ident || x != "unwrap"));
        assert!(t.iter().any(|(k, x)| *k == TokKind::Ident && x == "fn"));
    }

    #[test]
    fn comments_are_tokens_with_text() {
        let t = tokenize("// SAFETY: fine\nunsafe { }");
        assert_eq!(t[0].kind, TokKind::LineComment);
        assert!(t[0].text.contains("SAFETY:"));
        assert_eq!(t[0].line, 1);
        assert!(t[1].is_ident("unsafe"));
        assert_eq!(t[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("/* a /* b */ c */ x");
        assert_eq!(t.len(), 2);
        assert_eq!(t[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'q'; let n = '\\n'; }");
        let lifetimes: Vec<_> = t.iter().filter(|(k, _)| *k == TokKind::Lifetime).collect();
        let chars: Vec<_> = t.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let t = kinds("let y = 2.0e-3; v.iter().sum::<f64>()");
        assert!(t.iter().any(|(k, x)| *k == TokKind::Num && x == "2.0e-3"));
        assert!(t.iter().any(|(k, x)| *k == TokKind::Ident && x == "sum"));
    }

    #[test]
    fn unsafe_code_is_not_the_unsafe_keyword() {
        let t = tokenize("#![forbid(unsafe_code)]");
        assert!(t.iter().any(|tok| tok.is_ident("unsafe_code")));
        assert!(!t.iter().any(|tok| tok.is_ident("unsafe")));
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let t = tokenize("/* one\ntwo */\n\"a\nb\"\nx");
        assert_eq!(t[0].line, 1);
        assert_eq!(t[1].line, 3); // string starts on line 3
        assert_eq!(t[2].line, 5); // x after the 2-line string
    }
}
