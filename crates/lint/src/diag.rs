//! Finding and severity types plus the two report renderers (human
//! and JSON). JSON is emitted by hand, consistent with the workspace
//! policy of hand-rolled serialization over external dependencies
//! (see `sp_sim::metrics::RunManifest::to_json`).

use std::fmt;

/// How a rule's findings are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Rule disabled: no finding is produced.
    Allow,
    /// Finding is reported but does not fail the run.
    Warn,
    /// Finding fails the run (non-zero exit, CI gate trips).
    Deny,
}

impl Severity {
    /// Parses a severity keyword as written in `lint.toml`.
    pub fn parse(s: &str) -> Result<Severity, String> {
        match s {
            "allow" => Ok(Severity::Allow),
            "warn" => Ok(Severity::Warn),
            "deny" => Ok(Severity::Deny),
            other => Err(format!(
                "unknown severity {other:?} (expected allow | warn | deny)"
            )),
        }
    }

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`D1`…`R1`).
    pub rule: &'static str,
    /// Effective severity after configuration.
    pub severity: Severity,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Canonical module path the offending token lives in
    /// (`sp_sim::engine`); empty when the resolver did not run.
    pub module_path: String,
    /// For graph rules: the module chain that explains the finding
    /// (a layering cycle, or the seed-lineage path). Empty otherwise.
    pub import_chain: Vec<String>,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}:{}: [{}] {}\n    fix: {}",
            self.severity, self.path, self.line, self.col, self.rule, self.message, self.hint
        )?;
        if !self.import_chain.is_empty() {
            write!(f, "\n    chain: {}", self.import_chain.join(" -> "))?;
        }
        Ok(())
    }
}

/// A full lint run: findings plus suppression bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Findings at [`Severity::Warn`] or [`Severity::Deny`], in
    /// (path, line) order.
    pub findings: Vec<Finding>,
    /// Findings suppressed by `[[allow]]` entries, kept for the JSON
    /// artifact so the baseline stays visible.
    pub suppressed: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Deny-level findings (the ones that fail the run).
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    /// Warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    /// Human-readable report. Deny findings are always listed;
    /// warn findings are listed when `show_warnings` is set and
    /// otherwise only counted, so a large advisory baseline (e.g.
    /// documented-invariant `expect()`s) does not drown the signal.
    pub fn render_human(&self, show_warnings: bool) -> String {
        let mut s = String::new();
        for f in &self.findings {
            if f.severity == Severity::Deny || show_warnings {
                s.push_str(&f.to_string());
                s.push('\n');
            }
        }
        s.push_str(&format!(
            "sp-lint: {} file(s) scanned, {} error(s), {} warning(s), {} suppressed by lint.toml\n",
            self.files_scanned,
            self.deny_count(),
            self.warn_count(),
            self.suppressed.len()
        ));
        if self.warn_count() > 0 && !show_warnings {
            s.push_str("(re-run with --warnings to list warn-level findings)\n");
        }
        s
    }

    /// Machine-readable report (stable shape, consumed by the CI
    /// artifact and by tests). Findings are emitted in the order the
    /// caller sorted them — [`crate::lint_sources`] guarantees
    /// `(path, line, col, rule)` order, so the document is
    /// byte-identical across runs and file-discovery orderings.
    pub fn render_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"version\": 2,\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"errors\": {},\n", self.deny_count()));
        s.push_str(&format!("  \"warnings\": {},\n", self.warn_count()));
        render_finding_list(&mut s, "findings", &self.findings, ",");
        render_finding_list(&mut s, "suppressed", &self.suppressed, "");
        s.push_str("}\n");
        s
    }
}

fn render_finding_list(s: &mut String, key: &str, list: &[Finding], trailing: &str) {
    s.push_str(&format!("  \"{key}\": [\n"));
    for (i, f) in list.iter().enumerate() {
        let sep = if i + 1 < list.len() { "," } else { "" };
        let chain = f
            .import_chain
            .iter()
            .map(|m| format!("\"{}\"", json_escape(m)))
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!(
            "    {{ \"rule\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"module_path\": \"{}\", \"import_chain\": [{}], \"message\": \"{}\", \"hint\": \"{}\" }}{sep}\n",
            f.rule,
            f.severity,
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.module_path),
            chain,
            json_escape(&f.message),
            json_escape(f.hint)
        ));
    }
    s.push_str(&format!("  ]{trailing}\n"));
}

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, severity: Severity) -> Finding {
        Finding {
            rule,
            severity,
            path: "crates/sim/src/x.rs".into(),
            line: 7,
            col: 5,
            module_path: "sp_sim::x".into(),
            import_chain: Vec::new(),
            message: "a \"quoted\" message".into(),
            hint: "do the right thing",
        }
    }

    #[test]
    fn counts_split_by_severity() {
        let r = Report {
            findings: vec![finding("D1", Severity::Deny), finding("S2", Severity::Warn)],
            suppressed: vec![finding("S2", Severity::Deny)],
            files_scanned: 3,
        };
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.warn_count(), 1);
        let human = r.render_human(false);
        assert!(human.contains("[D1]"));
        assert!(!human.contains("[S2]"), "warn hidden without --warnings");
        assert!(human.contains("1 error(s), 1 warning(s), 1 suppressed"));
        assert!(r.render_human(true).contains("[S2]"));
    }

    #[test]
    fn json_is_balanced_and_escaped() {
        let r = Report {
            findings: vec![finding("D2", Severity::Deny)],
            suppressed: vec![],
            files_scanned: 1,
        };
        let json = r.render_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"errors\": 1"));
    }

    #[test]
    fn severity_round_trips() {
        for s in [Severity::Allow, Severity::Warn, Severity::Deny] {
            assert_eq!(Severity::parse(s.name()), Ok(s));
        }
        assert!(Severity::parse("fatal").is_err());
    }
}
