//! The workspace-graph rule families — the rules that need to know
//! what module a token lives in and what that module imports
//! ([`crate::resolve::Workspace`]):
//!
//! | Rule | Class        | What it catches                                              |
//! |------|--------------|--------------------------------------------------------------|
//! | L1   | layering     | cross-crate `use` not declared in the `[layering]` DAG;      |
//! |      |              | back-edges are reported with the full import cycle           |
//! | P1   | purity       | `std::net` / `std::fs` / `std::process` /                    |
//! |      |              | `std::io::std{in,out,err}` / print macros in pure-core       |
//! |      |              | modules                                                      |
//! | R1   | rng-lineage  | RNG roots (`SpRng::seed_from_u64` / `from_state`) outside    |
//! |      |              | the declared seed-root modules; foreign RNG types            |
//! |      |              | constructed at all; RNG values in inter-shard channel types  |
//!
//! Findings carry `module_path` and, where a chain explains the
//! violation (L1 cycles, R1 seed lineage), `import_chain`.

use std::collections::{BTreeSet, VecDeque};

use crate::config::LintConfig;
use crate::diag::{Finding, Severity};
use crate::lexer::TokKind;
use crate::resolve::{crate_ident, ident_crate, AnalyzedFile, Workspace};

/// Runs L1/P1/R1 over the whole workspace.
pub fn lint_graph(ws: &Workspace, cfg: &LintConfig, out: &mut Vec<Finding>) {
    for af in &ws.files {
        rule_l1(af, cfg, out);
        rule_p1(af, cfg, out);
        rule_r1(af, ws, cfg, out);
    }
}

#[allow(clippy::too_many_arguments)]
fn push(
    out: &mut Vec<Finding>,
    rule: &'static str,
    severity: Severity,
    af: &AnalyzedFile,
    tok_idx: usize,
    import_chain: Vec<String>,
    message: String,
    hint: &'static str,
) {
    if severity == Severity::Allow {
        return;
    }
    let (line, col) = af
        .toks
        .get(tok_idx)
        .map(|t| (t.line, t.col))
        .unwrap_or((1, 1));
    out.push(Finding {
        rule,
        severity,
        path: af.ctx.path.clone(),
        line,
        col,
        module_path: af.module_of(tok_idx),
        import_chain,
        message,
        hint,
    });
}

/// BFS through the *declared* layering DAG from crate `from` to crate
/// `to`; returns the label path (inclusive) when one exists. Used to
/// render the full cycle a back-edge would create.
fn layer_path<'a>(cfg: &'a LintConfig, from: &'a str, to: &str) -> Option<Vec<&'a str>> {
    let mut prev: Vec<(&str, &str)> = Vec::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    queue.push_back(from);
    seen.insert(from);
    while let Some(cur) = queue.pop_front() {
        if cur == to {
            let mut path = vec![cur];
            let mut at = cur;
            while let Some(&(_, p)) = prev.iter().find(|&&(n, _)| n == at) {
                path.push(p);
                at = p;
            }
            path.reverse();
            return Some(path);
        }
        let Some(deps) = cfg.layering_deps(cur) else {
            continue;
        };
        for d in deps {
            if seen.insert(d.as_str()) {
                prev.push((d.as_str(), cur));
                queue.push_back(d.as_str());
            }
        }
    }
    None
}

/// L1 — crate layering. Every cross-crate reference (`sp_X::…`, in a
/// `use` or an inline qualified path) must follow a declared edge of
/// the `[layering]` DAG. A reference *against* the declared direction
/// is reported with the full cycle it would create; a reference to a
/// crate missing from the table is an undeclared dependency.
fn rule_l1(af: &AnalyzedFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let severity = cfg.severity_of("L1");
    let own = af.ctx.crate_name.as_str();
    let own_deps = cfg.layering_deps(own);
    if own_deps.is_none() {
        push(
            out,
            "L1",
            severity,
            af,
            0,
            Vec::new(),
            format!("crate `{own}` is not declared in the [layering] table"),
            "add the crate and its allowed dependencies to [layering] in lint.toml (see README \"Declaring a new crate\")",
        );
        return;
    }
    let own_deps = own_deps.expect("checked above");
    let (toks, code) = (&af.toks, &af.code);
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for (k, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !t.text.starts_with("sp_") {
            continue;
        }
        // Only path usage (`sp_x::…`) counts: plain identifiers that
        // happen to start with sp_ (metric names, locals) do not.
        let is_path = code
            .get(k + 1)
            .map(|&j| toks[j].is_punct(':'))
            .unwrap_or(false)
            && code
                .get(k + 2)
                .map(|&j| toks[j].is_punct(':'))
                .unwrap_or(false);
        if !is_path {
            continue;
        }
        let Some(label) = ident_crate(&t.text) else {
            continue;
        };
        // Crate dirs may use dashes where idents use underscores; try
        // the ident form first and fall back to the dashed label.
        let target_label = if cfg.layering_deps(label).is_some() {
            label.to_string()
        } else {
            label.replace('_', "-")
        };
        if target_label == own || !reported.insert(target_label.clone()) {
            continue;
        }
        if cfg.layering_deps(&target_label).is_none() {
            push(
                out,
                "L1",
                severity,
                af,
                i,
                Vec::new(),
                format!(
                    "cross-crate use of `{}`: crate `{target_label}` is not declared in the [layering] table",
                    t.text
                ),
                "add the crate and its allowed dependencies to [layering] in lint.toml (see README \"Declaring a new crate\")",
            );
            continue;
        }
        if own_deps.iter().any(|d| d == &target_label) {
            continue;
        }
        // Violation. If the declared DAG reaches back from the target
        // to this crate, the reference would close a cycle — render
        // the full path.
        let chain: Vec<String> = match layer_path(cfg, &target_label, own) {
            Some(path) => {
                let mut c = vec![crate_ident(own)];
                c.extend(path.iter().map(|l| crate_ident(l)));
                c
            }
            None => vec![crate_ident(own), crate_ident(&target_label)],
        };
        let declared = if own_deps.is_empty() {
            "nothing".to_string()
        } else {
            own_deps.join(", ")
        };
        let message = if chain.len() > 2 {
            format!(
                "layering back-edge: crate `{own}` may not import `{target_label}` \
                 (declared deps: {declared}); this closes the cycle {}",
                chain.join(" -> ")
            )
        } else {
            format!(
                "undeclared cross-crate dependency: `{own}` -> `{target_label}` \
                 (declared deps: {declared})"
            )
        };
        push(
            out,
            "L1",
            severity,
            af,
            i,
            chain,
            message,
            "layer the call the other way around, or declare the edge in [layering] if the DAG should grow",
        );
    }
}

const P1_STD_BANNED: [&str; 3] = ["net", "fs", "process"];
const P1_STDIO: [&str; 6] = ["stdin", "stdout", "stderr", "Stdin", "Stdout", "Stderr"];
const P1_MACROS: [&str; 5] = ["println", "eprintln", "print", "eprint", "dbg"];
const P1_HINT: &str =
    "pure-core modules must stay I/O-free (bitwise reproducibility and the coming `spnet serve` \
     split depend on it); route I/O through the CLI/bench/metrics layers";

/// P1 — I/O purity. The pure-core module set must not touch
/// `std::net`, `std::fs`, `std::process`, the process-wide stdio
/// handles, or the print macros. Test regions and test files are
/// exempt (a unit test may print); the observability allowlist is a
/// per-rule module scope, not a path list.
fn rule_p1(af: &AnalyzedFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if af.ctx.is_test_file {
        return;
    }
    let severity = cfg.severity_of("P1");
    // Imports: flagged at the `use` line.
    for u in &af.parsed.uses {
        if u.in_test {
            continue;
        }
        let decl_module = if u.in_mod.is_empty() {
            af.module_path.clone()
        } else {
            format!("{}::{}", af.module_path, u.in_mod.join("::"))
        };
        if !cfg.p1_pure(&decl_module) {
            continue;
        }
        let segs: Vec<&str> = u.path.iter().map(String::as_str).collect();
        let banned = match segs.as_slice() {
            ["std", second, ..] if P1_STD_BANNED.contains(second) => true,
            ["std", "io", third, ..] if P1_STDIO.contains(third) => true,
            _ => false,
        };
        if banned && severity != Severity::Allow {
            out.push(Finding {
                rule: "P1",
                severity,
                path: af.ctx.path.clone(),
                line: u.line,
                col: u.col,
                module_path: decl_module,
                import_chain: Vec::new(),
                message: format!("I/O import `{}` in pure module", u.path.join("::")),
                hint: P1_HINT,
            });
        }
    }
    // Inline qualified paths and macros.
    let (toks, code) = (&af.toks, &af.code);
    for (k, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || af.tests.contains(i) || af.parsed.in_use_decl(i) {
            continue;
        }
        let module = af.module_of(i);
        if !cfg.p1_pure(&module) {
            continue;
        }
        let at = |n: usize| code.get(k + n).map(|&j| &toks[j]);
        let colons = |n: usize| {
            at(n).map(|t| t.is_punct(':')).unwrap_or(false)
                && at(n + 1).map(|t| t.is_punct(':')).unwrap_or(false)
        };
        let prev_is = |c: char| k > 0 && toks[code[k - 1]].is_punct(c);
        let what: Option<String> = match t.text.as_str() {
            "std" if colons(1) => match at(3).map(|t| t.text.as_str()) {
                Some(second) if P1_STD_BANNED.contains(&second) => Some(format!("std::{second}")),
                Some("io") => {
                    if colons(4) {
                        match at(6).map(|t| t.text.as_str()) {
                            Some(third) if P1_STDIO.contains(&third) => {
                                Some(format!("std::io::{third}"))
                            }
                            _ => None,
                        }
                    } else {
                        None
                    }
                }
                _ => None,
            },
            "io" if !prev_is(':') && colons(1) => match at(3).map(|t| t.text.as_str()) {
                Some(third) if P1_STDIO.contains(&third) => Some(format!("io::{third}")),
                _ => None,
            },
            "stdin" | "stdout" | "stderr"
                if !prev_is(':')
                    && !prev_is('.')
                    && at(1).map(|t| t.is_punct('(')).unwrap_or(false) =>
            {
                Some(format!("{}()", t.text))
            }
            m if P1_MACROS.contains(&m)
                && at(1).map(|t| t.is_punct('!')).unwrap_or(false)
                && !prev_is('.') =>
            {
                Some(format!("{m}!"))
            }
            _ => None,
        };
        if let Some(what) = what {
            out_push_p1(
                out,
                severity,
                af,
                i,
                module,
                format!("I/O in pure module (`{what}`)"),
            );
        }
    }
}

fn out_push_p1(
    out: &mut Vec<Finding>,
    severity: Severity,
    af: &AnalyzedFile,
    tok_idx: usize,
    module: String,
    message: String,
) {
    if severity == Severity::Allow {
        return;
    }
    let (line, col) = af
        .toks
        .get(tok_idx)
        .map(|t| (t.line, t.col))
        .unwrap_or((1, 1));
    out.push(Finding {
        rule: "P1",
        severity,
        path: af.ctx.path.clone(),
        line,
        col,
        module_path: module,
        import_chain: Vec::new(),
        message,
        hint: P1_HINT,
    });
}

const R1_HINT: &str = "derive every stream from the run seed: SpRng::seed_from_u64 at a declared \
                       seed root, .split(stream) everywhere below it (DESIGN.md §13)";

/// R1 — RNG lineage. Three checks:
///
/// * **R1a** — a foreign RNG type (`SmallRng`, `StdRng`, …) is
///   constructed at all: the workspace's only sanctioned generator is
///   `SpRng`, whose streams form an auditable tree under the run seed.
/// * **R1b** — `SpRng::seed_from_u64` / `SpRng::from_state` (alias-
///   aware) outside the declared seed-root modules: a mid-graph module
///   minting a fresh root breaks the lineage tree — it must take a
///   stream from its caller (`.split`) instead. The finding's
///   `import_chain` shows how the module reaches the `sp_stats` seed
///   API, i.e. the path a derived stream would travel.
/// * **R1c** — an inter-shard channel type (`Sender`/`SyncSender`/
///   `Receiver`) whose payload mentions an RNG type, in the shard
///   modules: RNG state crossing a shard boundary makes stream
///   identity depend on shard count.
fn rule_r1(af: &AnalyzedFile, ws: &Workspace, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let severity = cfg.severity_of("R1");
    // Local aliases of SpRng (`use sp_stats::SpRng as Rng;`).
    let mut sprng_names: Vec<&str> = vec!["SpRng"];
    for u in &af.parsed.uses {
        if u.path.last().map(String::as_str) == Some("SpRng") {
            if let Some(a) = &u.alias {
                sprng_names.push(a.as_str());
            }
        }
    }
    let (toks, code) = (&af.toks, &af.code);
    for (k, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let in_test = af.ctx.is_test_file || af.tests.contains(i);
        let at = |n: usize| code.get(k + n).map(|&j| &toks[j]);
        let colons = at(1).map(|t| t.is_punct(':')).unwrap_or(false)
            && at(2).map(|t| t.is_punct(':')).unwrap_or(false);

        // R1a: foreign RNG construction (`SmallRng::from_entropy()`,
        // `StdRng::seed_from_u64(…)` — any associated call).
        if !in_test
            && cfg.r1_rng_types.iter().any(|n| n == &t.text)
            && colons
            && at(3).map(|t| t.kind == TokKind::Ident).unwrap_or(false)
            && at(4).map(|t| t.is_punct('(')).unwrap_or(false)
        {
            let method = at(3).expect("matched above").text.clone();
            push(
                out,
                "R1",
                severity,
                af,
                i,
                Vec::new(),
                format!(
                    "foreign RNG type constructed (`{}::{method}`); streams outside the SpRng \
                     lineage tree cannot be replayed",
                    t.text
                ),
                R1_HINT,
            );
            continue;
        }

        // R1b: SpRng root construction outside the seed roots.
        if !in_test
            && sprng_names.iter().any(|n| t.is_ident(n))
            && colons
            && at(3)
                .map(|t| matches!(t.text.as_str(), "seed_from_u64" | "from_state"))
                .unwrap_or(false)
            && at(4).map(|t| t.is_punct('(')).unwrap_or(false)
        {
            let module = af.module_of(i);
            if !cfg.r1_seed_root(&module) {
                let method = at(3).expect("matched above").text.clone();
                let fn_name = af
                    .parsed
                    .enclosing_fn(i)
                    .map(|f| format!(" in fn `{}`", f.name))
                    .unwrap_or_default();
                let chain = ws.import_chain(&module, "sp_stats").unwrap_or_default();
                let lineage = if chain.is_empty() {
                    " (module has no import path to the sp_stats seed API)".to_string()
                } else {
                    String::new()
                };
                push(
                    out,
                    "R1",
                    severity,
                    af,
                    i,
                    chain,
                    format!(
                        "RNG root `SpRng::{method}`{fn_name} outside the declared seed-root \
                         modules — module `{module}` must take a derived stream \
                         (.split) from its caller{lineage}",
                    ),
                    R1_HINT,
                );
            }
            continue;
        }

        // R1c: RNG state in an inter-shard channel type.
        if matches!(t.text.as_str(), "Sender" | "SyncSender" | "Receiver")
            && at(1).map(|t| t.is_punct('<')).unwrap_or(false)
        {
            let module = af.module_of(i);
            if !cfg.r1_shard(&module) {
                continue;
            }
            // Scan the balanced generic argument list (bounded).
            let mut depth = 0usize;
            let mut carried: Option<String> = None;
            for n in 1..64 {
                let Some(tn) = at(n) else { break };
                if tn.is_punct('<') {
                    depth += 1;
                } else if tn.is_punct('>') {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                } else if tn.kind == TokKind::Ident
                    && (sprng_names.iter().any(|s| tn.is_ident(s))
                        || cfg.r1_rng_types.iter().any(|n2| n2 == &tn.text))
                {
                    carried = Some(tn.text.clone());
                }
            }
            if let Some(carried) = carried {
                push(
                    out,
                    "R1",
                    severity,
                    af,
                    i,
                    Vec::new(),
                    format!(
                        "RNG state (`{carried}`) in inter-shard channel type `{}<…>` — stream \
                         identity must not depend on shard count",
                        t.text
                    ),
                    "split a per-shard stream from the shard's own seed instead of shipping RNG state across the barrier",
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::{analyze_unit, SourceUnit};
    use crate::rules::FileContext;

    fn unit(path: &str, crate_name: &str, src: &str) -> SourceUnit {
        SourceUnit {
            ctx: FileContext {
                path: path.into(),
                crate_name: crate_name.into(),
                is_test_file: false,
                is_lib_root: false,
            },
            src: src.into(),
        }
    }

    fn run_ws(units: Vec<SourceUnit>) -> Vec<Finding> {
        let ws = Workspace::build(units.iter().map(analyze_unit).collect());
        let mut out = Vec::new();
        lint_graph(&ws, &LintConfig::default(), &mut out);
        out
    }

    #[test]
    fn l1_back_edge_reports_full_cycle() {
        let f = run_ws(vec![unit(
            "crates/graph/src/l1.rs",
            "graph",
            "use sp_sim::engine::Simulation;\n",
        )]);
        let l1 = f.iter().find(|f| f.rule == "L1").expect("back-edge found");
        assert_eq!(l1.import_chain, ["sp_graph", "sp_sim", "sp_graph"]);
        assert!(
            l1.message.contains("sp_graph -> sp_sim -> sp_graph"),
            "{}",
            l1.message
        );
        assert_eq!(l1.line, 1);
    }

    #[test]
    fn l1_declared_edges_and_self_references_are_clean() {
        let f = run_ws(vec![unit(
            "crates/sim/src/x.rs",
            "sim",
            "use sp_model::faults::FaultPlan;\nuse sp_stats::SpRng;\nfn f() { let sp_load = 1; let _ = sp_load; }\n",
        )]);
        assert!(f.iter().all(|f| f.rule != "L1"), "{f:?}");
    }

    #[test]
    fn l1_unknown_crate_is_undeclared() {
        let f = run_ws(vec![unit(
            "crates/sim/src/x.rs",
            "sim",
            "use sp_quux::Widget;\n",
        )]);
        let l1 = f.iter().find(|f| f.rule == "L1").expect("undeclared found");
        assert!(l1.message.contains("not declared"), "{}", l1.message);
    }

    #[test]
    fn p1_flags_io_in_pure_modules_only() {
        let bad = "use std::fs;\nfn f() { println!(\"x\"); }\n";
        let f = run_ws(vec![unit("crates/model/src/p.rs", "model", bad)]);
        assert_eq!(f.iter().filter(|f| f.rule == "P1").count(), 2);
        // Same source in the CLI: clean (not a pure module).
        let f = run_ws(vec![unit("crates/cli/src/p.rs", "cli", bad)]);
        assert!(f.iter().all(|f| f.rule != "P1"));
        // Test regions are exempt.
        let test_only =
            "#[cfg(test)]\nmod tests {\n use std::fs;\n fn f() { println!(\"x\"); }\n}\n";
        let f = run_ws(vec![unit("crates/model/src/p.rs", "model", test_only)]);
        assert!(f.iter().all(|f| f.rule != "P1"), "{f:?}");
    }

    #[test]
    fn p1_does_not_double_count_imports() {
        let f = run_ws(vec![unit(
            "crates/model/src/p.rs",
            "model",
            "use std::fs;\n",
        )]);
        assert_eq!(f.iter().filter(|f| f.rule == "P1").count(), 1);
    }

    #[test]
    fn r1_flags_roots_outside_seed_roots_with_lineage_chain() {
        let f = run_ws(vec![unit(
            "crates/sim/src/shard/r.rs",
            "sim",
            "use sp_stats::SpRng;\nfn mk(h: u64) -> SpRng { SpRng::seed_from_u64(h) }\n",
        )]);
        let r1 = f.iter().find(|f| f.rule == "R1").expect("root flagged");
        assert!(r1.message.contains("fn `mk`"), "{}", r1.message);
        assert_eq!(
            r1.import_chain.first().map(String::as_str),
            Some("sp_sim::shard::r")
        );
        assert!(r1.import_chain.last().unwrap().starts_with("sp_stats"));
    }

    #[test]
    fn r1_seed_roots_and_split_are_clean() {
        // engine is a declared seed root; .split is always legal.
        let f = run_ws(vec![unit(
            "crates/sim/src/engine.rs",
            "sim",
            "use sp_stats::SpRng;\nfn mk(seed: u64) -> SpRng { SpRng::seed_from_u64(seed) }\n\
             fn sub(r: &mut SpRng) -> SpRng { r.split(7) }\n",
        )]);
        assert!(f.iter().all(|f| f.rule != "R1"), "{f:?}");
    }

    #[test]
    fn r1_foreign_types_and_channel_payloads() {
        let f = run_ws(vec![unit(
            "crates/sim/src/shard/q.rs",
            "sim",
            "use sp_stats::SpRng;\n\
             fn a() { let r = SmallRng::seed_from_u64(1); let _ = r; }\n\
             struct Q { tx: SyncSender<(u64, SpRng)> }\n",
        )]);
        let r1: Vec<_> = f.iter().filter(|f| f.rule == "R1").collect();
        assert_eq!(r1.len(), 2, "{r1:?}");
        assert!(r1[0].message.contains("foreign RNG"), "{}", r1[0].message);
        assert!(
            r1[1].message.contains("inter-shard channel"),
            "{}",
            r1[1].message
        );
    }
}
