//! `lint.toml` — rule severities, rule parameters, and the allowlist
//! baseline, parsed with a hand-rolled TOML-subset reader (the
//! workspace has no TOML dependency and the offline `crates/compat`
//! policy rules out adding one).
//!
//! The supported subset: `[table]` headers, `[[array_of_tables]]`
//! headers, `key = "string"`, `key = ["a", "b"]`, `key = true|false`,
//! comments, and blank lines. That covers the whole configuration
//! surface; anything else is a hard error so a typo cannot silently
//! disable a rule.
//!
//! Policy note: `[[allow]]` entries are the *baseline* — each MUST
//! carry a non-empty `justification` string, and the self-lint test
//! asserts there are none for the determinism rules D1–D3 in
//! deterministic crates. The per-rule parameters (e.g. the D2
//! observability-module allowlist) are rule *definition*, not
//! baseline: they say where wall-clock reads are architecturally
//! legal, not which known violations are tolerated.

use crate::diag::Severity;

/// One `[[allow]]` baseline entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id the entry suppresses (`D1`…`F2`).
    pub rule: String,
    /// Repo-relative path prefix the entry covers (a file, or a
    /// directory ending in `/`).
    pub path: String,
    /// Why the suppression is sound. Mandatory and non-empty.
    pub justification: String,
}

/// Parsed lint configuration.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crates under the bitwise-determinism contract (D1, F1, and the
    /// `#![forbid(unsafe_code)]` audit of S1 apply here).
    pub deterministic_crates: Vec<String>,
    /// Crates where S2 (`unwrap`/`expect`) applies.
    pub unwrap_crates: Vec<String>,
    /// Per-rule severities, indexed by rule id.
    pub severity: Vec<(String, Severity)>,
    /// Severity for the `expect()` half of S2 (the `unwrap()` half
    /// uses the S2 severity). Documented-invariant `expect`s are a
    /// distinct, lower-risk class than `unwrap`, so they get their
    /// own dial.
    pub s2_expect: Severity,
    /// Path prefixes where D2 wall-clock/env reads are legal. Kept
    /// for back-compat with older `lint.toml`s; the canonical scope
    /// is `d2_allow_modules`.
    pub d2_allow_paths: Vec<String>,
    /// Module scopes where D2 wall-clock/env reads are legal (the
    /// observability modules, benches, and the CLI). A scope matches
    /// a module when equal or a `::`-prefix of it.
    pub d2_allow_modules: Vec<String>,
    /// Declared crate-layering DAG (L1): crate label → crate labels
    /// it may import. Any cross-crate `use` not covered by an edge is
    /// an error; the table itself is validated acyclic at parse time.
    pub layering: Vec<(String, Vec<String>)>,
    /// Module scopes under the I/O-purity contract (P1): `std::net`,
    /// `std::fs`, `std::process`, `std::io::std{in,out,err}`, and the
    /// print macros are banned there.
    pub p1_pure_modules: Vec<String>,
    /// Module scopes exempt from P1 inside the pure set (the
    /// observability modules).
    pub p1_allow_modules: Vec<String>,
    /// Foreign RNG type names whose construction R1 flags outside the
    /// seed-lineage API.
    pub r1_rng_types: Vec<String>,
    /// Module scopes where `SpRng::seed_from_u64` / `from_state` root
    /// construction is legal (R1): trial/experiment drivers that own
    /// a run seed, plus the `sp_stats` API itself.
    pub r1_seed_roots: Vec<String>,
    /// Module scopes under the inter-shard channel contract (R1):
    /// channel types carrying an RNG value are flagged there.
    pub r1_shard_modules: Vec<String>,
    /// Path prefixes under the shared-nothing contract (F2): lock and
    /// atomic shared-state primitives are banned there — simulator hot
    /// paths communicate only through bounded mpsc channels drained at
    /// tick barriers (DESIGN.md §15).
    pub f2_hot_paths: Vec<String>,
    /// Path prefixes under the supervised-channel contract (F3): bare
    /// `.unwrap()`/`.expect()` on inter-shard channel `send`/`recv`
    /// calls is banned there — a dead peer shard must surface as a
    /// supervised `ShardFailure`, not a cascading panic (DESIGN.md
    /// §17).
    pub f3_hot_paths: Vec<String>,
    /// Baseline suppressions.
    pub allow: Vec<AllowEntry>,
}

/// Every rule id, in report order.
pub const RULE_IDS: [&str; 11] = [
    "D1", "D2", "D3", "S1", "S2", "F1", "F2", "F3", "L1", "P1", "R1",
];

/// Whether module-scope `scope` covers module path `module` (equal,
/// or a `::`-prefix: `sp_sim` covers `sp_sim::engine`).
pub fn module_in_scope(scope: &str, module: &str) -> bool {
    module == scope
        || (module.len() > scope.len()
            && module.starts_with(scope)
            && module[scope.len()..].starts_with("::"))
}

impl Default for LintConfig {
    /// The built-in policy, identical to the checked-in `lint.toml`
    /// minus the baseline. Fixture tests run against this so they
    /// exercise the rules, not the workspace baseline.
    fn default() -> Self {
        LintConfig {
            deterministic_crates: ["sim", "model", "graph", "stats", "design", "core"]
                .map(String::from)
                .to_vec(),
            unwrap_crates: ["sim", "model", "graph", "stats", "design", "core", "cli"]
                .map(String::from)
                .to_vec(),
            severity: RULE_IDS
                .iter()
                .map(|r| (r.to_string(), Severity::Deny))
                .collect(),
            s2_expect: Severity::Warn,
            d2_allow_paths: Vec::new(),
            d2_allow_modules: ["sp_sim::metrics", "sp_bench", "sp_cli", "sp_lint"]
                .map(String::from)
                .to_vec(),
            layering: default_layering(),
            p1_pure_modules: [
                "sp_core",
                "sp_design",
                "sp_graph",
                "sp_model",
                "sp_sim",
                "sp_stats",
            ]
            .map(String::from)
            .to_vec(),
            p1_allow_modules: vec!["sp_sim::metrics".into()],
            r1_rng_types: [
                "SmallRng",
                "StdRng",
                "ThreadRng",
                "ChaCha8Rng",
                "ChaCha12Rng",
                "ChaCha20Rng",
                "Pcg32",
                "Pcg64",
                "Xoshiro128PlusPlus",
                "Xoshiro256PlusPlus",
                "Xoshiro256StarStar",
            ]
            .map(String::from)
            .to_vec(),
            r1_seed_roots: [
                "sp_stats",
                "sp_bench",
                "sp_model::trials",
                "sp_sim::engine",
                "sp_sim::reference",
                "sp_sim::campaign",
                "sp_sim::scenario",
                "sp_sim::phases",
                "sp_sim::faults",
                "sp_design::epl",
                "sp_core::experiments::redesign",
            ]
            .map(String::from)
            .to_vec(),
            r1_shard_modules: vec!["sp_sim::shard".into()],
            f2_hot_paths: vec!["crates/sim/src/".into()],
            f3_hot_paths: vec!["crates/sim/src/".into()],
            allow: Vec::new(),
        }
    }
}

/// The declared crate-layering DAG, mirroring the workspace
/// `Cargo.toml` dependency edges (see DESIGN.md §13 and README for
/// the picture). Keys are crate directory labels; `workspace-tests`
/// and `examples` are pseudo-crates for workspace-level test and
/// example files.
fn default_layering() -> Vec<(String, Vec<String>)> {
    let table: [(&str, &[&str]); 11] = [
        ("cli", &["core", "lint"]),
        (
            "bench",
            &["core", "sim", "design", "model", "graph", "stats"],
        ),
        ("core", &["sim", "design", "model", "graph", "stats"]),
        ("sim", &["design", "model", "graph", "stats"]),
        ("design", &["model", "graph", "stats"]),
        ("model", &["graph", "stats"]),
        ("graph", &["stats"]),
        ("stats", &[]),
        ("lint", &[]),
        (
            "workspace-tests",
            &["core", "sim", "design", "model", "graph", "stats"],
        ),
        (
            "examples",
            &["core", "sim", "design", "model", "graph", "stats"],
        ),
    ];
    table
        .iter()
        .map(|(k, deps)| (k.to_string(), deps.iter().map(|d| d.to_string()).collect()))
        .collect()
}

impl LintConfig {
    /// Effective severity of a rule.
    pub fn severity_of(&self, rule: &str) -> Severity {
        self.severity
            .iter()
            .find(|(r, _)| r == rule)
            .map(|&(_, s)| s)
            .unwrap_or(Severity::Deny)
    }

    /// Whether `crate_name` is under the determinism contract.
    pub fn is_deterministic(&self, crate_name: &str) -> bool {
        self.deterministic_crates.iter().any(|c| c == crate_name)
    }

    /// Whether S2 applies to `crate_name`.
    pub fn checks_unwrap(&self, crate_name: &str) -> bool {
        self.unwrap_crates.iter().any(|c| c == crate_name)
    }

    /// Whether `path`/`module` is an allowlisted D2 observability
    /// location (module scope, or legacy path prefix).
    pub fn d2_allowed(&self, path: &str, module: &str) -> bool {
        self.d2_allow_paths
            .iter()
            .any(|p| path.starts_with(p.as_str()))
            || self
                .d2_allow_modules
                .iter()
                .any(|m| module_in_scope(m, module))
    }

    /// Whether `module` is under the P1 I/O-purity contract.
    pub fn p1_pure(&self, module: &str) -> bool {
        self.p1_pure_modules
            .iter()
            .any(|m| module_in_scope(m, module))
            && !self
                .p1_allow_modules
                .iter()
                .any(|m| module_in_scope(m, module))
    }

    /// Whether `module` may construct RNG seed roots (R1).
    pub fn r1_seed_root(&self, module: &str) -> bool {
        self.r1_seed_roots
            .iter()
            .any(|m| module_in_scope(m, module))
    }

    /// Whether `module` is under the R1 inter-shard channel contract.
    pub fn r1_shard(&self, module: &str) -> bool {
        self.r1_shard_modules
            .iter()
            .any(|m| module_in_scope(m, module))
    }

    /// The declared layering dependencies of a crate label, if the
    /// crate is in the table.
    pub fn layering_deps(&self, crate_label: &str) -> Option<&[String]> {
        self.layering
            .iter()
            .find(|(k, _)| k == crate_label)
            .map(|(_, deps)| deps.as_slice())
    }

    /// Whether `path` is under the F2 shared-nothing contract.
    pub fn f2_hot(&self, path: &str) -> bool {
        self.f2_hot_paths
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }

    /// Whether `path` is under the F3 supervised-channel contract.
    pub fn f3_hot(&self, path: &str) -> bool {
        self.f3_hot_paths
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }

    /// The `[[allow]]` entry suppressing `rule` at `path`, if any.
    pub fn allow_entry(&self, rule: &str, path: &str) -> Option<&AllowEntry> {
        self.allow
            .iter()
            .find(|a| a.rule == rule && path.starts_with(a.path.as_str()))
    }

    /// Baseline entries for a rule (used by the self-lint test to
    /// assert the D1–D3 baseline is empty).
    pub fn baseline_for(&self, rule: &str) -> Vec<&AllowEntry> {
        self.allow.iter().filter(|a| a.rule == rule).collect()
    }

    /// Parses `lint.toml` text. Errors name the line.
    pub fn parse(text: &str) -> Result<LintConfig, String> {
        let mut cfg = LintConfig {
            allow: Vec::new(),
            ..LintConfig::default()
        };
        // Reset list-valued policy fields so the file is authoritative
        // when it sets them; absent keys keep the defaults above.
        let mut section = String::new();
        let mut current_allow: Option<AllowEntry> = None;
        // The [layering] table is cleared when the file provides its
        // first edge, so a checked-in table fully replaces the
        // default rather than merging with it.
        let mut layering_cleared = false;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                if name.trim() != "allow" {
                    return Err(format!(
                        "lint.toml:{lineno}: unknown array of tables [[{}]]",
                        name.trim()
                    ));
                }
                if let Some(entry) = current_allow.take() {
                    cfg.push_allow(entry, lineno)?;
                }
                current_allow = Some(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    justification: String::new(),
                });
                section = "allow".into();
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                if let Some(entry) = current_allow.take() {
                    cfg.push_allow(entry, lineno)?;
                }
                section = name.trim().to_string();
                match section.as_str() {
                    "lint" | "severity" | "layering" | "rules.D2" | "rules.S2" | "rules.F2"
                    | "rules.F3" | "rules.P1" | "rules.R1" => {}
                    other => {
                        return Err(format!("lint.toml:{lineno}: unknown table [{other}]"));
                    }
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("lint.toml:{lineno}: expected `key = value`"))?;
            let key = key.trim();
            let value = value.trim();
            match (section.as_str(), key) {
                ("lint", "deterministic_crates") => {
                    cfg.deterministic_crates = parse_string_array(value, lineno)?;
                }
                ("lint", "unwrap_crates") => {
                    cfg.unwrap_crates = parse_string_array(value, lineno)?;
                }
                ("severity", rule) => {
                    if !RULE_IDS.contains(&rule) {
                        return Err(format!("lint.toml:{lineno}: unknown rule id {rule:?}"));
                    }
                    let sev = Severity::parse(&parse_string(value, lineno)?)
                        .map_err(|e| format!("lint.toml:{lineno}: {e}"))?;
                    if let Some(slot) = cfg.severity.iter_mut().find(|(r, _)| r == rule) {
                        slot.1 = sev;
                    }
                }
                ("layering", crate_label) => {
                    if !layering_cleared {
                        cfg.layering.clear();
                        layering_cleared = true;
                    }
                    let deps = parse_string_array(value, lineno)?;
                    if cfg.layering.iter().any(|(k, _)| k == crate_label) {
                        return Err(format!(
                            "lint.toml:{lineno}: duplicate crate {crate_label:?} in [layering]"
                        ));
                    }
                    cfg.layering.push((crate_label.to_string(), deps));
                }
                ("rules.D2", "allow_paths") => {
                    cfg.d2_allow_paths = parse_string_array(value, lineno)?;
                }
                ("rules.D2", "allow_modules") => {
                    cfg.d2_allow_modules = parse_string_array(value, lineno)?;
                }
                ("rules.F2", "hot_paths") => {
                    cfg.f2_hot_paths = parse_string_array(value, lineno)?;
                }
                ("rules.F3", "hot_paths") => {
                    cfg.f3_hot_paths = parse_string_array(value, lineno)?;
                }
                ("rules.P1", "pure_modules") => {
                    cfg.p1_pure_modules = parse_string_array(value, lineno)?;
                }
                ("rules.P1", "allow_modules") => {
                    cfg.p1_allow_modules = parse_string_array(value, lineno)?;
                }
                ("rules.R1", "rng_types") => {
                    cfg.r1_rng_types = parse_string_array(value, lineno)?;
                }
                ("rules.R1", "seed_roots") => {
                    cfg.r1_seed_roots = parse_string_array(value, lineno)?;
                }
                ("rules.R1", "shard_modules") => {
                    cfg.r1_shard_modules = parse_string_array(value, lineno)?;
                }
                ("rules.S2", "expect") => {
                    cfg.s2_expect = Severity::parse(&parse_string(value, lineno)?)
                        .map_err(|e| format!("lint.toml:{lineno}: {e}"))?;
                }
                ("allow", "rule") => {
                    let entry = current_allow
                        .as_mut()
                        .ok_or_else(|| format!("lint.toml:{lineno}: key outside [[allow]]"))?;
                    entry.rule = parse_string(value, lineno)?;
                    if !RULE_IDS.contains(&entry.rule.as_str()) {
                        return Err(format!(
                            "lint.toml:{lineno}: unknown rule id {:?} in [[allow]]",
                            entry.rule
                        ));
                    }
                }
                ("allow", "path") => {
                    current_allow
                        .as_mut()
                        .ok_or_else(|| format!("lint.toml:{lineno}: key outside [[allow]]"))?
                        .path = parse_string(value, lineno)?;
                }
                ("allow", "justification") => {
                    current_allow
                        .as_mut()
                        .ok_or_else(|| format!("lint.toml:{lineno}: key outside [[allow]]"))?
                        .justification = parse_string(value, lineno)?;
                }
                (sec, key) => {
                    return Err(format!(
                        "lint.toml:{lineno}: unknown key {key:?} in section [{sec}]"
                    ));
                }
            }
        }
        if let Some(entry) = current_allow.take() {
            let last = text.lines().count();
            cfg.push_allow(entry, last)?;
        }
        cfg.validate_layering()?;
        Ok(cfg)
    }

    /// Post-parse validation of the layering table: every referenced
    /// dependency must itself be declared, and the declared edges
    /// must form a DAG (a cycle is reported with its full path).
    fn validate_layering(&self) -> Result<(), String> {
        for (k, deps) in &self.layering {
            for d in deps {
                if !self.layering.iter().any(|(other, _)| other == d) {
                    return Err(format!(
                        "lint.toml: [layering] crate {k:?} depends on undeclared crate {d:?} \
                         (every crate in the DAG must have its own entry)"
                    ));
                }
            }
        }
        // Iterative DFS cycle detection with path reconstruction.
        // 0 = unvisited, 1 = on stack, 2 = done.
        let mut state: Vec<u8> = vec![0; self.layering.len()];
        let index_of = |name: &str| self.layering.iter().position(|(k, _)| k == name);
        for start in 0..self.layering.len() {
            if state[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            state[start] = 1;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                let deps = &self.layering[node].1;
                if *next >= deps.len() {
                    state[node] = 2;
                    stack.pop();
                    continue;
                }
                let dep = &deps[*next];
                *next += 1;
                let di = index_of(dep).expect("validated above");
                match state[di] {
                    0 => {
                        state[di] = 1;
                        stack.push((di, 0));
                    }
                    1 => {
                        // Cycle: slice the stack from the first
                        // occurrence of `di` and close the loop.
                        let pos = stack
                            .iter()
                            .position(|&(n, _)| n == di)
                            .expect("on-stack node is in the stack");
                        let mut path: Vec<&str> = stack[pos..]
                            .iter()
                            .map(|&(n, _)| self.layering[n].0.as_str())
                            .collect();
                        path.push(self.layering[di].0.as_str());
                        return Err(format!(
                            "lint.toml: [layering] cycle: {}",
                            path.join(" -> ")
                        ));
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    fn push_allow(&mut self, entry: AllowEntry, lineno: usize) -> Result<(), String> {
        if entry.rule.is_empty() || entry.path.is_empty() {
            return Err(format!(
                "lint.toml:{lineno}: [[allow]] entry needs both `rule` and `path`"
            ));
        }
        if entry.justification.trim().is_empty() {
            return Err(format!(
                "lint.toml:{lineno}: [[allow]] for {} at {} is missing a justification \
                 (every baseline suppression must say why it is sound)",
                entry.rule, entry.path
            ));
        }
        self.allow.push(entry);
        Ok(())
    }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("lint.toml:{lineno}: expected a quoted string, got {value}"))?;
    Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("lint.toml:{lineno}: expected an array, got {value}"))?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_string(s, lineno))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_shape() {
        let cfg = LintConfig::parse(
            r#"
# comment
[lint]
deterministic_crates = ["sim", "model"] # trailing comment
unwrap_crates = ["sim"]

[severity]
D1 = "deny"
S2 = "warn"

[rules.D2]
allow_paths = ["crates/bench/"]

[rules.S2]
expect = "allow"

[rules.F2]
hot_paths = ["crates/sim/src/shard.rs"]

[rules.F3]
hot_paths = ["crates/sim/src/shard.rs"]

[[allow]]
rule = "S1"
path = "crates/bench/src/bin/repro_bench.rs"
justification = "GlobalAlloc impl, audited"
"#,
        )
        .unwrap();
        assert_eq!(cfg.deterministic_crates, ["sim", "model"]);
        assert_eq!(cfg.severity_of("S2"), Severity::Warn);
        assert_eq!(cfg.severity_of("D1"), Severity::Deny);
        assert_eq!(cfg.s2_expect, Severity::Allow);
        assert!(cfg.d2_allowed("crates/bench/src/lib.rs", "sp_bench"));
        assert!(!cfg.d2_allowed("crates/sim/src/engine.rs", "sp_sim::engine"));
        assert!(cfg.f2_hot("crates/sim/src/shard.rs"));
        assert!(!cfg.f2_hot("crates/sim/src/engine.rs"));
        assert!(cfg.f3_hot("crates/sim/src/shard.rs"));
        assert!(!cfg.f3_hot("crates/sim/src/engine.rs"));
        assert!(cfg
            .allow_entry("S1", "crates/bench/src/bin/repro_bench.rs")
            .is_some());
        assert!(cfg.allow_entry("S1", "crates/sim/src/engine.rs").is_none());
    }

    #[test]
    fn justification_is_mandatory() {
        let err = LintConfig::parse(
            "[[allow]]\nrule = \"S2\"\npath = \"crates/sim/\"\njustification = \"  \"\n",
        )
        .unwrap_err();
        assert!(err.contains("justification"), "{err}");
        let err =
            LintConfig::parse("[[allow]]\nrule = \"S2\"\npath = \"crates/sim/\"\n").unwrap_err();
        assert!(err.contains("justification"), "{err}");
    }

    #[test]
    fn unknown_keys_and_rules_are_hard_errors() {
        assert!(LintConfig::parse("[lint]\nbogus = \"x\"\n").is_err());
        assert!(LintConfig::parse("[severity]\nZ9 = \"deny\"\n").is_err());
        assert!(LintConfig::parse("[wat]\n").is_err());
        assert!(LintConfig::parse("[[allow]]\nrule = \"Z9\"\npath = \"x\"\n").is_err());
    }

    #[test]
    fn default_matches_rule_ids() {
        let cfg = LintConfig::default();
        for rule in RULE_IDS {
            assert_eq!(cfg.severity_of(rule), Severity::Deny);
        }
        assert!(cfg.is_deterministic("sim"));
        assert!(!cfg.is_deterministic("bench"));
        assert!(cfg.checks_unwrap("cli"));
        assert!(cfg.f2_hot("crates/sim/src/shard.rs"));
        assert!(!cfg.f2_hot("crates/cli/src/commands.rs"));
        assert!(cfg.f3_hot("crates/sim/src/shard.rs"));
        assert!(!cfg.f3_hot("crates/cli/src/commands.rs"));
        cfg.validate_layering().expect("default layering is a DAG");
    }

    #[test]
    fn module_scopes_match_on_segment_boundaries() {
        assert!(module_in_scope("sp_sim", "sp_sim"));
        assert!(module_in_scope("sp_sim", "sp_sim::engine"));
        assert!(!module_in_scope("sp_sim", "sp_simx"));
        assert!(!module_in_scope("sp_sim", "sp_simx::engine"));
        assert!(!module_in_scope("sp_sim::engine", "sp_sim"));
    }

    #[test]
    fn layering_table_parses_and_replaces_default() {
        let cfg = LintConfig::parse("[layering]\na = [\"b\"]\nb = []\n").unwrap();
        assert_eq!(cfg.layering.len(), 2);
        assert_eq!(cfg.layering_deps("a").unwrap(), ["b".to_string()]);
        assert!(cfg.layering_deps("sim").is_none(), "default replaced");
    }

    #[test]
    fn layering_cycles_are_reported_with_the_full_path() {
        let err =
            LintConfig::parse("[layering]\na = [\"b\"]\nb = [\"c\"]\nc = [\"a\"]\n").unwrap_err();
        assert!(err.contains("cycle"), "{err}");
        assert!(
            err.contains("a -> b -> c -> a")
                || err.contains("b -> c -> a -> b")
                || err.contains("c -> a -> b -> c"),
            "{err}"
        );
    }

    #[test]
    fn layering_undeclared_dep_and_duplicates_are_errors() {
        let err = LintConfig::parse("[layering]\na = [\"ghost\"]\n").unwrap_err();
        assert!(err.contains("undeclared"), "{err}");
        let err = LintConfig::parse("[layering]\na = []\na = []\n").unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn p1_and_r1_sections_parse() {
        let cfg = LintConfig::parse(
            "[rules.P1]\npure_modules = [\"sp_model\"]\nallow_modules = [\"sp_model::dbg\"]\n\
             [rules.R1]\nrng_types = [\"SmallRng\"]\nseed_roots = [\"sp_stats\"]\n\
             shard_modules = [\"sp_sim::shard\"]\n",
        )
        .unwrap();
        assert!(cfg.p1_pure("sp_model::queue"));
        assert!(!cfg.p1_pure("sp_model::dbg"));
        assert!(!cfg.p1_pure("sp_sim"));
        assert!(cfg.r1_seed_root("sp_stats::rng"));
        assert!(!cfg.r1_seed_root("sp_sim::shard"));
        assert!(cfg.r1_shard("sp_sim::shard"));
        assert_eq!(cfg.r1_rng_types, ["SmallRng".to_string()]);
    }

    #[test]
    fn unknown_keys_in_new_sections_are_errors_with_line() {
        let err = LintConfig::parse("[rules.P1]\nbogus = [\"x\"]\n").unwrap_err();
        assert!(err.contains("lint.toml:2"), "{err}");
        let err = LintConfig::parse("[rules.R1]\nnope = \"x\"\n").unwrap_err();
        assert!(err.contains("lint.toml:2"), "{err}");
    }
}
