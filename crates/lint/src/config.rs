//! `lint.toml` — rule severities, rule parameters, and the allowlist
//! baseline, parsed with a hand-rolled TOML-subset reader (the
//! workspace has no TOML dependency and the offline `crates/compat`
//! policy rules out adding one).
//!
//! The supported subset: `[table]` headers, `[[array_of_tables]]`
//! headers, `key = "string"`, `key = ["a", "b"]`, `key = true|false`,
//! comments, and blank lines. That covers the whole configuration
//! surface; anything else is a hard error so a typo cannot silently
//! disable a rule.
//!
//! Policy note: `[[allow]]` entries are the *baseline* — each MUST
//! carry a non-empty `justification` string, and the self-lint test
//! asserts there are none for the determinism rules D1–D3 in
//! deterministic crates. The per-rule parameters (e.g. the D2
//! observability-module allowlist) are rule *definition*, not
//! baseline: they say where wall-clock reads are architecturally
//! legal, not which known violations are tolerated.

use crate::diag::Severity;

/// One `[[allow]]` baseline entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id the entry suppresses (`D1`…`F2`).
    pub rule: String,
    /// Repo-relative path prefix the entry covers (a file, or a
    /// directory ending in `/`).
    pub path: String,
    /// Why the suppression is sound. Mandatory and non-empty.
    pub justification: String,
}

/// Parsed lint configuration.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crates under the bitwise-determinism contract (D1, F1, and the
    /// `#![forbid(unsafe_code)]` audit of S1 apply here).
    pub deterministic_crates: Vec<String>,
    /// Crates where S2 (`unwrap`/`expect`) applies.
    pub unwrap_crates: Vec<String>,
    /// Per-rule severities, indexed by rule id.
    pub severity: Vec<(String, Severity)>,
    /// Severity for the `expect()` half of S2 (the `unwrap()` half
    /// uses the S2 severity). Documented-invariant `expect`s are a
    /// distinct, lower-risk class than `unwrap`, so they get their
    /// own dial.
    pub s2_expect: Severity,
    /// Path prefixes where D2 wall-clock/env reads are legal (the
    /// observability modules, benches, and the CLI).
    pub d2_allow_paths: Vec<String>,
    /// Path prefixes under the shared-nothing contract (F2): lock and
    /// atomic shared-state primitives are banned there — simulator hot
    /// paths communicate only through bounded mpsc channels drained at
    /// tick barriers (DESIGN.md §15).
    pub f2_hot_paths: Vec<String>,
    /// Path prefixes under the supervised-channel contract (F3): bare
    /// `.unwrap()`/`.expect()` on inter-shard channel `send`/`recv`
    /// calls is banned there — a dead peer shard must surface as a
    /// supervised `ShardFailure`, not a cascading panic (DESIGN.md
    /// §17).
    pub f3_hot_paths: Vec<String>,
    /// Baseline suppressions.
    pub allow: Vec<AllowEntry>,
}

/// Every rule id, in report order.
pub const RULE_IDS: [&str; 8] = ["D1", "D2", "D3", "S1", "S2", "F1", "F2", "F3"];

impl Default for LintConfig {
    /// The built-in policy, identical to the checked-in `lint.toml`
    /// minus the baseline. Fixture tests run against this so they
    /// exercise the rules, not the workspace baseline.
    fn default() -> Self {
        LintConfig {
            deterministic_crates: ["sim", "model", "graph", "stats", "design", "core"]
                .map(String::from)
                .to_vec(),
            unwrap_crates: ["sim", "model", "graph", "stats", "design", "core", "cli"]
                .map(String::from)
                .to_vec(),
            severity: RULE_IDS
                .iter()
                .map(|r| (r.to_string(), Severity::Deny))
                .collect(),
            s2_expect: Severity::Warn,
            d2_allow_paths: vec![
                "crates/sim/src/metrics.rs".into(),
                "crates/bench/".into(),
                "crates/cli/".into(),
                "crates/lint/".into(),
            ],
            f2_hot_paths: vec!["crates/sim/src/".into()],
            f3_hot_paths: vec!["crates/sim/src/".into()],
            allow: Vec::new(),
        }
    }
}

impl LintConfig {
    /// Effective severity of a rule.
    pub fn severity_of(&self, rule: &str) -> Severity {
        self.severity
            .iter()
            .find(|(r, _)| r == rule)
            .map(|&(_, s)| s)
            .unwrap_or(Severity::Deny)
    }

    /// Whether `crate_name` is under the determinism contract.
    pub fn is_deterministic(&self, crate_name: &str) -> bool {
        self.deterministic_crates.iter().any(|c| c == crate_name)
    }

    /// Whether S2 applies to `crate_name`.
    pub fn checks_unwrap(&self, crate_name: &str) -> bool {
        self.unwrap_crates.iter().any(|c| c == crate_name)
    }

    /// Whether `path` is an allowlisted D2 observability location.
    pub fn d2_allowed(&self, path: &str) -> bool {
        self.d2_allow_paths
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }

    /// Whether `path` is under the F2 shared-nothing contract.
    pub fn f2_hot(&self, path: &str) -> bool {
        self.f2_hot_paths
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }

    /// Whether `path` is under the F3 supervised-channel contract.
    pub fn f3_hot(&self, path: &str) -> bool {
        self.f3_hot_paths
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }

    /// The `[[allow]]` entry suppressing `rule` at `path`, if any.
    pub fn allow_entry(&self, rule: &str, path: &str) -> Option<&AllowEntry> {
        self.allow
            .iter()
            .find(|a| a.rule == rule && path.starts_with(a.path.as_str()))
    }

    /// Baseline entries for a rule (used by the self-lint test to
    /// assert the D1–D3 baseline is empty).
    pub fn baseline_for(&self, rule: &str) -> Vec<&AllowEntry> {
        self.allow.iter().filter(|a| a.rule == rule).collect()
    }

    /// Parses `lint.toml` text. Errors name the line.
    pub fn parse(text: &str) -> Result<LintConfig, String> {
        let mut cfg = LintConfig {
            allow: Vec::new(),
            ..LintConfig::default()
        };
        // Reset list-valued policy fields so the file is authoritative
        // when it sets them; absent keys keep the defaults above.
        let mut section = String::new();
        let mut current_allow: Option<AllowEntry> = None;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                if name.trim() != "allow" {
                    return Err(format!(
                        "lint.toml:{lineno}: unknown array of tables [[{}]]",
                        name.trim()
                    ));
                }
                if let Some(entry) = current_allow.take() {
                    cfg.push_allow(entry, lineno)?;
                }
                current_allow = Some(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    justification: String::new(),
                });
                section = "allow".into();
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                if let Some(entry) = current_allow.take() {
                    cfg.push_allow(entry, lineno)?;
                }
                section = name.trim().to_string();
                match section.as_str() {
                    "lint" | "severity" | "rules.D2" | "rules.S2" | "rules.F2" | "rules.F3" => {}
                    other => {
                        return Err(format!("lint.toml:{lineno}: unknown table [{other}]"));
                    }
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("lint.toml:{lineno}: expected `key = value`"))?;
            let key = key.trim();
            let value = value.trim();
            match (section.as_str(), key) {
                ("lint", "deterministic_crates") => {
                    cfg.deterministic_crates = parse_string_array(value, lineno)?;
                }
                ("lint", "unwrap_crates") => {
                    cfg.unwrap_crates = parse_string_array(value, lineno)?;
                }
                ("severity", rule) => {
                    if !RULE_IDS.contains(&rule) {
                        return Err(format!("lint.toml:{lineno}: unknown rule id {rule:?}"));
                    }
                    let sev = Severity::parse(&parse_string(value, lineno)?)
                        .map_err(|e| format!("lint.toml:{lineno}: {e}"))?;
                    if let Some(slot) = cfg.severity.iter_mut().find(|(r, _)| r == rule) {
                        slot.1 = sev;
                    }
                }
                ("rules.D2", "allow_paths") => {
                    cfg.d2_allow_paths = parse_string_array(value, lineno)?;
                }
                ("rules.F2", "hot_paths") => {
                    cfg.f2_hot_paths = parse_string_array(value, lineno)?;
                }
                ("rules.F3", "hot_paths") => {
                    cfg.f3_hot_paths = parse_string_array(value, lineno)?;
                }
                ("rules.S2", "expect") => {
                    cfg.s2_expect = Severity::parse(&parse_string(value, lineno)?)
                        .map_err(|e| format!("lint.toml:{lineno}: {e}"))?;
                }
                ("allow", "rule") => {
                    let entry = current_allow
                        .as_mut()
                        .ok_or_else(|| format!("lint.toml:{lineno}: key outside [[allow]]"))?;
                    entry.rule = parse_string(value, lineno)?;
                    if !RULE_IDS.contains(&entry.rule.as_str()) {
                        return Err(format!(
                            "lint.toml:{lineno}: unknown rule id {:?} in [[allow]]",
                            entry.rule
                        ));
                    }
                }
                ("allow", "path") => {
                    current_allow
                        .as_mut()
                        .ok_or_else(|| format!("lint.toml:{lineno}: key outside [[allow]]"))?
                        .path = parse_string(value, lineno)?;
                }
                ("allow", "justification") => {
                    current_allow
                        .as_mut()
                        .ok_or_else(|| format!("lint.toml:{lineno}: key outside [[allow]]"))?
                        .justification = parse_string(value, lineno)?;
                }
                (sec, key) => {
                    return Err(format!(
                        "lint.toml:{lineno}: unknown key {key:?} in section [{sec}]"
                    ));
                }
            }
        }
        if let Some(entry) = current_allow.take() {
            let last = text.lines().count();
            cfg.push_allow(entry, last)?;
        }
        Ok(cfg)
    }

    fn push_allow(&mut self, entry: AllowEntry, lineno: usize) -> Result<(), String> {
        if entry.rule.is_empty() || entry.path.is_empty() {
            return Err(format!(
                "lint.toml:{lineno}: [[allow]] entry needs both `rule` and `path`"
            ));
        }
        if entry.justification.trim().is_empty() {
            return Err(format!(
                "lint.toml:{lineno}: [[allow]] for {} at {} is missing a justification \
                 (every baseline suppression must say why it is sound)",
                entry.rule, entry.path
            ));
        }
        self.allow.push(entry);
        Ok(())
    }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("lint.toml:{lineno}: expected a quoted string, got {value}"))?;
    Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("lint.toml:{lineno}: expected an array, got {value}"))?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_string(s, lineno))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_shape() {
        let cfg = LintConfig::parse(
            r#"
# comment
[lint]
deterministic_crates = ["sim", "model"] # trailing comment
unwrap_crates = ["sim"]

[severity]
D1 = "deny"
S2 = "warn"

[rules.D2]
allow_paths = ["crates/bench/"]

[rules.S2]
expect = "allow"

[rules.F2]
hot_paths = ["crates/sim/src/shard.rs"]

[rules.F3]
hot_paths = ["crates/sim/src/shard.rs"]

[[allow]]
rule = "S1"
path = "crates/bench/src/bin/repro_bench.rs"
justification = "GlobalAlloc impl, audited"
"#,
        )
        .unwrap();
        assert_eq!(cfg.deterministic_crates, ["sim", "model"]);
        assert_eq!(cfg.severity_of("S2"), Severity::Warn);
        assert_eq!(cfg.severity_of("D1"), Severity::Deny);
        assert_eq!(cfg.s2_expect, Severity::Allow);
        assert!(cfg.d2_allowed("crates/bench/src/lib.rs"));
        assert!(!cfg.d2_allowed("crates/sim/src/engine.rs"));
        assert!(cfg.f2_hot("crates/sim/src/shard.rs"));
        assert!(!cfg.f2_hot("crates/sim/src/engine.rs"));
        assert!(cfg.f3_hot("crates/sim/src/shard.rs"));
        assert!(!cfg.f3_hot("crates/sim/src/engine.rs"));
        assert!(cfg
            .allow_entry("S1", "crates/bench/src/bin/repro_bench.rs")
            .is_some());
        assert!(cfg.allow_entry("S1", "crates/sim/src/engine.rs").is_none());
    }

    #[test]
    fn justification_is_mandatory() {
        let err = LintConfig::parse(
            "[[allow]]\nrule = \"S2\"\npath = \"crates/sim/\"\njustification = \"  \"\n",
        )
        .unwrap_err();
        assert!(err.contains("justification"), "{err}");
        let err =
            LintConfig::parse("[[allow]]\nrule = \"S2\"\npath = \"crates/sim/\"\n").unwrap_err();
        assert!(err.contains("justification"), "{err}");
    }

    #[test]
    fn unknown_keys_and_rules_are_hard_errors() {
        assert!(LintConfig::parse("[lint]\nbogus = \"x\"\n").is_err());
        assert!(LintConfig::parse("[severity]\nZ9 = \"deny\"\n").is_err());
        assert!(LintConfig::parse("[wat]\n").is_err());
        assert!(LintConfig::parse("[[allow]]\nrule = \"Z9\"\npath = \"x\"\n").is_err());
    }

    #[test]
    fn default_matches_rule_ids() {
        let cfg = LintConfig::default();
        for rule in RULE_IDS {
            assert_eq!(cfg.severity_of(rule), Severity::Deny);
        }
        assert!(cfg.is_deterministic("sim"));
        assert!(!cfg.is_deterministic("bench"));
        assert!(cfg.checks_unwrap("cli"));
        assert!(cfg.f2_hot("crates/sim/src/shard.rs"));
        assert!(!cfg.f2_hot("crates/cli/src/commands.rs"));
        assert!(cfg.f3_hot("crates/sim/src/shard.rs"));
        assert!(!cfg.f3_hot("crates/cli/src/commands.rs"));
    }
}
