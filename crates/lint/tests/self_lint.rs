//! Workspace self-lint: the checked-in tree must satisfy its own
//! static contract, and the determinism baseline must be empty.
//!
//! This is the same invocation CI performs (`sp_lint --json`), run as
//! a test so `cargo test` alone catches a regression before the gate.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

#[test]
fn workspace_has_zero_deny_findings() {
    let root = workspace_root();
    let cfg = sp_lint::load_config(root).expect("lint.toml parses");
    let report = sp_lint::lint_workspace(root, &cfg).expect("workspace lints");
    let denies: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == sp_lint::Severity::Deny)
        .collect();
    assert!(
        denies.is_empty(),
        "workspace must self-lint clean, got:\n{}",
        report.render_human(false)
    );
}

#[test]
fn determinism_baseline_is_empty() {
    // D1–D3, F3, and the graph rules (L1 layering, P1 purity, R1 RNG
    // lineage) get fixed, not suppressed: no [[allow]] entry may
    // target them. (S1/S2/F2 suppressions are permitted in principle —
    // with justification — and the F2 baseline currently carries the
    // barrier watchdog's observability-only progress heartbeats.)
    let cfg = sp_lint::load_config(workspace_root()).expect("lint.toml parses");
    for rule in ["D1", "D2", "D3", "F3", "L1", "P1", "R1"] {
        let entries = cfg.baseline_for(rule);
        assert!(
            entries.is_empty(),
            "determinism rule {rule} must have an empty baseline, got {entries:?}"
        );
    }
}

#[test]
fn suppressed_findings_all_carry_justifications() {
    // Structural invariant of the baseline mechanism: anything the
    // workspace run suppresses maps to an [[allow]] entry whose
    // justification parsed non-empty (config::push_allow enforces the
    // non-empty half; this pins the mapping end-to-end).
    let root = workspace_root();
    let cfg = sp_lint::load_config(root).expect("lint.toml parses");
    let report = sp_lint::lint_workspace(root, &cfg).expect("workspace lints");
    for f in &report.suppressed {
        let entry = cfg
            .allow_entry(f.rule, &f.path)
            .expect("suppressed finding must map to an allow entry");
        assert!(!entry.justification.trim().is_empty());
    }
}

#[test]
fn json_report_is_byte_stable_across_runs_and_orderings() {
    // The CI artifact contract: two runs over the same tree produce
    // byte-identical JSON, and the bytes do not depend on the order
    // the walker discovered files in.
    let root = workspace_root();
    let cfg = sp_lint::load_config(root).expect("lint.toml parses");
    let first = sp_lint::lint_workspace(root, &cfg)
        .expect("workspace lints")
        .render_json();
    let second = sp_lint::lint_workspace(root, &cfg)
        .expect("workspace lints")
        .render_json();
    assert_eq!(first, second, "same tree, same bytes");

    // Reverse the discovery order explicitly via lint_sources.
    let files = sp_lint::walk::workspace_files(root).expect("walk");
    let mut units: Vec<sp_lint::SourceUnit> = files
        .iter()
        .map(|f| sp_lint::SourceUnit {
            ctx: f.ctx.clone(),
            src: std::fs::read_to_string(&f.full_path).expect("readable"),
        })
        .collect();
    units.reverse();
    let reversed = sp_lint::lint_sources(units, &cfg).render_json();
    assert_eq!(
        first, reversed,
        "report bytes must not depend on file-discovery order"
    );
}

#[test]
fn sarif_report_is_byte_stable() {
    let root = workspace_root();
    let cfg = sp_lint::load_config(root).expect("lint.toml parses");
    let a = sp_lint::sarif::render_sarif(
        &sp_lint::lint_workspace(root, &cfg).expect("workspace lints"),
        &cfg,
    );
    let b = sp_lint::sarif::render_sarif(
        &sp_lint::lint_workspace(root, &cfg).expect("workspace lints"),
        &cfg,
    );
    assert_eq!(a, b, "SARIF must be byte-stable across runs");
}
