//! D2 clean fixture: no wall-clock or environment reads. Durations
//! arrive as parameters (measured by an allowlisted observability
//! module); consuming an `Instant` someone else captured is fine —
//! only `Instant::now()` itself is a clock read.

use std::time::{Duration, Instant};

pub fn nanos_between(start: Instant, end: Instant) -> u128 {
    end.duration_since(start).as_nanos()
}

pub fn budget_exhausted(spent: Duration, budget: Duration) -> bool {
    spent >= budget
}
