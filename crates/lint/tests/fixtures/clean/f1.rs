//! F1 clean fixture: deterministic reductions. Sequential float sums
//! are fine (fixed order), parallel integer sums are fine
//! (associative), and the workspace idiom for parallel float work —
//! reduce per-shard, then fold shard results in shard order — never
//! calls a float turbofish reduction on a parallel iterator.

pub fn sequential_sum(v: &[f64]) -> f64 {
    v.iter().sum::<f64>()
}

pub fn parallel_count(v: &[u64]) -> u64 {
    v.par_iter().map(|_| 1u64).sum::<u64>()
}

pub fn sharded_sum(shards: &[Vec<f64>]) -> f64 {
    let partials: Vec<f64> = shards
        .iter()
        .map(|s| s.iter().sum::<f64>())
        .collect();
    partials.iter().sum::<f64>()
}
