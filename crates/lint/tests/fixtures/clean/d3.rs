//! D3 clean fixture: every stream derives from the run seed. This is
//! the workspace idiom — `seed_from_u64` plus named substreams — so a
//! run is fully specified by (seed, plan).

pub fn substream(seed: u64, label: &str) -> SpRng {
    let mut h = seed;
    for b in label.bytes() {
        h = h.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
    }
    SpRng::seed_from_u64(h)
}
