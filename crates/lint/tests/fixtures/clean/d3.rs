//! D3 clean fixture: every stream derives from the run seed. This is
//! the workspace idiom — one `SpRng::seed_from_u64` at the seed root,
//! `.split(stream)` everywhere below it — so a run is fully specified
//! by (seed, plan) and the lineage of any stream is auditable.

pub fn substream(parent: &mut SpRng, stream: u64) -> SpRng {
    parent.split(stream)
}

pub fn peer_stream(parent: &mut SpRng, peer: u64) -> SpRng {
    parent.split(0x5eed_0000 ^ peer)
}
