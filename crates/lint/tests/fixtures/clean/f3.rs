//! F3 clean fixture: the supervised idiom. Every inter-shard channel
//! operation maps its error to a value naming the dead link, so the
//! supervisor can report which shard failed at which tick instead of
//! letting the disconnect cascade as a panic.

use std::sync::mpsc::{Receiver, SyncSender};

/// A peer shard's channel went down: the supervisor's diagnosable
/// failure value.
pub struct LinkDown {
    pub shard: usize,
}

pub fn send_batch(tx: &SyncSender<u64>, shard: usize, batch: u64) -> Result<(), LinkDown> {
    tx.send(batch).map_err(|_| LinkDown { shard })
}

pub fn recv_batch(rx: &Receiver<u64>, shard: usize) -> Result<u64, LinkDown> {
    rx.recv().map_err(|_| LinkDown { shard })
}
