//! D1 clean fixture: ordered containers everywhere. BTreeMap/BTreeSet
//! iterate in key order, so drains feeding metrics are reproducible.

use std::collections::{BTreeMap, BTreeSet};

pub fn build_index(keys: &[u32]) -> BTreeMap<u32, usize> {
    let mut index = BTreeMap::new();
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    for (i, &k) in keys.iter().enumerate() {
        if seen.insert(k) {
            index.insert(k, i);
        }
    }
    index
}
