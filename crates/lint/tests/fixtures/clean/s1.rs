//! S1 clean fixture: every `unsafe` is announced by a SAFETY comment
//! — same-line, directly above, or anywhere in the contiguous
//! multi-line comment block above.

pub fn read_first(v: &[u8]) -> u8 {
    debug_assert!(!v.is_empty());
    // SAFETY: the debug_assert above documents the non-empty
    // invariant; callers are audited to pass at least one byte.
    unsafe { *v.get_unchecked(0) }
}

pub struct Wrapper(pub *const u8);

// SAFETY: the pointer is never dereferenced; Wrapper is an opaque
// token, so moving or sharing it across threads cannot race.
unsafe impl Send for Wrapper {}
unsafe impl Sync for Wrapper {} // SAFETY: see the Send impl above.
