//! L1 clean fixture: the graph layer may depend on `sp_stats` (a
//! declared edge), on itself, and on plain identifiers that merely
//! start with `sp_` without being crate paths.

use sp_stats::SpRng;

pub fn degree_stream(parent: &mut SpRng) -> SpRng {
    let sp_load = 3u64; // a local, not a crate path
    parent.split(sp_load)
}
