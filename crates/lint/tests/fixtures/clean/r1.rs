//! R1 clean fixture: the shard derives its stream from the parent via
//! `.split(stream)` (no new root), and the inter-shard channel carries
//! plain data — RNG state never crosses the barrier.

use sp_stats::SpRng;

pub struct Batch {
    pub tick: u64,
    pub payload: Vec<u64>,
}

pub struct ShardLink {
    pub tx: SyncSender<Batch>,
}

pub fn shard_stream(parent: &mut SpRng, shard: u64) -> SpRng {
    parent.split(shard)
}
