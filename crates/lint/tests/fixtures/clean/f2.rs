//! F2 clean fixture: the sanctioned shared-nothing idiom. Each shard
//! accumulates into counters it owns, cross-shard data moves through
//! bounded mpsc batches at tick barriers, and the driver folds the
//! per-shard results in ascending shard order.

use std::sync::mpsc::{Receiver, SyncSender};

pub struct ShardTally {
    delivered: u64,
}

pub struct BarrierLinks {
    pub tx: Vec<SyncSender<u64>>,
    pub rx: Vec<Receiver<u64>>,
}

pub fn fold_in_shard_order(parts: Vec<ShardTally>) -> u64 {
    parts.iter().map(|p| p.delivered).sum::<u64>()
}
