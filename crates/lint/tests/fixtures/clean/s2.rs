//! S2 clean fixture: fallible paths propagate instead of panicking.
//! `unwrap_or` / `ok_or` / `?` never trip the rule, and `.unwrap()`
//! inside #[cfg(test)] is exempt.

pub fn first(v: &[u32]) -> Result<u32, String> {
    v.first().copied().ok_or_else(|| "empty slice".to_string())
}

pub fn first_or_zero(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_exempt() {
        assert_eq!(first(&[7]).unwrap(), 7);
    }
}
