//! P1 clean fixture: a pure-core module computes and returns; the
//! caller (CLI, bench, or the metrics layer) owns every byte that
//! leaves the process. Formatting into a String is fine — only the
//! process-boundary I/O surfaces are banned.

pub fn summarize(hits: u64, total: u64) -> String {
    let rate = hits as f64 / total.max(1) as f64;
    format!("{hits}/{total} ({rate:.3})")
}
