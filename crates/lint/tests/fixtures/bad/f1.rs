//! F1 fixture: order-sensitive float reduction over a parallel
//! iterator. Float addition is not associative, so the reduction
//! order — and therefore the bits of the result — depends on thread
//! scheduling. The finding anchors at the reduction call, not the
//! par_iter source.
//! Expected findings: F1 at lines 9, 16.

pub fn total_bandwidth(loads: &[f64]) -> f64 {
    loads.par_iter().map(|l| l * 8.0).sum::<f64>()
}

pub fn product_of(scales: &[f32]) -> f32 {
    scales
        .par_iter()
        .copied()
        .product::<f32>()
}
