//! D1 fixture: default-hashed collections in a deterministic crate.
//! Expected findings: D1 at lines 4 (x2), 6, 7, 9 (x2).

use std::collections::{HashMap, HashSet};

pub fn build_index(keys: &[u32]) -> HashMap<u32, usize> {
    let mut index = HashMap::new();
    for (i, &k) in keys.iter().enumerate() {
        let mut seen: HashSet<u32> = HashSet::new();
        seen.insert(k);
        index.insert(k, i);
    }
    index
}
