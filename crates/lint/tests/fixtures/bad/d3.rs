//! D3 fixture: unseeded randomness. Flagged everywhere — even inside
//! #[cfg(test)] — because an entropy-seeded run can never be replayed.
//! Expected findings: D3 at lines 6, 11, 18.

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn fresh_stream() -> SmallRng {
    SmallRng::from_entropy()
}

#[cfg(test)]
mod tests {
    #[test]
    fn uses_os_entropy() {
        let mut rng = OsRng;
        let _ = rng.next_u64();
    }
}
