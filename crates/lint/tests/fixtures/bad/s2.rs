//! S2 fixture: panic paths in library code. `.unwrap()` is denied;
//! `.expect()` is reported at the configured (default warn) level.
//! The #[cfg(test)] module at the bottom must NOT be flagged.
//! Expected findings: S2 deny at line 7, S2 warn at line 11.

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn last(v: &[u32]) -> u32 {
    *v.last().expect("caller guarantees a non-empty slice")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
