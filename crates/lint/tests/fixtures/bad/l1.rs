//! L1 fixture: crate-layering violations, linted as if it lived at
//! `crates/graph/src/l1.rs`. The graph layer sits *below* the
//! simulator in the declared DAG, so reaching up into `sp_sim` closes
//! the cycle sp_graph -> sp_sim -> sp_graph; `sp_quux` is not in the
//! [layering] table at all.
//! Expected findings: L1 at lines 8, 11.

use sp_sim::engine::Simulation;

pub fn wrong_direction(sim: &Simulation) -> usize {
    sp_quux::widget_count(sim)
}
