//! S1 fixture: `unsafe` without a SAFETY comment. The lib-root
//! forbid(unsafe_code) audit is exercised separately (this fixture is
//! linted as a non-root file).
//! Expected findings: S1 at lines 7, 14.

pub fn read_first(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}

pub struct Wrapper(pub *const u8);

// A comment directly above that is NOT a SAFETY comment does not
// document the block.
unsafe impl Send for Wrapper {}

// SAFETY: the pointer is never dereferenced after construction; the
// wrapper is only used as an opaque token, so sharing it across
// threads cannot race.
unsafe impl Sync for Wrapper {}
