//! R1 fixture: RNG-lineage breaks, linted as if it lived at
//! `crates/sim/src/shard/r1.rs` — inside the inter-shard boundary
//! scope and *not* a declared seed root.
//! Expected findings: R1 at lines 10 (root outside seed roots),
//! 14 (foreign RNG type), 18 (RNG state in an inter-shard channel).

use sp_stats::SpRng;

pub fn local_rng(tick: u64) -> SpRng {
    SpRng::seed_from_u64(tick)
}

pub fn foreign_rng() -> SmallRng {
    SmallRng::seed_from_u64(7)
}

pub struct ShardLink {
    pub tx: SyncSender<(u64, SpRng)>,
}
