//! F3 fixture: unsupervised channel unwraps in the supervised
//! shared-nothing engine. When a peer shard dies its channels
//! disconnect; a bare unwrap/expect turns that one diagnosable
//! failure into a cascading panic across every surviving reactor
//! instead of a named ShardFailure. The calls sit in a test region
//! deliberately: S2 cannot see them there, F3 still must.
//! Expected findings: F3 at lines 12, 13, 15.

#[cfg(test)]
mod tests {
    fn drive(tx: std::sync::mpsc::SyncSender<u64>, rx: std::sync::mpsc::Receiver<u64>) {
        tx.send(1).unwrap();
        let batch = rx.recv().unwrap();
        let next = rx
            .try_recv()
            .expect("peer shard still alive");
        let _ = (batch, next);
    }
}
