//! F2 fixture: shared-state primitives in a shared-nothing simulator
//! hot path. The sharded engine's determinism proof requires shards
//! to own their state outright and exchange data only at tick
//! barriers; a lock or atomic counter lets thread scheduling leak
//! into the results.
//! Expected findings: F2 at lines 8, 8, 11, 12.

use std::sync::{atomic::AtomicU64, Mutex};

pub struct SharedTally {
    delivered: AtomicU64,
    slowest_shard: Mutex<(u32, u64)>,
}
