//! D2 fixture: wall-clock and environment reads outside the
//! observability allowlist.
//! Expected findings: D2 at lines 6, 11, 18.

pub fn elapsed_nanos() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos()
}

pub fn epoch_secs() -> u64 {
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}

pub fn threads() -> usize {
    std::env::var("SP_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
