//! P1 fixture: I/O in a pure-core module, linted as if it lived at
//! `crates/model/src/p1.rs` (`sp_model` is a pure scope). Both the
//! imports and the inline uses are flagged; results must leave
//! through the CLI / bench / metrics layers instead.
//! Expected findings: P1 at lines 7, 8, 11, 12, 13.

use std::fs;
use std::io::stdin;

pub fn leaky(expected: &str) -> bool {
    println!("checking {expected}");
    let bytes = std::fs::read("model.bin");
    let sock = std::net::TcpStream::connect("127.0.0.1:9");
    bytes.is_ok() && sock.is_ok()
}
