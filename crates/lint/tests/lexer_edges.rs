//! Lexer edge cases with exact-token assertions: raw strings, nested
//! block comments, byte strings, and `#[cfg(test)]` span tracking.
//! These pin the properties every rule depends on — literals are
//! opaque single tokens, comments survive but are skippable, and
//! line/col bookkeeping stays exact across multi-line tokens.

use sp_lint::lexer::{tokenize, Tok, TokKind};
use sp_lint::parser::TestRegions;

fn kinds(toks: &[Tok]) -> Vec<(TokKind, &str, u32, u32)> {
    toks.iter()
        .map(|t| (t.kind, t.text.as_str(), t.line, t.col))
        .collect()
}

#[test]
fn raw_strings_are_opaque_and_track_lines() {
    // A raw string containing a fake unwrap() and an embedded quote;
    // the `after` ident must land on line 3 with an exact column.
    let src = "let s = r#\"a \"quoted\" .unwrap()\nline two\"#;\nafter";
    let toks = tokenize(src);
    assert_eq!(
        kinds(&toks),
        vec![
            (TokKind::Ident, "let", 1, 1),
            (TokKind::Ident, "s", 1, 5),
            (TokKind::Punct('='), "=", 1, 7),
            (TokKind::Str, "a \"quoted\" .unwrap()\nline two", 1, 9),
            (TokKind::Punct(';'), ";", 2, 11),
            (TokKind::Ident, "after", 3, 1),
        ]
    );
}

#[test]
fn multi_hash_raw_strings_respect_their_delimiter() {
    // `"#` inside an r##-string does not terminate it.
    let src = "r##\"has \"# inside\"##; x";
    let toks = tokenize(src);
    assert_eq!(toks[0].kind, TokKind::Str);
    assert_eq!(toks[0].text, "has \"# inside");
    assert!(toks.iter().any(|t| t.is_ident("x")));
}

#[test]
fn nested_block_comments_stay_one_token() {
    let src = "before /* outer /* inner */ still comment */ after";
    let toks = tokenize(src);
    assert_eq!(
        kinds(&toks),
        vec![
            (TokKind::Ident, "before", 1, 1),
            (
                TokKind::BlockComment,
                "/* outer /* inner */ still comment */",
                1,
                8
            ),
            (TokKind::Ident, "after", 1, 46),
        ]
    );
    assert!(toks[1].is_comment(), "block comment is skippable");
}

#[test]
fn block_comment_line_tracking_survives_newlines() {
    let src = "/* line1\nline2\nline3 */ token";
    let toks = tokenize(src);
    assert_eq!(toks[0].kind, TokKind::BlockComment);
    assert_eq!(toks[0].line, 1);
    let token = toks.iter().find(|t| t.is_ident("token")).expect("token");
    assert_eq!((token.line, token.col), (3, 10));
}

#[test]
fn byte_strings_and_byte_chars_are_literals() {
    let src = "let b = b\"bytes .unwrap()\"; let c = b'\\n'; let r = br#\"raw bytes\"#;";
    let toks = tokenize(src);
    let strs: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
    assert_eq!(strs.len(), 2, "b\"…\" and br#\"…\"# both lex as Str");
    assert_eq!(strs[0].text, "bytes .unwrap()");
    assert_eq!(strs[1].text, "raw bytes");
    assert!(
        toks.iter()
            .any(|t| t.kind == TokKind::Char && t.text == "\\n"),
        "byte char lexes as Char: {toks:?}"
    );
    // The unwrap inside the byte string never surfaces as an ident.
    assert!(toks.iter().all(|t| !t.is_ident("unwrap")));
}

#[test]
fn lifetimes_are_not_char_literals() {
    let toks = tokenize("fn f<'a>(x: &'a str) -> &'a str { x }");
    let lifetimes: Vec<&Tok> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .collect();
    assert_eq!(lifetimes.len(), 3);
    assert!(lifetimes.iter().all(|t| t.text == "a"));
    assert!(toks.iter().all(|t| t.kind != TokKind::Char));
}

#[test]
fn cfg_test_spans_cover_exactly_the_test_module() {
    let src = "\
pub fn real() -> u64 {
    compute()
}

#[cfg(test)]
mod tests {
    #[test]
    fn check() {
        assert_eq!(super::real(), 7);
    }
}

pub fn also_real() {}
";
    let toks = tokenize(src);
    let regions = TestRegions::compute(&toks);
    let ident_at = |name: &str| {
        toks.iter()
            .position(|t| t.is_ident(name))
            .unwrap_or_else(|| panic!("ident {name} present"))
    };
    assert!(!regions.contains(ident_at("real")), "real code is outside");
    assert!(
        regions.contains(ident_at("assert_eq")),
        "test body is inside"
    );
    assert!(
        regions.contains(ident_at("check")),
        "test fn name is inside"
    );
    assert!(
        !regions.contains(ident_at("also_real")),
        "code after the closing brace is outside"
    );
}

#[test]
fn cfg_test_attribute_with_spacing_still_tracked() {
    // Attribute spelling variants: spaces inside the attribute and an
    // inline #[cfg(test)] fn (no mod wrapper).
    let src = "#[ cfg ( test ) ]\nfn only_in_tests() { helper() }\nfn outside() {}";
    let toks = tokenize(src);
    let regions = TestRegions::compute(&toks);
    let helper = toks
        .iter()
        .position(|t| t.is_ident("helper"))
        .expect("helper");
    let outside = toks
        .iter()
        .position(|t| t.is_ident("outside"))
        .expect("outside");
    assert!(regions.contains(helper));
    assert!(!regions.contains(outside));
}

#[test]
fn cfg_not_test_is_not_a_test_region_here_either() {
    let src = "#[cfg(not(test))]\nfn prod() { body() }";
    let toks = tokenize(src);
    let regions = TestRegions::compute(&toks);
    let body = toks.iter().position(|t| t.is_ident("body")).expect("body");
    assert!(!regions.contains(body), "cfg(not(test)) is production code");
}
