//! Fixture corpus: every rule exercised in both directions.
//!
//! Each `fixtures/bad/<rule>.rs` file must be flagged by exactly the
//! expected (rule, line) multiset, and each `fixtures/clean/<rule>.rs`
//! — the compliant idiom for the same construct — must produce zero
//! findings. Fixtures are linted under a synthetic deterministic-crate
//! context (`crates/sim/src/<name>.rs`) with the built-in default
//! policy, so the assertions pin rule behavior independent of the
//! workspace baseline. The workspace walker skips `tests/fixtures/`,
//! so the bad files never reach the real gate.

use std::path::PathBuf;

use sp_lint::{lint_source, FileContext, LintConfig, Severity};

fn fixture(kind: &str, name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(kind)
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

fn lint_fixture(kind: &str, name: &str) -> Vec<sp_lint::Finding> {
    let src = fixture(kind, name);
    let ctx = FileContext {
        path: format!("crates/sim/src/{name}"),
        crate_name: "sim".to_string(),
        is_test_file: false,
        is_lib_root: false,
    };
    lint_source(&src, &ctx, &LintConfig::default())
}

/// Asserts the finding multiset is exactly `expected` (rule, line).
fn assert_findings(name: &str, expected: &[(&str, u32)]) {
    let got: Vec<(String, u32)> = lint_fixture("bad", name)
        .iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect();
    let want: Vec<(String, u32)> = expected.iter().map(|&(r, l)| (r.to_string(), l)).collect();
    assert_eq!(got, want, "fixture bad/{name}: finding mismatch");
}

#[test]
fn bad_fixtures_flag_expected_lines() {
    assert_findings(
        "d1.rs",
        &[
            ("D1", 4),
            ("D1", 4),
            ("D1", 6),
            ("D1", 7),
            ("D1", 9),
            ("D1", 9),
        ],
    );
    assert_findings("d2.rs", &[("D2", 6), ("D2", 11), ("D2", 18)]);
    assert_findings("d3.rs", &[("D3", 6), ("D3", 11), ("D3", 18)]);
    assert_findings("s1.rs", &[("S1", 7), ("S1", 14)]);
    assert_findings("s2.rs", &[("S2", 7), ("S2", 11)]);
    assert_findings("f1.rs", &[("F1", 9), ("F1", 16)]);
    assert_findings("f2.rs", &[("F2", 8), ("F2", 8), ("F2", 11), ("F2", 12)]);
    assert_findings("f3.rs", &[("F3", 12), ("F3", 13), ("F3", 15)]);
}

#[test]
fn s2_fixture_severities_split_unwrap_deny_expect_warn() {
    let findings = lint_fixture("bad", "s2.rs");
    let unwrap = findings
        .iter()
        .find(|f| f.line == 7)
        .expect("unwrap finding");
    let expect = findings
        .iter()
        .find(|f| f.line == 11)
        .expect("expect finding");
    assert_eq!(unwrap.severity, Severity::Deny);
    assert_eq!(expect.severity, Severity::Warn);
}

#[test]
fn clean_fixtures_produce_zero_findings() {
    for name in [
        "d1.rs", "d2.rs", "d3.rs", "s1.rs", "s2.rs", "f1.rs", "f2.rs", "f3.rs",
    ] {
        let findings = lint_fixture("clean", name);
        assert!(
            findings.is_empty(),
            "fixture clean/{name} should be clean, got: {findings:?}"
        );
    }
}

#[test]
fn every_rule_is_exercised_in_both_directions() {
    // Guards the corpus itself: if a rule id ever gains no fixture,
    // this fails rather than silently losing coverage.
    let mut rules_hit: Vec<&str> = Vec::new();
    for name in [
        "d1.rs", "d2.rs", "d3.rs", "s1.rs", "s2.rs", "f1.rs", "f2.rs", "f3.rs",
    ] {
        for f in lint_fixture("bad", name) {
            if !rules_hit.contains(&f.rule) {
                rules_hit.push(f.rule);
            }
        }
    }
    rules_hit.sort_unstable();
    let mut want: Vec<&str> = sp_lint::RULE_IDS.to_vec();
    want.sort_unstable();
    assert_eq!(rules_hit, want, "every rule must have a bad fixture");
}
