//! Fixture corpus: every rule exercised in both directions.
//!
//! Each `fixtures/bad/<rule>.rs` file must be flagged by exactly the
//! expected (rule, line) multiset, and each `fixtures/clean/<rule>.rs`
//! — the compliant idiom for the same construct — must produce zero
//! findings. Fixtures are linted under a synthetic workspace context
//! (most under `crates/sim/src/<name>.rs`; the graph rules pick the
//! layer that makes the hazard real — see [`fixture_ctx`]) with the
//! built-in default policy, so the assertions pin rule behavior
//! independent of the workspace baseline. The workspace walker skips
//! `tests/fixtures/`, so the bad files never reach the real gate.

use std::path::PathBuf;

use sp_lint::{lint_source, FileContext, LintConfig, Severity};

fn fixture(kind: &str, name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(kind)
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

/// Synthetic context per fixture. The graph-rule fixtures sit in the
/// crate/module where the hazard is real: L1 in the graph layer (so
/// reaching up into `sp_sim` is a back-edge), P1 in a pure-core
/// module, R1 inside the inter-shard boundary scope.
fn fixture_ctx(name: &str) -> FileContext {
    let (path, crate_name) = match name {
        "l1.rs" => ("crates/graph/src/l1.rs", "graph"),
        "p1.rs" => ("crates/model/src/p1.rs", "model"),
        "r1.rs" => ("crates/sim/src/shard/r1.rs", "sim"),
        other => return fixture_ctx_sim(other),
    };
    FileContext {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        is_test_file: false,
        is_lib_root: false,
    }
}

fn fixture_ctx_sim(name: &str) -> FileContext {
    FileContext {
        path: format!("crates/sim/src/{name}"),
        crate_name: "sim".to_string(),
        is_test_file: false,
        is_lib_root: false,
    }
}

fn lint_fixture(kind: &str, name: &str) -> Vec<sp_lint::Finding> {
    let src = fixture(kind, name);
    lint_source(&src, &fixture_ctx(name), &LintConfig::default())
}

const ALL_FIXTURES: [&str; 11] = [
    "d1.rs", "d2.rs", "d3.rs", "s1.rs", "s2.rs", "f1.rs", "f2.rs", "f3.rs", "l1.rs", "p1.rs",
    "r1.rs",
];

/// Asserts the finding multiset is exactly `expected` (rule, line).
fn assert_findings(name: &str, expected: &[(&str, u32)]) {
    let got: Vec<(String, u32)> = lint_fixture("bad", name)
        .iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect();
    let want: Vec<(String, u32)> = expected.iter().map(|&(r, l)| (r.to_string(), l)).collect();
    assert_eq!(got, want, "fixture bad/{name}: finding mismatch");
}

#[test]
fn bad_fixtures_flag_expected_lines() {
    assert_findings(
        "d1.rs",
        &[
            ("D1", 4),
            ("D1", 4),
            ("D1", 6),
            ("D1", 7),
            ("D1", 9),
            ("D1", 9),
        ],
    );
    assert_findings("d2.rs", &[("D2", 6), ("D2", 11), ("D2", 18)]);
    // Line 11 (`SmallRng::from_entropy()`) is both unseeded (D3) and a
    // foreign RNG type (R1); the R1 finding anchors to the type name,
    // one column to the left of D3's `from_entropy`.
    assert_findings("d3.rs", &[("D3", 6), ("R1", 11), ("D3", 11), ("D3", 18)]);
    assert_findings("s1.rs", &[("S1", 7), ("S1", 14)]);
    assert_findings("s2.rs", &[("S2", 7), ("S2", 11)]);
    assert_findings("f1.rs", &[("F1", 9), ("F1", 16)]);
    assert_findings("f2.rs", &[("F2", 8), ("F2", 8), ("F2", 11), ("F2", 12)]);
    assert_findings("f3.rs", &[("F3", 12), ("F3", 13), ("F3", 15)]);
    assert_findings("l1.rs", &[("L1", 8), ("L1", 11)]);
    assert_findings(
        "p1.rs",
        &[("P1", 7), ("P1", 8), ("P1", 11), ("P1", 12), ("P1", 13)],
    );
    assert_findings("r1.rs", &[("R1", 10), ("R1", 14), ("R1", 18)]);
}

#[test]
fn s2_fixture_severities_split_unwrap_deny_expect_warn() {
    let findings = lint_fixture("bad", "s2.rs");
    let unwrap = findings
        .iter()
        .find(|f| f.line == 7)
        .expect("unwrap finding");
    let expect = findings
        .iter()
        .find(|f| f.line == 11)
        .expect("expect finding");
    assert_eq!(unwrap.severity, Severity::Deny);
    assert_eq!(expect.severity, Severity::Warn);
}

#[test]
fn l1_back_edge_carries_the_full_cycle() {
    let findings = lint_fixture("bad", "l1.rs");
    let back_edge = findings
        .iter()
        .find(|f| f.rule == "L1" && f.line == 8)
        .expect("sp_sim back-edge finding");
    assert_eq!(
        back_edge.import_chain,
        ["sp_graph", "sp_sim", "sp_graph"],
        "back-edge must name the cycle it would close"
    );
    assert!(
        back_edge.message.contains("sp_graph -> sp_sim -> sp_graph"),
        "cycle must be in the message: {}",
        back_edge.message
    );
    assert_eq!(back_edge.module_path, "sp_graph::l1");
}

#[test]
fn r1_root_outside_seed_roots_names_the_function_and_lineage() {
    let findings = lint_fixture("bad", "r1.rs");
    let root = findings
        .iter()
        .find(|f| f.rule == "R1" && f.line == 10)
        .expect("seed root finding");
    assert!(root.message.contains("fn `local_rng`"), "{}", root.message);
    assert_eq!(root.module_path, "sp_sim::shard::r1");
    assert_eq!(
        root.import_chain.first().map(String::as_str),
        Some("sp_sim::shard::r1"),
        "lineage chain starts at the offending module"
    );
}

#[test]
fn clean_fixtures_produce_zero_findings() {
    for name in ALL_FIXTURES {
        let findings = lint_fixture("clean", name);
        assert!(
            findings.is_empty(),
            "fixture clean/{name} should be clean, got: {findings:?}"
        );
    }
}

#[test]
fn every_rule_is_exercised_in_both_directions() {
    // Guards the corpus itself: if a rule id ever gains no fixture,
    // this fails rather than silently losing coverage.
    let mut rules_hit: Vec<&str> = Vec::new();
    for name in ALL_FIXTURES {
        for f in lint_fixture("bad", name) {
            if !rules_hit.contains(&f.rule) {
                rules_hit.push(f.rule);
            }
        }
    }
    rules_hit.sort_unstable();
    let mut want: Vec<&str> = sp_lint::RULE_IDS.to_vec();
    want.sort_unstable();
    assert_eq!(rules_hit, want, "every rule must have a bad fixture");
}
