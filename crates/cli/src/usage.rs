//! Declarative command usage, rendered through one formatter.
//!
//! Every subcommand describes itself as a [`CommandUsage`] table, and
//! *all* user-facing usage text — the global `spnet help`, each
//! `spnet <command> --help`, and the hint appended to unknown-option
//! errors — renders through the single formatter here. Spacing,
//! option alignment, and the exit-code policy therefore cannot drift
//! between commands:
//!
//! * requested help (`spnet help`, `spnet <command> --help`) prints to
//!   stdout and exits 0;
//! * malformed invocations (unknown options, bad values) surface as
//!   [`CliError::Usage`] — a single `error: …` line on stderr, exit 2 —
//!   now always pointing at the command's own `--help`.

use crate::args::Args;
use crate::error::CliError;

/// One subcommand's declarative usage table.
pub struct CommandUsage {
    /// Subcommand name as typed (`simulate`).
    pub name: &'static str,
    /// One-line description; first line is reused by the global help.
    pub summary: &'static str,
    /// `("--flag VALUE", "description")` pairs. Multi-line
    /// descriptions continue on indented lines.
    pub options: &'static [(&'static str, &'static str)],
    /// Whether the command also accepts the shared topology options.
    pub topology: bool,
    /// Example invocations.
    pub examples: &'static [&'static str],
}

/// The topology options shared by the model-driven commands.
pub const TOPOLOGY_OPTIONS: &[(&str, &str)] = &[
    ("--users N", "total peers (default 10000)"),
    ("--cluster N", "peers per cluster (default 10)"),
    ("--outdegree D", "mean overlay degree (default 3.1)"),
    ("--ttl T", "query TTL (default 7)"),
    ("--redundancy", "2-redundant super-peers"),
    ("--k K", "arbitrary redundancy factor"),
    ("--strong", "strongly connected overlay"),
    (
        "--graph FAMILY",
        "power-law | strong | erdos-renyi | regular",
    ),
    (
        "--query-rate R",
        "queries per user per second (default 9.26e-3)",
    ),
];

/// The `--threads` row shared by every command that fans trials out
/// over workers; listed per-command (not in the topology table)
/// because `design` and `epl` do not accept it.
pub const THREADS_OPTION: (&str, &str) = (
    "--threads N",
    "worker-thread budget (default: SP_THREADS env or one per core;\nmust be >= 1 when given; never changes the reported numbers)",
);

/// Extracts the option key from its rendered spelling:
/// `"--metrics-json P"` → `"metrics-json"`.
fn key(flag: &'static str) -> &'static str {
    flag.trim_start_matches("--")
        .split(' ')
        .next()
        .expect("split yields at least one part")
}

/// Appends an aligned two-column option table (the one place option
/// layout is decided).
fn push_options(out: &mut String, options: &[(&'static str, &'static str)]) {
    let width = options
        .iter()
        .map(|(f, _)| f.len())
        .max()
        .unwrap_or(0)
        .max(14);
    for (flag, help) in options {
        for (i, line) in help.lines().enumerate() {
            if i == 0 {
                out.push_str(&format!("  {flag:<width$}  {line}\n"));
            } else {
                out.push_str(&format!("  {:<width$}  {line}\n", ""));
            }
        }
    }
}

impl CommandUsage {
    /// The option keys this command accepts (own + shared topology).
    pub fn known_keys(&self) -> Vec<&'static str> {
        let mut keys: Vec<&'static str> = self.options.iter().map(|(f, _)| key(f)).collect();
        if self.topology {
            keys.extend(TOPOLOGY_OPTIONS.iter().map(|(f, _)| key(f)));
        }
        keys
    }

    /// Renders this command's full usage text.
    pub fn render(&self) -> String {
        let mut s = format!("USAGE: spnet {} [options]\n\n{}\n", self.name, self.summary);
        if !self.options.is_empty() {
            s.push_str("\nOPTIONS:\n");
            push_options(&mut s, self.options);
        }
        if self.topology {
            s.push_str("\nTOPOLOGY OPTIONS (shared):\n");
            push_options(&mut s, TOPOLOGY_OPTIONS);
        }
        if !self.examples.is_empty() {
            s.push_str("\nEXAMPLES:\n");
            for e in self.examples {
                s.push_str(&format!("  {e}\n"));
            }
        }
        s.trim_end().to_string()
    }

    /// The shared entry gate every subcommand runs first: `--help`
    /// returns the rendered usage (stdout, exit 0); unknown options
    /// become exit-2 usage errors pointing at this command's help.
    pub fn gate(&self, args: &Args) -> Result<Option<String>, CliError> {
        if args.flag("help") || args.get("help").is_some() {
            return Ok(Some(self.render()));
        }
        args.ensure_known(&self.known_keys()).map_err(|e| {
            CliError::Usage(format!("{e}\nrun `spnet {} --help` for usage", self.name))
        })?;
        Ok(None)
    }
}

/// Renders the global `spnet help` from the same formatter the
/// per-command help uses.
pub fn global_help(commands: &[&CommandUsage]) -> String {
    let mut s = String::from(
        "spnet — design and evaluate super-peer networks\n\
         (Yang & Garcia-Molina, 'Designing a Super-Peer Network', ICDE 2003)\n\n\
         USAGE: spnet <command> [options]\n\n\
         COMMANDS:\n",
    );
    let rows: Vec<(&'static str, &'static str)> = commands
        .iter()
        .map(|c| (c.name, c.summary.lines().next().expect("non-empty summary")))
        .collect();
    push_options(&mut s, &rows);
    s.push_str("  help            this text\n");
    s.push_str("\nTOPOLOGY OPTIONS (evaluate/design/simulate/sweep):\n");
    push_options(&mut s, TOPOLOGY_OPTIONS);
    s.push_str(
        "\nRun `spnet <command> --help` for that command's options and examples.\n\
         Exit codes: 0 success, 1 runtime failure, 2 usage error.",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    static DEMO: CommandUsage = CommandUsage {
        name: "demo",
        summary: "does demo things",
        options: &[
            ("--count N", "how many (default 32)"),
            ("--report P", "write the JSON report to P\nsecond line"),
        ],
        topology: false,
        examples: &["spnet demo --count 4"],
    };

    fn args(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).expect("parse")
    }

    #[test]
    fn keys_are_derived_from_spellings() {
        assert_eq!(DEMO.known_keys(), ["count", "report"]);
    }

    #[test]
    fn render_aligns_and_includes_examples() {
        let text = DEMO.render();
        assert!(text.starts_with("USAGE: spnet demo"));
        assert!(text.contains("--count N"));
        assert!(text.contains("second line"));
        assert!(text.contains("spnet demo --count 4"));
    }

    #[test]
    fn gate_returns_help_and_rejects_unknowns() {
        assert!(DEMO
            .gate(&args(&["--help"]))
            .expect("ok")
            .expect("help text")
            .contains("USAGE: spnet demo"));
        assert_eq!(DEMO.gate(&args(&["--count", "4"])).expect("ok"), None);
        let err = DEMO.gate(&args(&["--bogus", "1"])).expect_err("unknown");
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("spnet demo --help"));
    }

    #[test]
    fn global_help_lists_commands_and_exit_codes() {
        let text = global_help(&[&DEMO]);
        assert!(text.contains("demo"));
        assert!(text.contains("does demo things"));
        assert!(text.contains("Exit codes"));
    }
}
