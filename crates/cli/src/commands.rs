//! The `spnet` subcommands.

use sp_core::design::procedure::EvalOptions;
use sp_core::design::{design, DesignConstraints, DesignGoals};
use sp_core::experiments::{cluster_sweep, epl_table, Fidelity};
use sp_core::model::config::{Config, GraphType};
use sp_core::model::faults::FaultPlan;
use sp_core::model::overload::OverloadPolicy;
use sp_core::model::repair::RepairPolicy;
use sp_core::model::scenario::ScenarioPlan;
use sp_core::model::snapshot::{SnapReader, ENGINE_FAST, ENGINE_REFERENCE, ENGINE_SCALE};
use sp_core::model::trials::{resolve_thread_budget, TrialOptions};
use sp_core::report::{ci, sci, Table};
use sp_core::sim::campaign::{run_campaign_with, CampaignOptions, CampaignResume};
use sp_core::sim::engine::{RawMetrics, SimOptions, Simulation};
use sp_core::sim::reference::ReferenceSimulation;
use sp_core::sim::scenario::{
    crash_storm, crash_storm_trials, reliability, steady_trials, SimReport, SimTrialOptions,
};
use sp_core::sim::shard::{ScaleDiag, ScaleMetrics, ScaleOptions, ShardFailure, ShardedSimulation};
use sp_core::{Load, NetworkBuilder};

use crate::args::{ArgError, Args};
use crate::error::CliError;
use crate::usage::{self, CommandUsage, THREADS_OPTION};

/// Parses a positive worker count — the shared validation for
/// `--threads`, `--shards`, and `SP_THREADS`. An explicit `0` is
/// rejected rather than treated as "one per core": the documented
/// default when the option is omitted is already one worker per core,
/// so a literal zero is always a mistake (it used to fall back
/// silently).
fn positive_count(what: &str, value: &str) -> Result<usize, ArgError> {
    match value.parse::<usize>() {
        Ok(0) => Err(ArgError(format!(
            "{what}: must be at least 1 (omit it for one worker per core)"
        ))),
        Ok(n) => Ok(n),
        Err(_) => Err(ArgError(format!("{what}: cannot parse {value:?}"))),
    }
}

/// Thread-budget resolution from its two inputs, split out pure so the
/// `SP_THREADS` paths are testable without mutating process state.
fn threads_from_parts(flag: Option<&str>, env: Option<String>) -> Result<usize, ArgError> {
    if let Some(t) = flag {
        return positive_count("--threads", t);
    }
    match env {
        Some(v) => positive_count("SP_THREADS", &v),
        None => Ok(0),
    }
}

/// Resolves the worker-thread budget: `--threads N` wins, then the
/// `SP_THREADS` environment variable, then 0 (one worker per core).
/// The budget only controls parallelism — never the reported numbers.
/// Zero and non-numeric values are usage errors, not silent defaults.
fn threads_from(args: &Args) -> Result<usize, ArgError> {
    threads_from_parts(args.get("threads"), std::env::var("SP_THREADS").ok())
}

/// Resolves `--shards N` for the scale engine: absent means one shard
/// per available core; an explicit value must be a positive integer
/// (the engine clamps to the cluster count). Like `--threads`, the
/// shard count never changes the reported numbers.
fn shards_from(args: &Args) -> Result<usize, ArgError> {
    match args.get("shards") {
        None => Ok(resolve_thread_budget(0)),
        Some(s) => positive_count("--shards", s),
    }
}

/// Parses `--inject-shard-panic S:T` into the scale engine's panic
/// injection hook: shard index `S` panics at tick `T`.
fn shard_panic_from(args: &Args) -> Result<Option<(usize, u32)>, ArgError> {
    let Some(spec) = args.get("inject-shard-panic") else {
        return Ok(None);
    };
    let parsed = spec.split_once(':').and_then(|(s, t)| {
        Some((
            s.trim().parse::<usize>().ok()?,
            t.trim().parse::<u32>().ok()?,
        ))
    });
    parsed.map(Some).ok_or_else(|| {
        ArgError(format!(
            "--inject-shard-panic: expected SHARD:TICK (two integers), got {spec:?}"
        ))
    })
}

/// Validates the checkpoint options shared by the fast and scale
/// single-run paths: `--checkpoint-every` must be a positive number
/// and `--checkpoint-dir` is inert without it.
fn checkpoint_every_from(args: &Args) -> Result<Option<f64>, CliError> {
    let every = match args.get("checkpoint-every") {
        None => {
            if args.get("checkpoint-dir").is_some() {
                return Err(CliError::Usage(
                    "--checkpoint-dir only names where --checkpoint-every writes; \
                     add --checkpoint-every N"
                        .into(),
                ));
            }
            return Ok(None);
        }
        Some(v) => v
            .parse::<f64>()
            .map_err(|_| CliError::Usage(format!("--checkpoint-every: cannot parse {v:?}")))?,
    };
    if every <= 0.0 || !every.is_finite() {
        return Err(CliError::Usage(
            "--checkpoint-every: must be a positive interval".into(),
        ));
    }
    Ok(Some(every))
}

/// Writes sequence-numbered `checkpoint-NNNNNN.snap` files, creating
/// the directory on first use.
fn write_checkpoint(dir: &str, seq: usize, data: &[u8]) -> Result<std::path::PathBuf, CliError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| CliError::Runtime(format!("--checkpoint-dir: cannot create {dir:?}: {e}")))?;
    let path = std::path::Path::new(dir).join(format!("checkpoint-{seq:06}.snap"));
    std::fs::write(&path, data)
        .map_err(|e| CliError::Runtime(format!("cannot write checkpoint {path:?}: {e}")))?;
    Ok(path)
}

/// Maps a supervised shard failure to exit 1 with the full diagnostic
/// block (which shard, which tick, why, and every shard's progress).
fn shard_failure(f: ShardFailure) -> CliError {
    CliError::Runtime(format!("{f}\n{}", f.diagnostic()))
}

/// Resolves `--repair POLICY` (default `off`). Repair only engages on
/// fault-injected crashes, so the flag is inert without `--faults` or
/// `--crash-storm`.
fn repair_from(args: &Args) -> Result<RepairPolicy, ArgError> {
    match args.get("repair") {
        None => Ok(RepairPolicy::Off),
        Some(s) => RepairPolicy::parse(s).ok_or_else(|| {
            ArgError(format!(
                "--repair: unknown policy {s:?} (expected off, promote, or promote+partner)"
            ))
        }),
    }
}

/// Resolves the overload-control options: `--overload` picks the
/// capacity-sized preset, `--overload-policy P` reads an explicit
/// [`OverloadPolicy`] JSON. `None` means the subsystem stays disabled
/// (bitwise inert). Setting both, or naming a policy file that parses
/// to the empty policy, is a usage error (exit 2).
fn overload_from(args: &Args, cfg: &Config) -> Result<Option<OverloadPolicy>, CliError> {
    let preset = args.flag("overload");
    let path = args.get("overload-policy");
    if preset && path.is_some() {
        return Err(CliError::Usage(
            "--overload selects the capacity-sized preset; drop it when \
             --overload-policy names an explicit policy"
                .into(),
        ));
    }
    let Some(path) = path else {
        return Ok(preset.then(|| OverloadPolicy::sized_for(cfg)));
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Runtime(format!("--overload-policy: cannot read {path:?}: {e}")))?;
    let policy = OverloadPolicy::from_json(&text)
        .map_err(|e| CliError::Usage(format!("--overload-policy: {path}: {e}")))?;
    if policy.is_empty() {
        return Err(CliError::Usage(format!(
            "--overload-policy: {path} is the empty policy (service_rate 0); \
             drop the flag to run without overload control"
        )));
    }
    Ok(Some(policy))
}

/// Builds a [`Config`] from the shared topology options.
fn config_from(args: &Args) -> Result<Config, ArgError> {
    let mut b = NetworkBuilder::new()
        .users(args.get_or("users", 10_000usize)?)
        .cluster_size(args.get_or("cluster", 10usize)?)
        .avg_outdegree(args.get_or("outdegree", 3.1f64)?)
        .ttl(args.get_or("ttl", 7u16)?)
        .query_rate(args.get_or("query-rate", 9.26e-3f64)?);
    if args.flag("redundancy") {
        b = b.redundancy(true);
    }
    if let Some(k) = args.get("k") {
        let k: usize = k
            .parse()
            .map_err(|_| ArgError(format!("--k: cannot parse {k:?}")))?;
        b = b.redundancy_k(k);
    }
    if args.flag("strong") {
        b = b.strongly_connected();
    }
    let mut cfg = b.config();
    if let Some(family) = args.get("graph") {
        cfg.graph_type = match family {
            "power-law" | "plod" => GraphType::PowerLaw,
            "strong" | "complete" => GraphType::StronglyConnected,
            "erdos-renyi" | "er" => GraphType::ErdosRenyi,
            "regular" => GraphType::RandomRegular,
            other => {
                return Err(ArgError(format!(
                    "--graph: unknown family {other:?} (power-law, strong, erdos-renyi, regular)"
                )))
            }
        };
    }
    cfg.validate()
        .map_err(|e| ArgError(format!("invalid configuration: {e}")))?;
    Ok(cfg)
}

/// Usage tables for every subcommand. All help and usage-error text
/// renders through `crate::usage`'s one formatter; these tables are
/// also the commands' known-option sets, so help and validation cannot
/// drift apart.
static EVALUATE_USAGE: CommandUsage = CommandUsage {
    name: "evaluate",
    summary: "mean-value load analysis of one configuration",
    options: &[
        ("--trials N", "independent graph samples (default 5)"),
        ("--seed N", "base RNG seed (default 42)"),
        (
            "--sources N",
            "query sources sampled per trial (default: all)",
        ),
        THREADS_OPTION,
    ],
    topology: true,
    examples: &["spnet evaluate --users 10000 --cluster 10 --redundancy"],
};

static DESIGN_USAGE: CommandUsage = CommandUsage {
    name: "design",
    summary: "run the global design procedure under load constraints",
    options: &[
        ("--reach N", "desired reach, peers (default users/4)"),
        (
            "--max-up B",
            "max super-peer outgoing bw, bps (default 100000)",
        ),
        (
            "--max-down B",
            "max super-peer incoming bw, bps (default 100000)",
        ),
        (
            "--max-proc H",
            "max super-peer processing, Hz (default 10e6)",
        ),
        ("--max-conns N", "max super-peer connections (default 100)"),
        ("--allow-redundancy", "let the procedure pick k-redundancy"),
        ("--seed N", "evaluation RNG seed (default 42)"),
    ],
    topology: true,
    examples: &["spnet design --users 20000 --reach 3000 --max-up 100000 --max-conns 100"],
};

static SIMULATE_USAGE: CommandUsage = CommandUsage {
    name: "simulate",
    summary: "event-driven simulation (steady state, reliability, faults, scenarios)",
    options: &[
        ("--duration S", "simulated seconds (default 3600)"),
        ("--seed N", "run RNG seed (default 42)"),
        ("--lifespan S", "mean peer lifespan, seconds"),
        (
            "--trials N",
            "independent trials; N > 1 reports mean ± 95% CI, sharded\nover --threads workers with bitwise-identical results at\nany thread count",
        ),
        THREADS_OPTION,
        (
            "--metrics-json P",
            "write the engine run manifest (event counts, queue high\nwater, per-event wall histograms) to P",
        ),
        ("--reliability", "k=1 vs k=2 availability comparison"),
        (
            "--faults PLAN",
            "inject the FaultPlan JSON at PLAN (crashes, message\nloss/delay, partitions, flaky partners) into a single run",
        ),
        (
            "--fault-seed N",
            "reseed only the fault RNG stream (default: --seed); never\nperturbs the churn/query schedule",
        ),
        (
            "--scenario PLAN",
            "drive a single run from the ScenarioPlan JSON at PLAN\n(phased churn bursts, mass leaves, splits, flash crowds,\ncapacity classes, embedded faults + repair policy)",
        ),
        (
            "--scenario-seed N",
            "reseed only the scenario RNG stream (default: --seed)",
        ),
        (
            "--crash-storm",
            "canonical crash-storm plan against k=1 vs k=2\n(with --trials N: mean ± 95% CI over N storms)",
        ),
        (
            "--repair P",
            "self-healing policy for injected crashes:\noff | promote | promote+partner (default off)",
        ),
        (
            "--overload",
            "enable super-peer overload control with the capacity-sized\npreset policy (bounded work queues, per-client admission\nbudgets, load shedding, brownout degradation, re-homing);\nworks with the churn engines and --scale",
        ),
        (
            "--overload-policy P",
            "drive overload control from the OverloadPolicy JSON at P\ninstead of the preset (conflicts with --overload)",
        ),
        (
            "--scale",
            "shared-nothing sharded scale engine (million-peer\noverlays; TTL defaults to 3; supports --faults)",
        ),
        (
            "--shards N",
            "reactor count for --scale (default one per core); metrics\nare bitwise identical at any shard count",
        ),
        (
            "--checkpoint-every N",
            "write a restorable checkpoint every N simulated seconds\n(or every N ticks with --scale) into --checkpoint-dir",
        ),
        (
            "--checkpoint-dir D",
            "directory for checkpoint-NNNNNN.snap files\n(default checkpoints; created on demand)",
        ),
        (
            "--resume SNAP",
            "restore the checkpoint at SNAP and run it to completion;\nthe engine, workload, and seeds all come from the snapshot,\nand the finished metrics are bitwise identical to the\nuninterrupted run",
        ),
        (
            "--barrier-timeout-ticks N",
            "--scale watchdog: fail the run (exit 1, named shard\ndiagnostics) if a tick barrier stalls longer than N×100ms\n(default 0 = no watchdog)",
        ),
        (
            "--inject-shard-panic S:T",
            "--scale test hook: panic shard reactor S at tick T to\nexercise the supervisor path",
        ),
    ],
    topology: true,
    examples: &[
        "spnet simulate --users 1000 --lifespan 600 --reliability",
        "spnet simulate --users 1000 --trials 8 --threads 4",
        "spnet simulate --users 1000 --faults plan.json --metrics-json run.json",
        "spnet simulate --users 1000 --scenario scenario.json --seed 7",
        "spnet simulate --users 1000 --overload --duration 7200",
        "spnet simulate --users 1000000 --scale --shards 8 --duration 300",
        "spnet simulate --users 200000 --scale --checkpoint-every 60 --checkpoint-dir ckpt",
        "spnet simulate --resume ckpt/checkpoint-000002.snap --metrics-json out.json",
    ],
};

static CAMPAIGN_USAGE: CommandUsage = CommandUsage {
    name: "campaign",
    summary: "differential scenario fuzz campaign (the standing CI gate)\nGenerates seeded ScenarioPlans and runs each through both the fast\nand the reference engine under a bitwise oracle; any divergence\nwrites a self-contained reproducer JSON and exits 1.",
    options: &[
        ("--count N", "scenarios to generate and run (default 32)"),
        (
            "--seed N",
            "campaign seed; every scenario derives its plan and RNG\nstreams from it (default 42)",
        ),
        THREADS_OPTION,
        ("--users N", "peers per scenario overlay (default 120)"),
        ("--cluster N", "peers per cluster (default 12)"),
        ("--duration S", "simulated seconds per scenario (default 1200)"),
        ("--report P", "write the machine-readable campaign report to P"),
        (
            "--repro-dir D",
            "directory for divergence reproducer JSONs and quarantine\nartifacts (default campaign_repros; created on demand)",
        ),
        (
            "--resume REPORT",
            "resume a previous campaign from its --report JSON: green\nscenarios are skipped (their fingerprints re-fold), divergent\nand quarantined ones re-run; campaign options come from the\nreport, so --count/--seed/--users/--cluster/--duration\nconflict",
        ),
        (
            "--inject-panic N",
            "test hook: panic scenario N inside the worker to exercise\nthe quarantine path",
        ),
    ],
    topology: false,
    examples: &[
        "spnet campaign --count 32 --seed 42",
        "spnet campaign --count 500 --seed 7 --threads 8 --report campaign.json",
        "spnet campaign --resume campaign.json --report campaign.json",
    ],
};

static SWEEP_USAGE: CommandUsage = CommandUsage {
    name: "sweep",
    summary: "cluster-size sweep of one system",
    options: &[
        (
            "--clusters LIST",
            "cluster sizes, comma-separated (default 1,10,100,1000)",
        ),
        ("--trials N", "graph samples per cell (default 3)"),
        ("--seed N", "base RNG seed (default 42)"),
        (
            "--sources N",
            "query sources sampled per trial (default 800)",
        ),
        THREADS_OPTION,
    ],
    topology: true,
    examples: &["spnet sweep --users 5000 --strong --ttl 1 --clusters 1,10,100,1000"],
};

static EPL_USAGE: CommandUsage = CommandUsage {
    name: "epl",
    summary: "expected-path-length lookup table (Figure 9)",
    options: &[
        (
            "--outdegrees LIST",
            "outdegrees, comma-separated (default 3.1,10,20,40)",
        ),
        (
            "--reaches LIST",
            "reach targets, comma-separated (default 50,200,500)",
        ),
        ("--nodes N", "graph size per sample (default 1000)"),
        ("--samples N", "graph samples per cell (default 40)"),
        ("--seed N", "base RNG seed (default 42)"),
    ],
    topology: false,
    examples: &["spnet epl --outdegrees 3.1,10,20 --reaches 100,500"],
};

static LINT_USAGE: CommandUsage = CommandUsage {
    name: "lint",
    summary: "sp-lint determinism-and-safety static analysis (CI gate)",
    options: &[
        ("--root DIR", "workspace root to scan (default .)"),
        (
            "--config FILE",
            "lint policy file (default <root>/lint.toml)",
        ),
        ("--json P", "also write machine-readable findings to P"),
        (
            "--sarif P",
            "also write a SARIF 2.1.0 report to P (code scanning)",
        ),
        ("--warnings", "list warn-level findings (always counted)"),
    ],
    topology: false,
    examples: &["spnet lint --json lint_report.json --sarif lint.sarif --warnings"],
};

/// `spnet evaluate` — mean-value analysis of one configuration.
pub fn evaluate(args: &Args) -> Result<String, CliError> {
    if let Some(text) = EVALUATE_USAGE.gate(args)? {
        return Ok(text);
    }
    let cfg = config_from(args)?;
    let trials = args.get_or("trials", 5usize)?;
    let seed = args.get_or("seed", 42u64)?;
    let sources = args.get_or("sources", 0usize)?;
    let builder = NetworkBuilder::from_config(cfg.clone());
    let s = builder.evaluate_with(&TrialOptions {
        trials,
        seed,
        max_sources: (sources > 0).then_some(sources),
        threads: threads_from(args)?,
    });
    let mut t = Table::new(vec!["Metric", "Mean ± 95% CI"]);
    t.row(vec!["aggregate in bw (bps)".into(), ci(&s.agg_in_bw)]);
    t.row(vec!["aggregate out bw (bps)".into(), ci(&s.agg_out_bw)]);
    t.row(vec!["aggregate proc (Hz)".into(), ci(&s.agg_proc)]);
    t.row(vec!["super-peer in bw (bps)".into(), ci(&s.sp_in_bw)]);
    t.row(vec!["super-peer out bw (bps)".into(), ci(&s.sp_out_bw)]);
    t.row(vec!["super-peer proc (Hz)".into(), ci(&s.sp_proc)]);
    t.row(vec!["client in bw (bps)".into(), ci(&s.client_in_bw)]);
    t.row(vec!["client out bw (bps)".into(), ci(&s.client_out_bw)]);
    t.row(vec!["results per query".into(), ci(&s.results)]);
    t.row(vec!["expected path length".into(), ci(&s.epl)]);
    t.row(vec!["reach (clusters)".into(), ci(&s.reach_clusters)]);
    Ok(format!(
        "configuration: {} users, cluster {}, k {}, outdegree {}, TTL {}\n\n{}",
        cfg.graph_size,
        cfg.cluster_size,
        cfg.redundancy_k,
        cfg.avg_outdegree,
        cfg.ttl,
        t.render()
    ))
}

/// `spnet design` — the Figure 10 global design procedure.
pub fn design_cmd(args: &Args) -> Result<String, CliError> {
    if let Some(text) = DESIGN_USAGE.gate(args)? {
        return Ok(text);
    }
    let users = args.get_or("users", 10_000usize)?;
    let goals = DesignGoals {
        num_users: users,
        desired_reach_peers: args.get_or("reach", users / 4)?,
    };
    let constraints = DesignConstraints {
        max_sp_load: Load {
            in_bw: args.get_or("max-down", 100_000.0f64)?,
            out_bw: args.get_or("max-up", 100_000.0f64)?,
            proc: args.get_or("max-proc", 10e6f64)?,
        },
        max_connections: args.get_or("max-conns", 100.0f64)?,
        allow_redundancy: args.flag("allow-redundancy"),
    };
    let eval = EvalOptions {
        seed: args.get_or("seed", 42u64)?,
        ..Default::default()
    };
    match design(&goals, &constraints, &Config::default(), &eval) {
        Ok(out) => {
            let mut s = String::from("design-procedure log:\n");
            for step in &out.steps {
                s.push_str("  - ");
                s.push_str(&step.description);
                s.push('\n');
            }
            s.push_str(&format!(
                "\nrecommended: cluster {}, outdegree {:.0}, TTL {}, k {}\n\
                 achieved reach: {:.0} peers\n\
                 super-peer load: in {} bps, out {} bps, proc {} Hz\n",
                out.config.cluster_size,
                out.config.avg_outdegree,
                out.config.ttl,
                out.config.redundancy_k,
                out.achieved_reach_peers,
                sci(out.evaluation.sp_in_bw.mean),
                sci(out.evaluation.sp_out_bw.mean),
                sci(out.evaluation.sp_proc.mean),
            ));
            Ok(s)
        }
        Err(e) => Err(CliError::Runtime(format!("design failed: {e}"))),
    }
}

/// `spnet simulate` — event-driven steady state (or reliability
/// comparison with `--reliability`).
///
/// `--trials N` (N > 1) fans independent trials out over `--threads`
/// workers and reports mean ± 95% CI; results are bitwise identical at
/// any thread count. `--metrics-json PATH` runs a single profiled
/// trial and writes the engine's run manifest (event counts, queue
/// high water, per-event-kind wall histograms) as JSON.
///
/// `--faults PLAN.json` injects a [`FaultPlan`] into a single run;
/// `--fault-seed` reseeds only the dedicated fault RNG stream.
/// `--crash-storm` runs the canonical crash-storm plan against k = 1
/// and k = 2 and compares lost queries and recovery paths.
/// `--repair off|promote|promote+partner` selects the self-healing
/// policy applied to fault-injected super-peer crashes (Section 5.3
/// election + optional k-redundancy partner recruitment).
pub fn simulate(args: &Args) -> Result<String, CliError> {
    if let Some(text) = SIMULATE_USAGE.gate(args)? {
        return Ok(text);
    }
    if let Some(path) = args.get("resume") {
        return simulate_resume(args, path);
    }
    let mut cfg = config_from(args)?;
    if let Some(lifespan) = args.get("lifespan") {
        cfg.population.lifespan_mean_secs = lifespan
            .parse()
            .map_err(|_| ArgError(format!("--lifespan: cannot parse {lifespan:?}")))?;
    }
    let duration = args.get_or("duration", 3600.0f64)?;
    let seed = args.get_or("seed", 42u64)?;
    let trials = args.get_or("trials", 1usize)?;
    if trials == 0 {
        return Err(CliError::Usage("--trials: need at least one trial".into()));
    }
    // Validate the budget up front: single-run paths never consult it,
    // but `--threads 0` must still be a usage error, not dead weight.
    let threads = threads_from(args)?;
    let metrics_json = args.get("metrics-json");
    // The fault stream defaults to the run seed so `--seed` alone still
    // names a fully reproducible faulted run.
    let fault_seed = args.get_or("fault-seed", seed)?;
    let repair = repair_from(args)?;
    let plan = match args.get("faults") {
        None => FaultPlan::default(),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Runtime(format!("--faults: cannot read {path:?}: {e}")))?;
            FaultPlan::from_json(&text)
                .map_err(|e| CliError::Runtime(format!("--faults: {path}: {e}")))?
        }
    };
    // A scenario file is self-contained (phases, capacity classes,
    // embedded fault plan, repair policy), so everything that would
    // override part of it is an explicit conflict. An unreadable file
    // is a runtime failure; an invalid plan is the caller's fault
    // (exit 2), matching the workspace exit-code convention.
    let scenario = match args.get("scenario") {
        None => None,
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Runtime(format!("--scenario: cannot read {path:?}: {e}")))?;
            Some(
                ScenarioPlan::from_json(&text)
                    .map_err(|e| CliError::Usage(format!("--scenario: {path}: {e}")))?,
            )
        }
    };
    if scenario.is_some() {
        if !plan.is_empty() {
            return Err(CliError::Usage(
                "--scenario embeds its own fault plan; drop --faults".into(),
            ));
        }
        if args.get("repair").is_some() {
            return Err(CliError::Usage(
                "--scenario sets the repair policy; drop --repair".into(),
            ));
        }
        if args.flag("crash-storm") || args.flag("reliability") || args.flag("scale") {
            return Err(CliError::Usage(
                "--scenario drives a single run; it cannot be combined with \
                 --crash-storm, --reliability, or --scale"
                    .into(),
            ));
        }
        if trials > 1 {
            return Err(CliError::Usage(
                "--scenario describes a single run; use --trials 1 \
                 (or `spnet campaign` for seeded scenario fleets)"
                    .into(),
            ));
        }
    }
    if args.get("scenario-seed").is_some() && scenario.is_none() {
        return Err(CliError::Usage(
            "--scenario-seed only reseeds a --scenario run; add --scenario PLAN".into(),
        ));
    }
    let overload = overload_from(args, &cfg)?;
    if overload.is_some() {
        if scenario.is_some() {
            return Err(CliError::Usage(
                "--scenario carries its own overload policy; drop \
                 --overload/--overload-policy"
                    .into(),
            ));
        }
        if args.flag("reliability") || args.flag("crash-storm") {
            return Err(CliError::Usage(
                "--overload drives a single engine run; it cannot be combined \
                 with --reliability or --crash-storm"
                    .into(),
            ));
        }
        if trials > 1 {
            return Err(CliError::Usage(
                "--overload describes a single run; use --trials 1".into(),
            ));
        }
    }
    let scenario_seed = args.get_or("scenario-seed", seed)?;
    let checkpoint_every = checkpoint_every_from(args)?;
    if checkpoint_every.is_some()
        && (trials > 1 || args.flag("reliability") || args.flag("crash-storm"))
    {
        return Err(CliError::Usage(
            "--checkpoint-every checkpoints a single run; it cannot be combined \
             with --trials, --reliability, or --crash-storm"
                .into(),
        ));
    }
    if args.flag("scale") {
        return simulate_scale(
            args,
            &mut cfg,
            duration,
            seed,
            fault_seed,
            &plan,
            metrics_json,
            checkpoint_every,
            overload.unwrap_or_default(),
        );
    }
    if args.get("shards").is_some() {
        return Err(CliError::Usage(
            "--shards selects the sharded scale engine; add --scale".into(),
        ));
    }
    if args.get("barrier-timeout-ticks").is_some() || args.get("inject-shard-panic").is_some() {
        return Err(CliError::Usage(
            "--barrier-timeout-ticks and --inject-shard-panic supervise the \
             sharded scale engine; add --scale"
                .into(),
        ));
    }
    if args.flag("crash-storm") {
        if !plan.is_empty() {
            return Err(CliError::Usage(
                "--crash-storm runs its canonical built-in plan; drop --faults".into(),
            ));
        }
        if args.flag("reliability") || metrics_json.is_some() {
            return Err(CliError::Usage(
                "--crash-storm cannot be combined with --reliability or --metrics-json".into(),
            ));
        }
        if trials > 1 {
            let s = crash_storm_trials(
                &cfg,
                duration,
                &SimTrialOptions {
                    trials,
                    seed,
                    threads,
                    repair,
                    ..Default::default()
                },
            );
            let mut t = Table::new(vec!["Metric", "k = 1", "k = 2"]);
            t.row(vec!["queries lost".into(), ci(&s.lost_k1), ci(&s.lost_k2)]);
            t.row(vec![
                "availability".into(),
                ci(&s.availability_k1),
                ci(&s.availability_k2),
            ]);
            t.row(vec![
                "min reachable since storm".into(),
                ci(&s.min_reachable_k1),
                ci(&s.min_reachable_k2),
            ]);
            return Ok(format!(
                "{trials} crash-storm trials (repair {repair})\n\n{}",
                t.render()
            ));
        }
        let c = crash_storm(&cfg, duration, seed, fault_seed, repair);
        let mut t = Table::new(vec!["Metric", "k = 1", "k = 2"]);
        let count = |f: fn(&sp_core::sim::scenario::CrashStormReport) -> u64,
                     t: &mut Table,
                     label: &str| {
            t.row(vec![
                label.into(),
                f(&c.k1).to_string(),
                f(&c.k2).to_string(),
            ]);
        };
        count(|r| r.queries_issued, &mut t, "queries issued");
        count(|r| r.queries_lost, &mut t, "queries lost");
        count(|r| r.recovered_retry, &mut t, "recovered by retry");
        count(|r| r.recovered_failover, &mut t, "recovered by failover");
        count(|r| r.injected_crash, &mut t, "super-peers crashed");
        count(|r| r.cluster_failures, &mut t, "cluster failures");
        count(|r| r.orphan_events, &mut t, "clients orphaned");
        count(|r| r.orphan_gave_up, &mut t, "orphans gave up");
        count(|r| r.repair_promotions, &mut t, "repair promotions");
        count(
            |r| r.repair_partner_recruitments,
            &mut t,
            "partner recruitments",
        );
        count(|r| r.repair_abandoned, &mut t, "clusters abandoned");
        t.row(vec![
            "availability".into(),
            format!("{:.4}", c.k1.availability),
            format!("{:.4}", c.k2.availability),
        ]);
        t.row(vec![
            "mean reconnect (s)".into(),
            format!("{:.1}", c.k1.mean_reconnect_secs),
            format!("{:.1}", c.k2.mean_reconnect_secs),
        ]);
        t.row(vec![
            "min reachable since storm".into(),
            format!("{:.4}", c.k1.min_reachable_since_storm),
            format!("{:.4}", c.k2.min_reachable_since_storm),
        ]);
        t.row(vec![
            "final components".into(),
            c.k1.final_components.to_string(),
            c.k2.final_components.to_string(),
        ]);
        // One flat line per k for scripted smoke checks (CI greps
        // these; the table layout above is free to change).
        let smoke = |label: &str, r: &sp_core::sim::scenario::CrashStormReport| {
            format!(
                "repair {repair} {label}: final components {}, orphans gave up {}",
                r.final_components, r.orphan_gave_up
            )
        };
        return Ok(format!(
            "{}\n{}\n{}",
            t.render(),
            smoke("k=1", &c.k1),
            smoke("k=2", &c.k2)
        ));
    }
    if args.flag("reliability") {
        if metrics_json.is_some() {
            return Err(CliError::Usage(
                "--metrics-json describes a single steady-state run; \
                 it cannot be combined with --reliability"
                    .into(),
            ));
        }
        if trials > 1 {
            return Err(CliError::Usage(
                "--trials is only supported for the steady-state scenario \
                 (drop --reliability)"
                    .into(),
            ));
        }
        if !plan.is_empty() {
            return Err(CliError::Usage(
                "--reliability runs its own churn comparison; drop --faults".into(),
            ));
        }
        let c = reliability(&cfg, duration, seed);
        let mut t = Table::new(vec!["Metric", "k = 1", "k = 2"]);
        t.row(vec![
            "availability".into(),
            format!("{:.4}", c.availability_k1),
            format!("{:.4}", c.availability_k2),
        ]);
        t.row(vec![
            "cluster failures".into(),
            c.failures_k1.to_string(),
            c.failures_k2.to_string(),
        ]);
        t.row(vec![
            "mean downtime (s)".into(),
            format!("{:.1}", c.downtime_k1),
            format!("{:.1}", c.downtime_k2),
        ]);
        return Ok(t.render());
    }
    if trials > 1 {
        if metrics_json.is_some() {
            return Err(CliError::Usage(
                "--metrics-json describes a single run; use --trials 1".into(),
            ));
        }
        if !plan.is_empty() {
            return Err(CliError::Usage(
                "--faults describes a single run; use --trials 1 \
                 (or --crash-storm --trials N for the built-in plan)"
                    .into(),
            ));
        }
        let s = steady_trials(
            &cfg,
            duration,
            &SimTrialOptions {
                trials,
                seed,
                threads,
                repair,
                ..Default::default()
            },
        );
        let mut t = Table::new(vec!["Metric", "Mean ± 95% CI"]);
        t.row(vec!["availability".into(), ci(&s.availability)]);
        t.row(vec!["results per query".into(), ci(&s.results_per_query)]);
        t.row(vec!["super-peer total bw (bps)".into(), ci(&s.sp_total_bw)]);
        return Ok(format!("{trials} trials\n\n{}", t.render()));
    }
    // Single run: drive the engine directly so the run manifest (event
    // counts, queue high water, wall histograms, fault counters) can be
    // captured alongside the standard report. An empty plan is bitwise
    // inert, so the unfaulted path is unchanged. A scenario run takes
    // its fault plan and repair policy from the scenario file.
    let opts = SimOptions {
        duration_secs: duration,
        seed,
        fault_seed,
        scenario_seed,
        profile: metrics_json.is_some(),
        repair,
        overload: overload.unwrap_or_default(),
        ..Default::default()
    };
    let mut sim = match &scenario {
        Some(sc) => Simulation::with_scenario(&cfg, opts, sc),
        None => Simulation::with_faults(&cfg, opts, &plan),
    };
    let start = std::time::Instant::now();
    if let Some(every) = checkpoint_every {
        let dir = args.get("checkpoint-dir").unwrap_or("checkpoints");
        let mut seq = 0usize;
        let mut at = every;
        while at < duration {
            sim.run_to(at);
            write_checkpoint(dir, seq, &sim.snapshot())?;
            seq += 1;
            at += every;
        }
    }
    let raw = sim.run();
    if let Some(path) = metrics_json {
        let manifest = sim.manifest(start.elapsed().as_secs_f64());
        std::fs::write(path, manifest.to_json()).map_err(|e| {
            CliError::Runtime(format!("--metrics-json: cannot write {path:?}: {e}"))
        })?;
    }
    let fm = raw.faults.clone();
    let rm = raw.repair.clone();
    let om = raw.overload.clone();
    // Effective policy: a scenario's embedded policy wins (the CLI
    // flags conflict with --scenario above), else the flag-derived one.
    let effective_overload = scenario
        .as_ref()
        .map(|sc| sc.overload)
        .filter(|p| !p.is_empty())
        .or(overload)
        .unwrap_or_default();
    let r = SimReport::from_raw(raw);
    let mut t = Table::new(vec!["Metric", "Value"]);
    t.row(vec!["queries simulated".into(), r.queries.to_string()]);
    t.row(vec![
        "results per query".into(),
        format!("{:.1}", r.results_per_query),
    ]);
    t.row(vec!["super-peer load".into(), r.sp_load.to_string()]);
    t.row(vec!["client load".into(), r.client_load.to_string()]);
    t.row(vec![
        "availability".into(),
        format!("{:.4}", r.availability),
    ]);
    t.row(vec![
        "cluster failures".into(),
        r.cluster_failures.to_string(),
    ]);
    if let Some(sc) = &scenario {
        t.row(vec![
            "scenario phases / classes".into(),
            format!("{} / {}", sc.phases.len(), sc.capacity_classes.len()),
        ]);
    }
    let effective_repair = scenario.as_ref().map_or(repair, |sc| sc.repair);
    let faulted = !plan.is_empty() || scenario.as_ref().is_some_and(|sc| !sc.is_empty());
    if faulted {
        t.row(vec!["queries issued".into(), fm.queries_issued.to_string()]);
        t.row(vec!["queries lost".into(), fm.queries_lost.to_string()]);
        t.row(vec![
            "recovered by retry".into(),
            fm.recovered_retry.to_string(),
        ]);
        t.row(vec![
            "recovered by failover".into(),
            fm.recovered_failover.to_string(),
        ]);
        t.row(vec![
            "faults injected (crash/drop/delay/partition/flaky)".into(),
            format!(
                "{}/{}/{}/{}/{}",
                fm.injected_crash,
                fm.injected_drop,
                fm.injected_delay,
                fm.injected_partition_block,
                fm.injected_flaky
            ),
        ]);
        t.row(vec![
            "orphans gave up".into(),
            fm.orphan_gave_up.to_string(),
        ]);
        t.row(vec![
            "mean reconnect (s)".into(),
            format!("{:.1}", fm.reconnect.mean_secs()),
        ]);
        if effective_repair.promotes() {
            t.row(vec!["repair promotions".into(), rm.promotions.to_string()]);
            t.row(vec![
                "partner recruitments".into(),
                rm.partner_recruitments.to_string(),
            ]);
            t.row(vec![
                "final components".into(),
                rm.final_components.to_string(),
            ]);
            t.row(vec![
                "final reachable fraction".into(),
                format!("{:.4}", rm.final_reachable_fraction),
            ]);
        }
    }
    if !effective_overload.is_empty() {
        t.row(vec![
            "overload delivered / shed / rejected".into(),
            format!(
                "{} / {} / {}",
                om.delivered,
                om.shed_discipline + om.shed_dead + om.shed_residual,
                om.rejected_queue + om.rejected_budget
            ),
        ]);
        t.row(vec![
            "overload peak queue depth".into(),
            om.peak_depth.to_string(),
        ]);
        t.row(vec![
            "response latency p50 / p99 (s)".into(),
            format!(
                "{:.1} / {:.1}",
                om.latency.quantile_secs(0.50),
                om.latency.quantile_secs(0.99)
            ),
        ]);
        t.row(vec![
            "brownout entries / time (s)".into(),
            format!("{} / {:.0}", om.brownout_entries, om.brownout_secs),
        ]);
        t.row(vec!["clients re-homed".into(), om.rehomed.to_string()]);
        // Flat line for scripted smoke checks (CI greps this; the
        // table layout above is free to change).
        return Ok(format!(
            "{}\noverload run: delivered {}, shed {}, rejected {}, rehomed {}, p99 {:.1}s",
            t.render(),
            om.delivered,
            om.shed_discipline + om.shed_dead + om.shed_residual,
            om.rejected_queue + om.rejected_budget,
            om.rehomed,
            om.latency.quantile_secs(0.99)
        ));
    }
    Ok(t.render())
}

/// The `spnet simulate --scale` path: the shared-nothing sharded scale
/// engine (`sp_sim::shard`), sized for overlays the churn engines
/// cannot reach. `--shards N` picks the reactor count (default one per
/// core); metrics are bitwise identical at every value, so
/// `--metrics-json` output from runs at different shard counts can be
/// compared byte-for-byte — the CI sharded-smoke contract.
#[allow(clippy::too_many_arguments)]
fn simulate_scale(
    args: &Args,
    cfg: &mut Config,
    duration: f64,
    seed: u64,
    fault_seed: u64,
    plan: &FaultPlan,
    metrics_json: Option<&str>,
    checkpoint_every: Option<f64>,
    overload: OverloadPolicy,
) -> Result<String, CliError> {
    if args.flag("reliability")
        || args.flag("crash-storm")
        || args.get("trials").is_some()
        || args.get("repair").is_some()
        || args.get("lifespan").is_some()
    {
        return Err(CliError::Usage(
            "--scale runs the sharded scale engine; it supports --shards, --duration, \
             --seed, --faults, --fault-seed, --metrics-json, the overload, checkpoint, \
             and supervisor options, and the topology options only"
                .into(),
        ));
    }
    if args.flag("strong") || args.get("graph").is_some() {
        return Err(CliError::Usage(
            "--scale generates its own power-law overlay; drop --strong/--graph".into(),
        ));
    }
    // The scale preset's TTL (3) keeps per-query flood work constant as
    // the overlay grows; an explicit --ttl still wins.
    if args.get("ttl").is_none() {
        cfg.ttl = Config::scale_preset(cfg.graph_size).ttl;
    }
    let shards = shards_from(args)?;
    let mut sim = ShardedSimulation::with_faults(
        cfg,
        ScaleOptions {
            duration_secs: duration,
            seed,
            fault_seed,
            shards,
            barrier_timeout_ticks: args.get_or("barrier-timeout-ticks", 0u32)?,
            inject_panic: shard_panic_from(args)?,
            overload,
        },
        plan,
    );
    if let Some(every) = checkpoint_every {
        // The scale clock is the tick barrier, so the interval is in
        // ticks; fractional values round up to the next barrier.
        let every = (every.ceil() as u32).max(1);
        let dir = args.get("checkpoint-dir").unwrap_or("checkpoints");
        let mut seq = 0usize;
        let mut at = every;
        while at < sim.total_ticks() {
            sim.run_to(at).map_err(shard_failure)?;
            write_checkpoint(dir, seq, &sim.snapshot())?;
            seq += 1;
            at += every;
        }
    }
    let overload_active = sim.overload_active();
    let m = sim.try_run().map_err(shard_failure)?;
    let diag = *sim.diag();
    if let Some(path) = metrics_json {
        std::fs::write(path, m.to_json()).map_err(|e| {
            CliError::Runtime(format!("--metrics-json: cannot write {path:?}: {e}"))
        })?;
    }
    Ok(scale_report(&m, &diag, !plan.is_empty(), overload_active))
}

/// Renders the scale-engine report table plus the flat smoke line CI
/// diffs across shard counts — shared by fresh `--scale` runs and
/// `--resume` of a scale snapshot (whose metrics must come out
/// byte-identical).
fn scale_report(
    m: &ScaleMetrics,
    diag: &ScaleDiag,
    faulted: bool,
    overload_active: bool,
) -> String {
    let mut t = Table::new(vec!["Metric", "Value"]);
    t.row(vec!["peers".into(), m.peers.to_string()]);
    t.row(vec!["clusters".into(), m.clusters.to_string()]);
    t.row(vec!["ticks".into(), m.ticks.to_string()]);
    t.row(vec!["queries issued".into(), m.queries_issued.to_string()]);
    t.row(vec!["queries failed".into(), m.queries_failed.to_string()]);
    t.row(vec![
        "messages delivered".into(),
        m.msgs_delivered.to_string(),
    ]);
    t.row(vec!["results found".into(), m.results_found.to_string()]);
    if faulted {
        t.row(vec![
            "dropped (loss/partition/dead)".into(),
            format!(
                "{}/{}/{}",
                m.msgs_dropped_loss, m.msgs_dropped_partition, m.msgs_dropped_dead
            ),
        ]);
        t.row(vec![
            "crashes injected".into(),
            m.crashes_injected.to_string(),
        ]);
        t.row(vec!["elections held".into(), m.elections_held.to_string()]);
        t.row(vec![
            "re-index announcements".into(),
            m.reindex_received.to_string(),
        ]);
    }
    if overload_active {
        t.row(vec![
            "overload admitted / delivered".into(),
            format!(
                "{} / {}",
                m.ov_admitted + m.ov_rehome_admitted,
                m.ov_delivered
            ),
        ]);
        t.row(vec![
            "overload shed (discipline/dead/residual)".into(),
            format!(
                "{}/{}/{}",
                m.ov_shed_discipline, m.ov_shed_dead, m.ov_shed_residual
            ),
        ]);
        t.row(vec![
            "overload rejected (queue/budget)".into(),
            format!("{}/{}", m.ov_rejected_queue, m.ov_rejected_budget),
        ]);
        t.row(vec![
            "re-home handoffs sent / failed".into(),
            format!("{} / {}", m.ov_rehome_sent, m.ov_handoff_failed),
        ]);
        t.row(vec![
            "brownout entries / cluster-ticks".into(),
            format!("{} / {}", m.ov_brownout_entries, m.ov_brownout_ticks),
        ]);
        t.row(vec![
            "overload peak depth / wait p99 (ticks)".into(),
            format!("{} / {}", m.ov_peak_depth, m.ov_wait_quantile_ticks(0.99)),
        ]);
    }
    t.row(vec![
        "events processed".into(),
        m.events_processed().to_string(),
    ]);
    t.row(vec![
        "shards / cross-shard msgs".into(),
        format!("{} / {}", diag.shards, diag.cross_shard_msgs),
    ]);
    // Flat line for scripted smoke checks: every field here is
    // shard-count-invariant, so CI can diff it across shard counts.
    let mut smoke = format!(
        "scale run: events processed {}, msgs delivered {}, results {}",
        m.events_processed(),
        m.msgs_delivered,
        m.results_found
    );
    if overload_active {
        smoke.push_str(&format!(
            ", overload delivered {} shed {} rejected {}",
            m.ov_delivered,
            m.ov_shed_discipline + m.ov_shed_dead + m.ov_shed_residual,
            m.ov_rejected_queue + m.ov_rejected_budget
        ));
    }
    format!("{}\n{smoke}", t.render())
}

/// The `spnet simulate --resume SNAP` path: restores a checkpoint and
/// runs it to completion. The snapshot names its own engine
/// (dispatched on the container header), workload, and RNG positions,
/// so every option that would re-describe the run is a conflict; the
/// finished metrics are bitwise identical to the uninterrupted run's.
fn simulate_resume(args: &Args, path: &str) -> Result<String, CliError> {
    // The snapshot embeds the config, plans, and seeds; anything that
    // would re-specify them is a conflict, named individually so the
    // error says which option to drop.
    for key in [
        "users",
        "cluster",
        "outdegree",
        "ttl",
        "query-rate",
        "k",
        "graph",
        "lifespan",
        "duration",
        "seed",
        "fault-seed",
        "scenario-seed",
        "trials",
        "faults",
        "scenario",
        "repair",
        "overload-policy",
        "checkpoint-every",
        "checkpoint-dir",
    ] {
        if args.get(key).is_some() {
            return Err(CliError::Usage(format!(
                "--resume restores the full run state from the snapshot; drop --{key}"
            )));
        }
    }
    for flag in [
        "reliability",
        "crash-storm",
        "strong",
        "redundancy",
        "scale",
    ] {
        if args.flag(flag) {
            return Err(CliError::Usage(format!(
                "--resume restores the full run state from the snapshot; drop --{flag}"
            )));
        }
    }
    let data = std::fs::read(path)
        .map_err(|e| CliError::Runtime(format!("--resume: cannot read {path:?}: {e}")))?;
    let engine = SnapReader::peek_engine(&data)
        .map_err(|e| CliError::Runtime(format!("--resume: {path}: {e}")))?;
    let metrics_json = args.get("metrics-json");
    let restored = |e: sp_core::model::snapshot::SnapshotError| {
        CliError::Runtime(format!("--resume: {path}: {e}"))
    };
    // A resumed run's overload policy comes from the snapshot; the
    // `--overload` flag is allowed only as an assertion that the
    // snapshot really is an overload-controlled run (a policy cannot
    // be enabled mid-run without changing every draw after T).
    let check_overload = |active: bool| -> Result<(), CliError> {
        if args.flag("overload") && !active {
            return Err(CliError::Usage(format!(
                "--overload: the snapshot at {path} was captured without an overload \
                 policy, and a policy cannot be enabled at resume time; drop \
                 --overload or restart the run with it"
            )));
        }
        Ok(())
    };
    match engine {
        ENGINE_SCALE => {
            let opts = ScaleOptions {
                shards: shards_from(args)?,
                barrier_timeout_ticks: args.get_or("barrier-timeout-ticks", 0u32)?,
                inject_panic: shard_panic_from(args)?,
                ..ScaleOptions::default()
            };
            let mut sim = ShardedSimulation::restore(&data, opts).map_err(restored)?;
            let overload_active = sim.overload_active();
            check_overload(overload_active)?;
            let m = sim.try_run().map_err(shard_failure)?;
            let diag = *sim.diag();
            if let Some(p) = metrics_json {
                std::fs::write(p, m.to_json()).map_err(|e| {
                    CliError::Runtime(format!("--metrics-json: cannot write {p:?}: {e}"))
                })?;
            }
            Ok(scale_report(&m, &diag, true, overload_active))
        }
        engine @ (ENGINE_FAST | ENGINE_REFERENCE) => {
            if args.get("shards").is_some()
                || args.get("barrier-timeout-ticks").is_some()
                || args.get("inject-shard-panic").is_some()
            {
                return Err(CliError::Usage(
                    "--shards/--barrier-timeout-ticks/--inject-shard-panic supervise \
                     scale snapshots; this snapshot is a churn-engine checkpoint"
                        .into(),
                ));
            }
            let (raw, name) = if engine == ENGINE_FAST {
                let mut sim = Simulation::restore(&data).map_err(restored)?;
                check_overload(sim.overload_active())?;
                let start = std::time::Instant::now();
                let raw = sim.run();
                if let Some(p) = metrics_json {
                    let manifest = sim.manifest(start.elapsed().as_secs_f64());
                    std::fs::write(p, manifest.to_json()).map_err(|e| {
                        CliError::Runtime(format!("--metrics-json: cannot write {p:?}: {e}"))
                    })?;
                }
                (raw, "fast")
            } else {
                if metrics_json.is_some() {
                    return Err(CliError::Usage(
                        "the reference engine keeps no run manifest; drop --metrics-json".into(),
                    ));
                }
                let mut sim = ReferenceSimulation::restore(&data).map_err(restored)?;
                check_overload(sim.overload_active())?;
                (sim.run(), "reference")
            };
            Ok(resumed_report(raw, name))
        }
        other => Err(CliError::Runtime(format!(
            "--resume: {path}: unknown engine tag {other}"
        ))),
    }
}

/// Report table for a resumed churn-engine run: the core metrics plus
/// a flat line scripted checks can diff against the uninterrupted run.
fn resumed_report(raw: RawMetrics, engine: &str) -> String {
    let r = SimReport::from_raw(raw);
    let mut t = Table::new(vec!["Metric", "Value"]);
    t.row(vec!["engine".into(), engine.into()]);
    t.row(vec!["queries simulated".into(), r.queries.to_string()]);
    t.row(vec![
        "results per query".into(),
        format!("{:.1}", r.results_per_query),
    ]);
    t.row(vec!["super-peer load".into(), r.sp_load.to_string()]);
    t.row(vec!["client load".into(), r.client_load.to_string()]);
    t.row(vec![
        "availability".into(),
        format!("{:.4}", r.availability),
    ]);
    t.row(vec![
        "cluster failures".into(),
        r.cluster_failures.to_string(),
    ]);
    format!(
        "{}\nresumed run ({engine}): queries {}, results/query {:.1}, availability {:.4}",
        t.render(),
        r.queries,
        r.results_per_query,
        r.availability
    )
}

/// `spnet sweep` — cluster-size sweep of one system.
pub fn sweep(args: &Args) -> Result<String, CliError> {
    if let Some(text) = SWEEP_USAGE.gate(args)? {
        return Ok(text);
    }
    let cfg = config_from(args)?;
    let sizes = args.get_list_or("clusters", &[1usize, 10, 100, 1000])?;
    let fid = Fidelity {
        trials: args.get_or("trials", 3usize)?,
        seed: args.get_or("seed", 42u64)?,
        max_sources: Some(args.get_or("sources", 800usize)?),
        threads: threads_from(args)?,
    };
    let spec = cluster_sweep::SystemSpec {
        label: "system".into(),
        graph_type: cfg.graph_type,
        redundancy: cfg.redundancy_k > 1,
        ttl: cfg.ttl,
        avg_outdegree: cfg.avg_outdegree,
    };
    let data = cluster_sweep::run(cfg.graph_size, &sizes, &[spec], None, &fid);
    let mut t = Table::new(vec![
        "ClusterSize",
        "Agg bw (bps)",
        "SP in (bps)",
        "SP out (bps)",
        "SP proc (Hz)",
        "Results",
    ]);
    for (i, &cs) in data.cluster_sizes.iter().enumerate() {
        let s = &data.cell(i, 0).summary;
        t.row(vec![
            cs.to_string(),
            sci(s.agg_total_bw.mean),
            sci(s.sp_in_bw.mean),
            sci(s.sp_out_bw.mean),
            sci(s.sp_proc.mean),
            format!("{:.0}", s.results.mean),
        ]);
    }
    Ok(t.render())
}

/// `spnet epl` — the Figure 9 lookup table.
pub fn epl(args: &Args) -> Result<String, CliError> {
    if let Some(text) = EPL_USAGE.gate(args)? {
        return Ok(text);
    }
    let outdegrees = args.get_list_or("outdegrees", &[3.1f64, 10.0, 20.0, 40.0])?;
    let reaches = args.get_list_or("reaches", &[50usize, 200, 500])?;
    let nodes = args.get_or("nodes", 1000usize)?;
    let samples = args.get_or("samples", 40usize)?;
    let seed = args.get_or("seed", 42u64)?;
    let data = epl_table::run(&outdegrees, &reaches, nodes, samples, seed);
    Ok(format!(
        "{}\n{}",
        data.render_fig9(),
        data.render_appendix_f()
    ))
}

/// `spnet lint` — the workspace determinism-and-safety static
/// analysis (sp-lint), wired into the CLI so `spnet lint` at the
/// repo root is the local mirror of the CI gate.
///
/// Findings at deny level are a *runtime* failure (exit 1): the
/// invocation was fine, the tree is not. Configuration problems —
/// unknown options, a malformed `lint.toml` — are usage errors
/// (exit 2), matching the workspace exit-code convention.
pub fn lint(args: &Args) -> Result<String, CliError> {
    if let Some(text) = LINT_USAGE.gate(args)? {
        return Ok(text);
    }
    let root = std::path::PathBuf::from(args.get("root").unwrap_or("."));
    let cfg = match args.get("config") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Usage(format!("--config: cannot read {path:?}: {e}")))?;
            sp_lint::LintConfig::parse(&text).map_err(CliError::Usage)?
        }
        None => sp_lint::load_config(&root).map_err(CliError::Usage)?,
    };
    let report = sp_lint::lint_workspace(&root, &cfg)
        .map_err(|e| CliError::Runtime(format!("lint failed: {e}")))?;
    if let Some(path) = args.get("json") {
        std::fs::write(path, report.render_json())
            .map_err(|e| CliError::Runtime(format!("--json: cannot write {path:?}: {e}")))?;
    }
    if let Some(path) = args.get("sarif") {
        std::fs::write(path, sp_lint::sarif::render_sarif(&report, &cfg))
            .map_err(|e| CliError::Runtime(format!("--sarif: cannot write {path:?}: {e}")))?;
    }
    let human = report.render_human(args.flag("warnings"));
    if report.deny_count() > 0 {
        // Findings go to stdout here (like --metrics-json writes its
        // file); the error path stays a single `error: …` line per
        // the workspace policy.
        print!("{human}");
        return Err(CliError::Runtime(format!(
            "lint: {} deny-level finding(s)",
            report.deny_count()
        )));
    }
    Ok(human.trim_end().to_string())
}

/// `spnet campaign` — the differential scenario campaign: `--count`
/// seeded [`ScenarioPlan`]s generated from `--seed`, each run through
/// both the fast and the reference engine with a bitwise oracle
/// (metrics equality, query conservation, bounded availability).
///
/// A green campaign prints a coverage table plus a flat summary line
/// whose fingerprint is thread-count-invariant (CI pins it). Any
/// divergence writes a self-contained reproducer JSON per failing
/// scenario into `--repro-dir` and exits 1 — the invocation was fine,
/// the engines are not.
pub fn campaign(args: &Args) -> Result<String, CliError> {
    if let Some(text) = CAMPAIGN_USAGE.gate(args)? {
        return Ok(text);
    }
    let inject_panic = match args.get("inject-panic") {
        None => None,
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| CliError::Usage(format!("--inject-panic: cannot parse {v:?}")))?,
        ),
    };
    // With --resume the campaign's identity (count, seed, workload
    // shape) comes from the report being resumed; letting the command
    // line override any of it would silently fold fingerprints from a
    // different campaign, so each override is an individual conflict.
    let resume = match args.get("resume") {
        None => None,
        Some(path) => {
            for key in ["count", "seed", "users", "cluster", "duration"] {
                if args.get(key).is_some() {
                    return Err(CliError::Usage(format!(
                        "--resume takes --{key} from the report; drop --{key}"
                    )));
                }
            }
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Runtime(format!("--resume: cannot read {path:?}: {e}")))?;
            Some(
                CampaignResume::from_report_json(&text)
                    .map_err(|e| CliError::Runtime(format!("--resume: {path}: {e}")))?,
            )
        }
    };
    let opts = match &resume {
        Some(r) => CampaignOptions {
            inject_panic,
            ..r.options(threads_from(args)?)
        },
        None => CampaignOptions {
            count: args.get_or("count", 32usize)?,
            seed: args.get_or("seed", 42u64)?,
            threads: threads_from(args)?,
            users: args.get_or("users", 120usize)?,
            cluster_size: args.get_or("cluster", 12usize)?,
            duration_secs: args.get_or("duration", 1200.0f64)?,
            inject_panic,
        },
    };
    if opts.count == 0 {
        return Err(CliError::Usage(
            "--count: need at least one scenario".into(),
        ));
    }
    if opts.duration_secs <= 0.0 || !opts.duration_secs.is_finite() {
        return Err(CliError::Usage(
            "--duration: must be a positive number of seconds".into(),
        ));
    }
    let mut report = run_campaign_with(&opts, resume.as_ref());
    // Quarantine artifacts are written before the report so the report
    // records where they landed. Paths are index-derived, keeping the
    // report JSON thread-count-invariant.
    let dir = args.get("repro-dir").unwrap_or("campaign_repros");
    if !report.quarantined.is_empty() {
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Runtime(format!("--repro-dir: cannot create {dir:?}: {e}")))?;
        for i in 0..report.quarantined.len() {
            let doc = report.quarantined[i].reproducer_json(&opts);
            let q = &mut report.quarantined[i];
            let json_path = std::path::Path::new(dir).join(format!("quarantine_{}.json", q.index));
            std::fs::write(&json_path, doc).map_err(|e| {
                CliError::Runtime(format!("cannot write quarantine {json_path:?}: {e}"))
            })?;
            q.reproducer_path = Some(json_path.display().to_string());
            if !q.snapshot.is_empty() {
                let snap_path =
                    std::path::Path::new(dir).join(format!("quarantine_{}.snap", q.index));
                std::fs::write(&snap_path, &q.snapshot).map_err(|e| {
                    CliError::Runtime(format!("cannot write quarantine {snap_path:?}: {e}"))
                })?;
                q.snapshot_path = Some(snap_path.display().to_string());
            }
        }
    }
    if let Some(path) = args.get("report") {
        std::fs::write(path, report.to_json())
            .map_err(|e| CliError::Runtime(format!("--report: cannot write {path:?}: {e}")))?;
    }
    let coverage = |pairs: &[(&'static str, u64)]| -> String {
        if pairs.is_empty() {
            return "none".into();
        }
        pairs
            .iter()
            .map(|(k, n)| format!("{k} {n}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut t = Table::new(vec!["Metric", "Value"]);
    t.row(vec!["scenarios".into(), report.scenarios.to_string()]);
    t.row(vec![
        "phases covered".into(),
        coverage(&report.phases_covered),
    ]);
    t.row(vec![
        "faults covered".into(),
        coverage(&report.faults_covered),
    ]);
    t.row(vec![
        "repair covered".into(),
        coverage(&report.repair_covered),
    ]);
    t.row(vec![
        "fingerprint".into(),
        format!("{:#018x}", report.fingerprint),
    ]);
    t.row(vec![
        "divergences".into(),
        report.divergences.len().to_string(),
    ]);
    t.row(vec![
        "quarantined".into(),
        report.quarantined.len().to_string(),
    ]);
    if !report.divergences.is_empty() || !report.quarantined.is_empty() {
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Runtime(format!("--repro-dir: cannot create {dir:?}: {e}")))?;
        for d in &report.divergences {
            let path = std::path::Path::new(dir).join(format!("repro_{}.json", d.index));
            std::fs::write(&path, d.reproducer_json(&opts))
                .map_err(|e| CliError::Runtime(format!("cannot write reproducer {path:?}: {e}")))?;
        }
        // Findings go to stdout (like `spnet lint`); the error path
        // stays a single `error: …` line per the workspace policy.
        let mut findings = format!("{}\n{}\n", t.render(), report.summary_line());
        for d in &report.divergences {
            findings.push_str(&format!(
                "divergence: scenario {} (trial seed {}): {}\n",
                d.index, d.trial_seed, d.reason
            ));
        }
        for q in &report.quarantined {
            findings.push_str(&format!(
                "quarantine: scenario {} (trial seed {}): {}\n",
                q.index, q.trial_seed, q.reason
            ));
        }
        print!("{findings}");
        let mut what = Vec::new();
        if !report.divergences.is_empty() {
            what.push(format!("{} divergence(s)", report.divergences.len()));
        }
        if !report.quarantined.is_empty() {
            what.push(format!("{} quarantined panic(s)", report.quarantined.len()));
        }
        return Err(CliError::Runtime(format!(
            "campaign: {}; artifacts in {dir}/",
            what.join(", ")
        )));
    }
    Ok(format!("{}\n{}", t.render(), report.summary_line()))
}

/// Top-level help text, rendered from the same per-command usage
/// tables as `spnet <command> --help`.
pub fn help() -> String {
    usage::global_help(&[
        &EVALUATE_USAGE,
        &DESIGN_USAGE,
        &SIMULATE_USAGE,
        &CAMPAIGN_USAGE,
        &SWEEP_USAGE,
        &EPL_USAGE,
        &LINT_USAGE,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn evaluate_renders_table() {
        let out = evaluate(&args(&[
            "--users",
            "300",
            "--cluster",
            "10",
            "--ttl",
            "3",
            "--trials",
            "1",
            "--sources",
            "50",
        ]))
        .unwrap();
        assert!(out.contains("results per query"));
        assert!(out.contains("super-peer out bw"));
    }

    #[test]
    fn evaluate_rejects_unknown_option() {
        let err = evaluate(&args(&["--userz", "300"])).unwrap_err();
        assert!(err.to_string().contains("userz"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn config_respects_graph_family() {
        let cfg = config_from(&args(&["--graph", "regular", "--users", "500"])).unwrap();
        assert_eq!(cfg.graph_type, GraphType::RandomRegular);
        assert!(config_from(&args(&["--graph", "nonsense"])).is_err());
    }

    #[test]
    fn design_small_scenario() {
        let out = design_cmd(&args(&[
            "--users",
            "1000",
            "--reach",
            "250",
            "--max-up",
            "150000",
            "--max-down",
            "150000",
            "--max-proc",
            "15000000",
            "--max-conns",
            "100",
        ]))
        .unwrap();
        assert!(out.contains("recommended"));
        assert!(out.contains("TTL"));
    }

    #[test]
    fn simulate_produces_counts() {
        let out = simulate(&args(&[
            "--users",
            "100",
            "--cluster",
            "10",
            "--duration",
            "300",
        ]))
        .unwrap();
        assert!(out.contains("queries simulated"));
    }

    #[test]
    fn simulate_trials_reports_ci() {
        let out = simulate(&args(&[
            "--users",
            "100",
            "--cluster",
            "10",
            "--duration",
            "300",
            "--trials",
            "3",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("3 trials"));
        assert!(out.contains("availability"));
        assert!(out.contains("±"));
    }

    #[test]
    fn simulate_trials_identical_across_thread_counts() {
        let base = &[
            "--users",
            "100",
            "--cluster",
            "10",
            "--duration",
            "300",
            "--trials",
            "4",
        ];
        let one = simulate(&args(&[base as &[_], &["--threads", "1"]].concat())).unwrap();
        let four = simulate(&args(&[base as &[_], &["--threads", "4"]].concat())).unwrap();
        assert_eq!(one, four);
    }

    #[test]
    fn simulate_writes_metrics_json() {
        let path = std::env::temp_dir().join("spnet_cli_manifest_test.json");
        let path_str = path.to_str().unwrap();
        let out = simulate(&args(&[
            "--users",
            "100",
            "--cluster",
            "10",
            "--duration",
            "300",
            "--metrics-json",
            path_str,
        ]))
        .unwrap();
        assert!(out.contains("queries simulated"));
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(json.contains("\"events_delivered\""));
        assert!(json.contains("\"wall_ns_by_kind\""));
        assert!(json.contains("\"profiled\": true"));
    }

    #[test]
    fn simulate_rejects_conflicting_options() {
        let err = simulate(&args(&[
            "--users",
            "100",
            "--reliability",
            "--metrics-json",
            "x.json",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--reliability"));
        let err = simulate(&args(&["--users", "100", "--trials", "0"])).unwrap_err();
        assert!(err.to_string().contains("trials"));
        let err = simulate(&args(&[
            "--users",
            "100",
            "--trials",
            "2",
            "--metrics-json",
            "x.json",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("single run"));
        // All of the above are the caller's fault.
        assert_eq!(err.exit_code(), 2);
    }

    fn write_plan(name: &str, plan: &FaultPlan) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, plan.to_json()).unwrap();
        path
    }

    #[test]
    fn simulate_faults_round_trip_into_manifest() {
        use sp_core::model::faults::FaultSpec;
        let plan = FaultPlan {
            faults: vec![
                FaultSpec::CrashCluster {
                    at_secs: 100.0,
                    cluster_index: 0,
                },
                FaultSpec::MessageLoss {
                    from_secs: 50.0,
                    until_secs: 500.0,
                    drop_prob: 0.5,
                },
            ],
            ..FaultPlan::default()
        };
        let plan_path = write_plan("spnet_cli_fault_plan_test.json", &plan);
        let out_path = std::env::temp_dir().join("spnet_cli_fault_manifest_test.json");
        let out = simulate(&args(&[
            "--users",
            "100",
            "--cluster",
            "10",
            "--lifespan",
            "500",
            "--duration",
            "600",
            "--fault-seed",
            "77",
            "--faults",
            plan_path.to_str().unwrap(),
            "--metrics-json",
            out_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("queries lost"));
        assert!(out.contains("faults injected"));
        let json = std::fs::read_to_string(&out_path).unwrap();
        std::fs::remove_file(&plan_path).ok();
        std::fs::remove_file(&out_path).ok();
        // The manifest reflects the loaded plan and fault stream, and
        // both plan entries actually injected something.
        assert!(json.contains("\"fault_seed\": 77"));
        assert!(json.contains(&format!("\"fault_plan_len\": {}", plan.faults.len())));
        let count_after = |key: &str| -> u64 {
            let tail = &json[json.find(key).unwrap() + key.len()..];
            let digits: String = tail
                .chars()
                .skip_while(|c| !c.is_ascii_digit())
                .take_while(char::is_ascii_digit)
                .collect();
            digits.parse().unwrap()
        };
        assert!(count_after("\"crash\":") > 0, "crash_cluster never fired");
        assert!(count_after("\"drop\":") > 0, "message_loss never fired");
    }

    #[test]
    fn simulate_fault_errors_are_runtime_and_one_line() {
        let err = simulate(&args(&[
            "--users",
            "100",
            "--faults",
            "/nonexistent/spnet_plan.json",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(!err.to_string().contains('\n'));
        assert!(err.to_string().contains("--faults"));

        let bad = std::env::temp_dir().join("spnet_cli_bad_plan_test.json");
        std::fs::write(&bad, "{\"faults\": [").unwrap();
        let err = simulate(&args(&[
            "--users",
            "100",
            "--faults",
            bad.to_str().unwrap(),
        ]))
        .unwrap_err();
        std::fs::remove_file(&bad).ok();
        assert_eq!(err.exit_code(), 1);
        assert!(!err.to_string().contains('\n'));
        assert!(err.to_string().contains("json parse error"));
    }

    #[test]
    fn simulate_rejects_faults_with_trials_or_reliability() {
        let plan_path = write_plan("spnet_cli_plan_conflict_test.json", &{
            use sp_core::model::faults::FaultSpec;
            FaultPlan {
                faults: vec![FaultSpec::CrashFraction {
                    at_secs: 10.0,
                    fraction: 0.5,
                }],
                ..FaultPlan::default()
            }
        });
        let plan = plan_path.to_str().unwrap();
        let err = simulate(&args(&[
            "--users", "100", "--faults", plan, "--trials", "2",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--trials 1"));
        let err = simulate(&args(&[
            "--users",
            "100",
            "--faults",
            plan,
            "--reliability",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = simulate(&args(&[
            "--users",
            "100",
            "--faults",
            plan,
            "--crash-storm",
        ]))
        .unwrap_err();
        std::fs::remove_file(&plan_path).ok();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--crash-storm"));
    }

    #[test]
    fn simulate_crash_storm_compares_redundancy() {
        let out = simulate(&args(&[
            "--users",
            "120",
            "--cluster",
            "12",
            "--lifespan",
            "400",
            "--duration",
            "1200",
            "--seed",
            "7",
            "--crash-storm",
        ]))
        .unwrap();
        assert!(out.contains("k = 1"));
        assert!(out.contains("k = 2"));
        assert!(out.contains("queries lost"));
        assert!(out.contains("recovered by failover"));
        assert!(out.contains("final components"));
        assert!(out.contains("repair off k=1: final components"));
    }

    #[test]
    fn simulate_crash_storm_with_repair_heals_the_overlay() {
        // The CI smoke contract: the canonical crash storm under
        // `--repair=promote` must end with a single live component and
        // no client that permanently gave up reconnecting.
        let out = simulate(&args(&[
            "--users",
            "120",
            "--cluster",
            "12",
            "--lifespan",
            "400",
            "--duration",
            "1200",
            "--seed",
            "7",
            "--crash-storm",
            "--repair",
            "promote",
        ]))
        .unwrap();
        assert!(out.contains("repair promotions"));
        assert!(
            out.contains("repair promote k=1: final components 1, orphans gave up 0"),
            "smoke line missing or overlay not healed:\n{out}"
        );
    }

    #[test]
    fn simulate_rejects_unknown_repair_policy() {
        let err = simulate(&args(&["--users", "100", "--repair", "heal-everything"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("promote+partner"));
    }

    #[test]
    fn threads_zero_and_garbage_are_usage_errors() {
        // Explicit --threads 0 and non-numeric values are the caller's
        // fault (exit 2), not a silent fall-back to the default.
        for cmd in [simulate, evaluate, sweep] {
            let err = cmd(&args(&["--users", "100", "--threads", "0"])).unwrap_err();
            assert_eq!(err.exit_code(), 2, "--threads 0 must be a usage error");
            assert!(err.to_string().contains("--threads"));
            let err = cmd(&args(&["--users", "100", "--threads", "many"])).unwrap_err();
            assert_eq!(err.exit_code(), 2);
            assert!(err.to_string().contains("many"));
        }
    }

    #[test]
    fn sp_threads_env_values_are_validated() {
        // Pure-function probe of the SP_THREADS path (no process-global
        // env mutation, which would race with concurrently running
        // tests that resolve their own thread budgets).
        assert_eq!(threads_from_parts(None, None).unwrap(), 0);
        assert_eq!(threads_from_parts(None, Some("3".into())).unwrap(), 3);
        let err = threads_from_parts(None, Some("0".into())).unwrap_err();
        assert!(err.0.contains("SP_THREADS"), "{}", err.0);
        let err = threads_from_parts(None, Some("lots".into())).unwrap_err();
        assert!(err.0.contains("SP_THREADS"), "{}", err.0);
        // An explicit --threads wins before SP_THREADS is even parsed.
        assert_eq!(
            threads_from_parts(Some("4"), Some("garbage".into())).unwrap(),
            4
        );
    }

    #[test]
    fn simulate_scale_runs_and_is_shard_invariant() {
        let base = &[
            "--users",
            "4000",
            "--scale",
            "--duration",
            "150",
            "--seed",
            "9",
        ];
        let one_path = std::env::temp_dir().join("spnet_cli_scale_1shard_test.json");
        let four_path = std::env::temp_dir().join("spnet_cli_scale_4shard_test.json");
        let one = simulate(&args(
            &[
                base as &[_],
                &[
                    "--shards",
                    "1",
                    "--metrics-json",
                    one_path.to_str().unwrap(),
                ],
            ]
            .concat(),
        ))
        .unwrap();
        let four = simulate(&args(
            &[
                base as &[_],
                &[
                    "--shards",
                    "4",
                    "--metrics-json",
                    four_path.to_str().unwrap(),
                ],
            ]
            .concat(),
        ))
        .unwrap();
        assert!(one.contains("events processed"));
        assert!(one.contains("scale run:"));
        let json_one = std::fs::read_to_string(&one_path).unwrap();
        let json_four = std::fs::read_to_string(&four_path).unwrap();
        std::fs::remove_file(&one_path).ok();
        std::fs::remove_file(&four_path).ok();
        // The metrics JSON is shard-count-invariant byte for byte —
        // the same comparison the CI sharded-smoke step performs.
        assert_eq!(json_one, json_four, "scale metrics diverged across shards");
        assert!(json_one.contains("\"msgs_delivered\""));
        // The human tables differ only in the diag row; the smoke line
        // (last line) must match exactly.
        assert_eq!(one.lines().last(), four.lines().last());
    }

    #[test]
    fn simulate_scale_rejects_conflicts_and_bad_shards() {
        let err = simulate(&args(&["--users", "100", "--shards", "4"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--scale"));
        let err = simulate(&args(&["--users", "100", "--scale", "--shards", "0"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--shards"));
        let err = simulate(&args(&["--users", "100", "--scale", "--shards", "x"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        for conflict in [
            &["--reliability"] as &[_],
            &["--crash-storm"],
            &["--trials", "2"],
            &["--repair", "promote"],
            &["--lifespan", "600"],
            &["--strong"],
        ] {
            let err = simulate(&args(
                &[&["--users", "100", "--scale"] as &[_], conflict].concat(),
            ))
            .unwrap_err();
            assert_eq!(
                err.exit_code(),
                2,
                "--scale with {conflict:?} must be usage"
            );
        }
    }

    #[test]
    fn sweep_lists_all_sizes() {
        let out = sweep(&args(&[
            "--users",
            "400",
            "--clusters",
            "5,40",
            "--trials",
            "1",
            "--sources",
            "40",
            "--ttl",
            "3",
        ]))
        .unwrap();
        assert!(out.lines().count() >= 4);
    }

    #[test]
    fn epl_table_renders() {
        let out = epl(&args(&[
            "--outdegrees",
            "5,10",
            "--reaches",
            "30",
            "--nodes",
            "200",
            "--samples",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("Figure 9"));
    }

    #[test]
    fn help_mentions_every_command() {
        let h = help();
        for cmd in [
            "evaluate", "design", "simulate", "campaign", "sweep", "epl", "lint",
        ] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
        assert!(h.contains("Exit codes"));
    }

    #[test]
    fn every_command_answers_help_through_the_one_formatter() {
        // `--help` short-circuits before any work (and before topology
        // validation), and every command's text comes from the same
        // renderer: same USAGE header shape, same pointer convention.
        let helped = args(&["--help"]);
        for (name, cmd) in [
            (
                "evaluate",
                evaluate as fn(&Args) -> Result<String, CliError>,
            ),
            ("design", design_cmd),
            ("simulate", simulate),
            ("campaign", campaign),
            ("sweep", sweep),
            ("epl", epl),
            ("lint", lint),
        ] {
            let text = cmd(&helped).unwrap();
            assert!(
                text.starts_with(&format!("USAGE: spnet {name}")),
                "{name} help not rendered by the shared formatter:\n{text}"
            );
        }
    }

    #[test]
    fn unknown_options_point_at_the_command_help() {
        let err = simulate(&args(&["--bogus-flag", "1"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("spnet simulate --help"));
        let err = campaign(&args(&["--scenarios", "5"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("spnet campaign --help"));
    }

    #[test]
    fn campaign_small_run_is_green_and_thread_invariant() {
        let base = &[
            "--count",
            "3",
            "--seed",
            "7",
            "--users",
            "60",
            "--cluster",
            "10",
            "--duration",
            "400",
        ];
        let one = campaign(&args(&[base as &[_], &["--threads", "1"]].concat())).unwrap();
        let four = campaign(&args(&[base as &[_], &["--threads", "4"]].concat())).unwrap();
        assert!(one.contains("fingerprint"));
        assert!(one.contains("divergences"));
        assert!(one.contains("campaign: 3 scenarios, seed 7"));
        assert_eq!(one, four, "campaign output diverged across thread counts");
    }

    #[test]
    fn campaign_writes_the_report_file() {
        let path = std::env::temp_dir().join("spnet_cli_campaign_report_test.json");
        let out = campaign(&args(&[
            "--count",
            "2",
            "--seed",
            "11",
            "--users",
            "60",
            "--cluster",
            "10",
            "--duration",
            "300",
            "--report",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("phases covered"));
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(json.contains("\"scenarios\": 2"));
        assert!(json.contains("\"fingerprint\""));
        assert!(json.contains("\"divergences\""));
    }

    #[test]
    fn campaign_rejects_bad_counts_and_durations() {
        let err = campaign(&args(&["--count", "0"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--count"));
        let err = campaign(&args(&["--count", "1", "--duration", "-5"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--duration"));
    }

    #[test]
    fn simulate_scenario_runs_and_reports_phase_rows() {
        let plan = ScenarioPlan::from_json(
            r#"{
              "phases": [
                {"kind": "flash_crowd", "from_secs": 100.0, "until_secs": 250.0,
                 "query_rate_mult": 3.0, "hot_shift": 5},
                {"kind": "mass_leave", "from_secs": 300.0, "until_secs": 320.0,
                 "fraction": 0.2}
              ],
              "capacity_classes": [
                {"weight": 3.0, "files_mult": 2.0, "lifespan_mult": 1.5},
                {"weight": 1.0, "files_mult": 0.5, "lifespan_mult": 0.75}
              ],
              "repair": "promote"
            }"#,
        )
        .unwrap();
        let path = std::env::temp_dir().join("spnet_cli_scenario_run_test.json");
        std::fs::write(&path, plan.to_json()).unwrap();
        let out = simulate(&args(&[
            "--users",
            "100",
            "--cluster",
            "10",
            "--duration",
            "600",
            "--seed",
            "7",
            "--scenario",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("scenario phases / classes"));
        assert!(out.contains("2 / 2"));
        // The plan's own repair policy ("promote") drives the repair
        // rows, with no --repair flag given.
        assert!(out.contains("repair promotions"));
    }

    #[test]
    fn simulate_scenario_validation_errors_are_usage() {
        // Unknown field → exit 2 (the caller's file is malformed).
        let bad = std::env::temp_dir().join("spnet_cli_scenario_bad_test.json");
        std::fs::write(&bad, r#"{"phasez": []}"#).unwrap();
        let err = simulate(&args(&[
            "--users",
            "100",
            "--scenario",
            bad.to_str().unwrap(),
        ]))
        .unwrap_err();
        std::fs::remove_file(&bad).ok();
        assert_eq!(
            err.exit_code(),
            2,
            "scenario validation must be usage: {err}"
        );
        assert!(err.to_string().contains("phasez"));
        // Unreadable file → runtime (exit 1), like --faults.
        let err = simulate(&args(&[
            "--users",
            "100",
            "--scenario",
            "/nonexistent/spnet_scenario.json",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn simulate_scenario_rejects_conflicting_options() {
        let plan_path = std::env::temp_dir().join("spnet_cli_scenario_conflict_test.json");
        std::fs::write(&plan_path, ScenarioPlan::default().to_json()).unwrap();
        let plan = plan_path.to_str().unwrap();
        for conflict in [
            &["--reliability"] as &[_],
            &["--crash-storm"],
            &["--scale"],
            &["--trials", "2"],
            &["--repair", "promote"],
        ] {
            let err = simulate(&args(
                &[&["--users", "100", "--scenario", plan] as &[_], conflict].concat(),
            ))
            .unwrap_err();
            assert_eq!(
                err.exit_code(),
                2,
                "--scenario with {conflict:?} must be usage"
            );
        }
        std::fs::remove_file(&plan_path).ok();
        // --scenario-seed without --scenario is inert and therefore
        // rejected rather than silently ignored.
        let err = simulate(&args(&["--users", "100", "--scenario-seed", "9"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--scenario-seed"));
    }

    #[test]
    fn lint_rejects_unknown_option() {
        let err = lint(&args(&["--rootz", "."])).unwrap_err();
        assert!(err.to_string().contains("rootz"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn lint_rejects_malformed_config() {
        let dir = std::env::temp_dir().join("sp_cli_lint_cfg_test");
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = dir.join("bad_lint.toml");
        std::fs::write(&cfg, "[severity]\nD9 = \"deny\"\n").unwrap();
        let err = lint(&args(&["--config", cfg.to_str().unwrap()])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "config errors are usage errors: {err}");
        assert!(err.to_string().contains("D9"));
    }

    #[test]
    fn simulate_checkpoint_then_resume_is_bitwise_identical() {
        let dir = std::env::temp_dir().join("spnet_cli_ckpt_fast_test");
        std::fs::remove_dir_all(&dir).ok();
        let base = &[
            "--users",
            "100",
            "--cluster",
            "10",
            "--duration",
            "600",
            "--seed",
            "11",
        ];
        let uninterrupted = simulate(&args(base)).unwrap();
        let checkpointed = simulate(&args(
            &[
                base as &[_],
                &[
                    "--checkpoint-every",
                    "200",
                    "--checkpoint-dir",
                    dir.to_str().unwrap(),
                ],
            ]
            .concat(),
        ))
        .unwrap();
        assert_eq!(
            uninterrupted, checkpointed,
            "writing checkpoints must not perturb the run"
        );
        // Two checkpoints at t=200 and t=400.
        let snap = dir.join("checkpoint-000001.snap");
        assert!(snap.exists(), "missing {snap:?}");
        let resumed = simulate(&args(&["--resume", snap.to_str().unwrap()])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        // The resumed table reports the same core metrics; compare via
        // the flat smoke line against a freshly parsed uninterrupted
        // report (formats differ, numbers must not).
        for needle in ["queries simulated", "availability"] {
            assert!(resumed.contains(needle), "resumed report missing {needle}");
        }
        let field = |out: &str, label: &str| -> String {
            out.lines()
                .find(|l| l.contains(label))
                .unwrap_or_else(|| panic!("no {label} row in:\n{out}"))
                .to_string()
        };
        let strip = |row: String| row.split_whitespace().collect::<Vec<_>>().join(" ");
        for label in ["queries simulated", "results per query", "availability"] {
            assert_eq!(
                strip(field(&uninterrupted, label)),
                strip(field(&resumed, label)),
                "resume diverged on {label}"
            );
        }
    }

    #[test]
    fn simulate_scale_checkpoint_resume_matches_uninterrupted_json() {
        let dir = std::env::temp_dir().join("spnet_cli_ckpt_scale_test");
        std::fs::remove_dir_all(&dir).ok();
        let full_path = std::env::temp_dir().join("spnet_cli_ckpt_scale_full.json");
        let resumed_path = std::env::temp_dir().join("spnet_cli_ckpt_scale_resumed.json");
        let base = &[
            "--users",
            "4000",
            "--scale",
            "--duration",
            "120",
            "--seed",
            "5",
        ];
        simulate(&args(
            &[
                base as &[_],
                &["--metrics-json", full_path.to_str().unwrap()],
            ]
            .concat(),
        ))
        .unwrap();
        simulate(&args(
            &[
                base as &[_],
                &[
                    "--checkpoint-every",
                    "40",
                    "--checkpoint-dir",
                    dir.to_str().unwrap(),
                ],
            ]
            .concat(),
        ))
        .unwrap();
        let snap = dir.join("checkpoint-000001.snap");
        assert!(snap.exists(), "missing {snap:?}");
        // Resume at a different shard count than the run that produced
        // the checkpoint: the metrics JSON must still be byte-identical.
        let out = simulate(&args(&[
            "--resume",
            snap.to_str().unwrap(),
            "--shards",
            "3",
            "--metrics-json",
            resumed_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("scale run:"), "missing smoke line:\n{out}");
        let full = std::fs::read_to_string(&full_path).unwrap();
        let resumed = std::fs::read_to_string(&resumed_path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&full_path).ok();
        std::fs::remove_file(&resumed_path).ok();
        assert_eq!(
            full, resumed,
            "resumed scale metrics must be byte-identical"
        );
    }

    #[test]
    fn simulate_resume_conflicts_and_bad_snapshots_are_clean_errors() {
        let err = simulate(&args(&["--resume", "x.snap", "--users", "100"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--users"));
        let err = simulate(&args(&["--resume", "x.snap", "--crash-storm"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = simulate(&args(&["--resume", "/nonexistent/x.snap"])).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        let junk = std::env::temp_dir().join("spnet_cli_resume_junk_test.snap");
        std::fs::write(&junk, b"not a snapshot at all").unwrap();
        let err = simulate(&args(&["--resume", junk.to_str().unwrap()])).unwrap_err();
        std::fs::remove_file(&junk).ok();
        assert_eq!(err.exit_code(), 1);
        // --checkpoint-dir alone is inert and therefore rejected.
        let err = simulate(&args(&["--users", "100", "--checkpoint-dir", "d"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--checkpoint-every"));
    }

    #[test]
    fn simulate_overload_reports_ledger_and_manifest() {
        let out_path = std::env::temp_dir().join("spnet_cli_overload_manifest_test.json");
        let out = simulate(&args(&[
            "--users",
            "120",
            "--cluster",
            "12",
            "--lifespan",
            "500",
            "--duration",
            "600",
            "--seed",
            "3",
            "--query-rate",
            "0.05",
            "--overload",
            "--metrics-json",
            out_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(
            out.contains("overload delivered / shed / rejected"),
            "{out}"
        );
        assert!(out.contains("response latency p50 / p99"), "{out}");
        assert!(out.contains("\noverload run: delivered"), "{out}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        std::fs::remove_file(&out_path).ok();
        assert!(
            json.contains("\"overload_active\": true"),
            "manifest inactive"
        );
        assert!(json.contains("\"service_rate\""), "policy missing");
        assert!(
            json.contains("\"timeline\": [{\"t\": "),
            "queue-depth/utilization timeline missing"
        );
    }

    #[test]
    fn simulate_overload_policy_file_drives_the_run() {
        let policy = OverloadPolicy {
            service_rate: 0.5,
            queue_capacity: 4,
            ..OverloadPolicy::default()
        };
        let path = std::env::temp_dir().join("spnet_cli_overload_policy_test.json");
        std::fs::write(&path, policy.to_json()).unwrap();
        let out = simulate(&args(&[
            "--users",
            "100",
            "--cluster",
            "10",
            "--duration",
            "400",
            "--overload-policy",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("overload run:"), "{out}");
    }

    #[test]
    fn simulate_overload_conflicts_and_bad_policies_are_usage_errors() {
        let policy_path = std::env::temp_dir().join("spnet_cli_overload_conflict_test.json");
        std::fs::write(&policy_path, "{\"service_rate\": 1.0}").unwrap();
        let policy = policy_path.to_str().unwrap();
        for words in [
            &["--users", "100", "--overload", "--overload-policy", policy][..],
            &["--users", "100", "--overload", "--trials", "2"],
            &["--users", "100", "--overload", "--reliability"],
            &["--users", "100", "--overload", "--crash-storm"],
        ] {
            let err = simulate(&args(words)).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{words:?} must be usage: {err}");
        }
        // A scenario plan embeds its own policy, so the flags conflict.
        let sc_path = std::env::temp_dir().join("spnet_cli_overload_scenario_test.json");
        std::fs::write(&sc_path, ScenarioPlan::default().to_json()).unwrap();
        let err = simulate(&args(&[
            "--users",
            "100",
            "--scenario",
            sc_path.to_str().unwrap(),
            "--overload",
        ]))
        .unwrap_err();
        std::fs::remove_file(&sc_path).ok();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--overload"), "{err}");
        // Malformed and empty policies are rejected by name.
        let bad = std::env::temp_dir().join("spnet_cli_overload_bad_test.json");
        std::fs::write(&bad, "{\"discipline\": \"lifo\"}").unwrap();
        let err = simulate(&args(&[
            "--users",
            "100",
            "--overload-policy",
            bad.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("unknown discipline"), "{err}");
        std::fs::write(&bad, "{}").unwrap();
        let err = simulate(&args(&[
            "--users",
            "100",
            "--overload-policy",
            bad.to_str().unwrap(),
        ]))
        .unwrap_err();
        std::fs::remove_file(&bad).ok();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("empty policy"), "{err}");
        std::fs::remove_file(&policy_path).ok();
    }

    #[test]
    fn simulate_resume_rejects_overload_onto_plain_snapshot_by_name() {
        let dir = std::env::temp_dir().join("spnet_cli_ckpt_overload_reject_test");
        std::fs::remove_dir_all(&dir).ok();
        simulate(&args(&[
            "--users",
            "100",
            "--cluster",
            "10",
            "--duration",
            "600",
            "--checkpoint-every",
            "300",
            "--checkpoint-dir",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let snap = dir.join("checkpoint-000000.snap");
        assert!(snap.exists(), "missing {snap:?}");
        let err = simulate(&args(&["--resume", snap.to_str().unwrap(), "--overload"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "must be usage: {err}");
        assert!(
            err.to_string().contains("without an overload policy"),
            "{err}"
        );
        // An explicit policy can never ride a resume (snapshot wins).
        let err = simulate(&args(&[
            "--resume",
            snap.to_str().unwrap(),
            "--overload-policy",
            "p.json",
        ]))
        .unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("drop --overload-policy"), "{err}");
    }

    #[test]
    fn simulate_overload_checkpoint_resume_matches_uninterrupted() {
        let dir = std::env::temp_dir().join("spnet_cli_ckpt_overload_test");
        std::fs::remove_dir_all(&dir).ok();
        let base = &[
            "--users",
            "100",
            "--cluster",
            "10",
            "--lifespan",
            "500",
            "--duration",
            "600",
            "--seed",
            "11",
            "--query-rate",
            "0.05",
            "--overload",
        ];
        let uninterrupted = simulate(&args(base)).unwrap();
        simulate(&args(
            &[
                base as &[_],
                &[
                    "--checkpoint-every",
                    "200",
                    "--checkpoint-dir",
                    dir.to_str().unwrap(),
                ],
            ]
            .concat(),
        ))
        .unwrap();
        let snap = dir.join("checkpoint-000001.snap");
        assert!(snap.exists(), "missing {snap:?}");
        // `--overload` on resume is a (satisfied) assertion here.
        let resumed = simulate(&args(&["--resume", snap.to_str().unwrap(), "--overload"])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let smoke = |out: &str| {
            out.lines()
                .find(|l| l.starts_with("overload run:") || l.starts_with("resumed run"))
                .map(str::to_string)
        };
        assert!(smoke(&uninterrupted).is_some(), "{uninterrupted}");
        // The resumed table reports the same core metrics.
        let field = |out: &str, label: &str| -> String {
            out.lines()
                .find(|l| l.contains(label))
                .unwrap_or_else(|| panic!("no {label} row in:\n{out}"))
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" ")
        };
        for label in ["queries simulated", "results per query", "availability"] {
            assert_eq!(
                field(&uninterrupted, label),
                field(&resumed, label),
                "resume diverged on {label}"
            );
        }
    }

    #[test]
    fn simulate_scale_overload_smoke_is_shard_invariant() {
        let a_path = std::env::temp_dir().join("spnet_cli_scale_overload_a.json");
        let b_path = std::env::temp_dir().join("spnet_cli_scale_overload_b.json");
        let base = &[
            "--users",
            "4000",
            "--scale",
            "--duration",
            "120",
            "--seed",
            "5",
            "--query-rate",
            "0.05",
            "--overload",
        ];
        let one = simulate(&args(
            &[
                base as &[_],
                &["--shards", "1", "--metrics-json", a_path.to_str().unwrap()],
            ]
            .concat(),
        ))
        .unwrap();
        let two = simulate(&args(
            &[
                base as &[_],
                &["--shards", "2", "--metrics-json", b_path.to_str().unwrap()],
            ]
            .concat(),
        ))
        .unwrap();
        assert!(one.contains(", overload delivered"), "{one}");
        let smoke = |out: &str| {
            out.lines()
                .find(|l| l.starts_with("scale run:"))
                .unwrap()
                .to_string()
        };
        assert_eq!(smoke(&one), smoke(&two), "overload smoke line diverged");
        let a = std::fs::read_to_string(&a_path).unwrap();
        let b = std::fs::read_to_string(&b_path).unwrap();
        std::fs::remove_file(&a_path).ok();
        std::fs::remove_file(&b_path).ok();
        assert!(a.contains("\"ov_delivered\""), "ov counters missing");
        assert_eq!(a, b, "scale overload metrics must be shard invariant");
    }

    #[test]
    fn simulate_scale_injected_shard_panic_exits_with_diagnostics() {
        let err = simulate(&args(&[
            "--users",
            "4000",
            "--scale",
            "--shards",
            "2",
            "--duration",
            "120",
            "--inject-shard-panic",
            "1:40",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 1, "a dead shard must fail the run");
        let msg = err.to_string();
        assert!(
            msg.contains("shard 1"),
            "diagnostics must name the shard: {msg}"
        );
        assert!(
            msg.contains("tick 40"),
            "diagnostics must name the tick: {msg}"
        );
        // Without --scale the supervisor options are usage errors.
        let err = simulate(&args(&["--users", "100", "--inject-shard-panic", "0:1"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err =
            simulate(&args(&["--users", "100", "--barrier-timeout-ticks", "50"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        // Malformed spec.
        let err = simulate(&args(&[
            "--users",
            "100",
            "--scale",
            "--inject-shard-panic",
            "nope",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("SHARD:TICK"));
    }

    #[test]
    fn campaign_quarantines_injected_panic_and_resume_completes() {
        let dir = std::env::temp_dir().join("spnet_cli_campaign_quarantine_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let report_path = dir.join("report.json");
        let repro_dir = dir.join("repros");
        let base = &[
            "--count",
            "3",
            "--seed",
            "11",
            "--users",
            "60",
            "--cluster",
            "10",
            "--duration",
            "300",
            "--threads",
            "1",
        ];
        let err = campaign(&args(
            &[
                base as &[_],
                &[
                    "--inject-panic",
                    "1",
                    "--report",
                    report_path.to_str().unwrap(),
                    "--repro-dir",
                    repro_dir.to_str().unwrap(),
                ],
            ]
            .concat(),
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 1, "quarantined panics must fail the gate");
        assert!(err.to_string().contains("quarantined"));
        assert!(repro_dir.join("quarantine_1.json").exists());
        assert!(repro_dir.join("quarantine_1.snap").exists());
        let report = std::fs::read_to_string(&report_path).unwrap();
        assert!(report.contains("injected campaign panic"));
        assert!(report.contains("\"completed\""));
        // Resuming from the partial report (without the inject hook)
        // re-runs only the quarantined scenario and comes out green
        // with the same fingerprint as an uninterrupted campaign.
        let clean = campaign(&args(base)).unwrap();
        let resumed = campaign(&args(&["--resume", report_path.to_str().unwrap()])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let fp = |out: &str| -> String {
            out.lines()
                .find(|l| l.contains("fingerprint"))
                .expect("fingerprint row")
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" ")
        };
        assert_eq!(
            fp(&clean),
            fp(&resumed),
            "resumed campaign must reproduce the uninterrupted fingerprint"
        );
        // Option overrides alongside --resume are conflicts.
        let err = campaign(&args(&["--resume", "r.json", "--count", "5"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--count"));
    }

    #[test]
    fn lint_clean_workspace_passes() {
        // Run against the real workspace root (two levels above the
        // sp-cli manifest) with the checked-in policy: this is the
        // same invocation the CI gate performs.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let out = lint(&args(&["--root", root.to_str().unwrap()])).unwrap();
        assert!(out.contains("sp-lint:"), "unexpected report: {out}");
        assert!(out.contains("0 error(s)"), "unexpected report: {out}");
    }
}
