//! Minimal `--key value` / `--flag` argument parser.
//!
//! The approved dependency set has no CLI crate, and the surface here
//! is small enough that a hand-rolled parser with good error messages
//! beats pulling one in.

use std::collections::BTreeMap;

/// Parsed arguments: positional words plus `--key [value]` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// A parse or lookup failure, with the message shown to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses a raw argument list (without the program name).
    ///
    /// `--key value` pairs become options; a `--key` followed by
    /// another `--…` token (or nothing) becomes a boolean flag;
    /// everything else is positional.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err(ArgError("bare `--` is not a valid option".into()));
                }
                let takes_value = matches!(iter.peek(), Some(next) if !next.starts_with("--"));
                if takes_value {
                    if let Some(value) = iter.next() {
                        args.options.insert(key.to_string(), value);
                    }
                } else {
                    args.flags.push(key.to_string());
                }
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// The positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Raw option value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("--{name}: cannot parse {raw:?}"))),
        }
    }

    /// Required typed option.
    ///
    /// (Every current subcommand ships a sensible default instead, but
    /// the parser keeps the strict variant for future commands and for
    /// tests.)
    #[allow(dead_code)]
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let raw = self
            .get(name)
            .ok_or_else(|| ArgError(format!("missing required option --{name}")))?;
        raw.parse()
            .map_err(|_| ArgError(format!("--{name}: cannot parse {raw:?}")))
    }

    /// Comma-separated list option with a default.
    pub fn get_list_or<T>(&self, name: &str, default: &[T]) -> Result<Vec<T>, ArgError>
    where
        T: std::str::FromStr + Clone,
    {
        match self.get(name) {
            None => Ok(default.to_vec()),
            Some(raw) => raw
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|_| ArgError(format!("--{name}: cannot parse {s:?}")))
                })
                .collect(),
        }
    }

    /// Rejects unknown options/flags (call after reading all expected
    /// ones).
    pub fn ensure_known(&self, known: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys().chain(self.flags.iter()) {
            if !known.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown option --{key} (expected one of: {})",
                    known.join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn mixes_positional_options_and_flags() {
        let a = parse(&["evaluate", "--users", "1000", "--redundancy", "--ttl", "4"]);
        assert_eq!(a.positional(), ["evaluate"]);
        assert_eq!(a.get("users"), Some("1000"));
        assert!(a.flag("redundancy"));
        assert_eq!(a.get_or("ttl", 7u16).unwrap(), 4);
    }

    #[test]
    fn defaults_and_requirements() {
        let a = parse(&["--users", "500"]);
        assert_eq!(a.get_or("cluster", 10usize).unwrap(), 10);
        assert_eq!(a.require::<usize>("users").unwrap(), 500);
        assert!(a.require::<usize>("reach").is_err());
    }

    #[test]
    fn parse_errors_name_the_option() {
        let a = parse(&["--users", "abc"]);
        let err = a.require::<usize>("users").unwrap_err();
        assert!(err.0.contains("users"));
        assert!(err.0.contains("abc"));
    }

    #[test]
    fn list_options() {
        let a = parse(&["--clusters", "1, 10,100"]);
        assert_eq!(
            a.get_list_or::<usize>("clusters", &[5]).unwrap(),
            vec![1, 10, 100]
        );
        let b = parse(&[]);
        assert_eq!(b.get_list_or::<usize>("clusters", &[5]).unwrap(), vec![5]);
    }

    #[test]
    fn trailing_flag() {
        let a = parse(&["--verbose"]);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn unknown_options_rejected() {
        let a = parse(&["--users", "10", "--bogus", "1"]);
        assert!(a.ensure_known(&["users"]).is_err());
        assert!(a.ensure_known(&["users", "bogus"]).is_ok());
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        // A value not starting with -- is consumed as a value even if
        // it begins with a dash.
        let a = parse(&["--offset", "-5"]);
        assert_eq!(a.get_or("offset", 0i64).unwrap(), -5);
    }

    #[test]
    fn bare_double_dash_is_an_error() {
        assert!(Args::parse(vec!["--".to_string()]).is_err());
    }
}
