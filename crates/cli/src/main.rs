//! `spnet` — command-line front end for the super-peer network design
//! and evaluation library.
//!
//! Run `spnet help` for usage. Every subcommand is a thin wrapper over
//! the `sp-core` public API, so anything the CLI does is equally
//! available as a library call.

mod args;
mod commands;
mod error;
mod usage;

use std::process::ExitCode;

use args::Args;
use error::CliError;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(CliError::from(e).exit_code());
        }
    };
    let command = parsed
        .positional()
        .first()
        .map(String::as_str)
        .unwrap_or("help");
    let result = match command {
        "evaluate" => commands::evaluate(&parsed),
        "design" => commands::design_cmd(&parsed),
        "simulate" => commands::simulate(&parsed),
        "campaign" => commands::campaign(&parsed),
        "sweep" => commands::sweep(&parsed),
        "epl" => commands::epl(&parsed),
        "lint" => commands::lint(&parsed),
        "help" | "--help" | "-h" => Ok(commands::help()),
        other => Err(CliError::Usage(format!(
            "unknown command {other:?} — run `spnet help`"
        ))),
    };
    match result {
        Ok(output) => {
            // Write without panicking when the reader goes away
            // (`spnet epl | head` must not backtrace on SIGPIPE).
            use std::io::Write;
            let mut stdout = std::io::stdout().lock();
            match writeln!(stdout, "{output}").and_then(|()| stdout.flush()) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: cannot write output: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
