//! The CLI's error type and exit-code policy.
//!
//! Every failure surfaces as a single `error: …` line on stderr — no
//! panics, no backtraces — with a conventional exit code: `2` for
//! usage errors (unknown options, malformed flag values) and `1` for
//! runtime failures (unreadable files, malformed plan JSON, a failed
//! design procedure).

use crate::args::ArgError;

/// A CLI failure, split by whose fault it is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The invocation was malformed (bad flag, unparseable value);
    /// exits with code 2.
    Usage(String),
    /// The invocation was fine but the work failed (I/O, malformed
    /// input file, infeasible design); exits with code 1.
    Runtime(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Runtime(_) => 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) | CliError::Runtime(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Usage(e.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_convention() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Runtime("x".into()).exit_code(), 1);
    }

    #[test]
    fn arg_errors_are_usage_errors() {
        let e: CliError = ArgError("bad flag".into()).into();
        assert_eq!(e, CliError::Usage("bad flag".into()));
        assert_eq!(e.to_string(), "bad flag");
    }
}
