//! Plain-text report rendering for experiment output.
//!
//! The reproduction binaries print the same rows/series the paper's
//! tables and figures report; [`Table`] lays them out with aligned
//! columns, and the formatting helpers render loads and confidence
//! intervals compactly.

use sp_stats::ConfidenceInterval;

/// A simple fixed-width text table.
///
/// # Examples
///
/// ```
/// use sp_core::Table;
///
/// let mut t = Table::new(vec!["cluster", "load"]);
/// t.row(vec!["10".into(), "1.5e6".into()]);
/// let s = t.render();
/// assert!(s.contains("cluster"));
/// assert!(s.contains("1.5e6"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded; longer
    /// rows extend the layout.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = w - cell.chars().count();
                // Right-align numeric-looking cells, left-align text.
                if cell
                    .chars()
                    .next()
                    .map(|c| c.is_ascii_digit() || c == '-' || c == '+')
                    == Some(true)
                {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                } else {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&render_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Scientific formatting with 3 significant digits (`1.23e6`).
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    format!("{x:.3e}")
}

/// Formats a confidence interval as `mean ± half`.
pub fn ci(ci: &ConfidenceInterval) -> String {
    if ci.half_width > 0.0 {
        format!("{} ±{}", sci(ci.mean), sci(ci.half_width))
    } else {
        sci(ci.mean)
    }
}

/// Formats a ratio as a signed percentage change (`-79.3%`).
pub fn pct_change(new: f64, old: f64) -> String {
    if old == 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.1}%", (new - old) / old * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["much longer name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // Numeric cells right-aligned: "1" ends at the same column as
        // "12345".
        let c1 = lines[2].rfind('1').unwrap();
        let c2 = lines[3].rfind('5').unwrap();
        assert_eq!(c1, c2);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn table_handles_ragged_rows() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x".into(), "extra".into()]);
        t.row(vec![]);
        let s = t.render();
        assert!(s.contains("extra"));
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(sci(0.0), "0");
        assert!(sci(1_234_567.0).starts_with("1.235e6"));
        assert!(sci(-0.00123).contains("e-3"));
    }

    #[test]
    fn pct_change_formatting() {
        assert_eq!(pct_change(50.0, 100.0), "-50.0%");
        assert_eq!(pct_change(110.0, 100.0), "+10.0%");
        assert_eq!(pct_change(1.0, 0.0), "n/a");
    }

    #[test]
    fn ci_formatting() {
        let with = ConfidenceInterval {
            mean: 100.0,
            half_width: 5.0,
            count: 10,
        };
        assert!(ci(&with).contains('±'));
        let without = ConfidenceInterval {
            mean: 100.0,
            half_width: 0.0,
            count: 1,
        };
        assert!(!ci(&without).contains('±'));
    }
}
