//! Cluster-size sweeps — Figures 4, 5, 6 (and A-13/A-14).
//!
//! The paper's central tradeoff (rule #1): sweeping cluster size for
//! four systems — strongly connected at TTL 1 (best case) and
//! power-law at average outdegree 3.1 / TTL 7 (Gnutella-like), each
//! with and without 2-redundancy — shows aggregate load falling with a
//! knee while individual super-peer load climbs, with the documented
//! exceptions (incoming-bandwidth dip at `cluster = N`, processing
//! upturn at tiny clusters from connection overhead).

use sp_model::config::{Config, GraphType};
use sp_model::trials::{run_trials, TrialOptions, TrialSummary};

use super::{run_cells, Fidelity};
use crate::report::{sci, Table};

/// One of the sweep's systems.
#[derive(Debug, Clone)]
pub struct SystemSpec {
    /// Display label.
    pub label: String,
    /// Overlay family.
    pub graph_type: GraphType,
    /// 2-redundancy on/off.
    pub redundancy: bool,
    /// Query TTL.
    pub ttl: u16,
    /// Average outdegree (power-law only).
    pub avg_outdegree: f64,
}

/// The four systems of Figures 4–6.
pub fn paper_systems() -> Vec<SystemSpec> {
    vec![
        SystemSpec {
            label: "Strong".into(),
            graph_type: GraphType::StronglyConnected,
            redundancy: false,
            ttl: 1,
            avg_outdegree: 3.1,
        },
        SystemSpec {
            label: "Strong+Red".into(),
            graph_type: GraphType::StronglyConnected,
            redundancy: true,
            ttl: 1,
            avg_outdegree: 3.1,
        },
        SystemSpec {
            label: "Power3.1".into(),
            graph_type: GraphType::PowerLaw,
            redundancy: false,
            ttl: 7,
            avg_outdegree: 3.1,
        },
        SystemSpec {
            label: "Power3.1+Red".into(),
            graph_type: GraphType::PowerLaw,
            redundancy: true,
            ttl: 7,
            avg_outdegree: 3.1,
        },
    ]
}

/// The cluster sizes the full-range sweep evaluates (Figures 4/5).
pub fn full_range_cluster_sizes(graph_size: usize) -> Vec<usize> {
    [
        1usize, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10_000, 20_000,
    ]
    .into_iter()
    .filter(|&c| c <= graph_size)
    .collect()
}

/// The zoomed-in sizes of Figure 6 (1–300).
pub fn small_cluster_sizes(graph_size: usize) -> Vec<usize> {
    [1usize, 2, 5, 10, 20, 50, 100, 150, 200, 300]
        .into_iter()
        .filter(|&c| c <= graph_size)
        .collect()
}

/// One (cluster size × system) evaluation.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Cluster size evaluated.
    pub cluster_size: usize,
    /// System label.
    pub system: String,
    /// Full trial summary.
    pub summary: TrialSummary,
}

/// The sweep result: cells in (cluster size, system) order.
#[derive(Debug, Clone)]
pub struct SweepData {
    /// Cluster sizes on the x axis.
    pub cluster_sizes: Vec<usize>,
    /// System labels in column order.
    pub systems: Vec<String>,
    /// Row-major cells: `cells[ci * systems + si]`.
    pub cells: Vec<SweepCell>,
}

impl SweepData {
    /// Looks up a cell.
    pub fn cell(&self, cluster_idx: usize, system_idx: usize) -> &SweepCell {
        &self.cells[cluster_idx * self.systems.len() + system_idx]
    }

    /// Generic renderer over a metric extractor.
    pub fn render_metric<F: Fn(&TrialSummary) -> f64>(&self, title: &str, f: F) -> String {
        let mut headers = vec!["ClusterSize".to_string()];
        headers.extend(self.systems.iter().cloned());
        let mut t = Table::new(headers);
        for (ci, &cs) in self.cluster_sizes.iter().enumerate() {
            let mut row = vec![cs.to_string()];
            for si in 0..self.systems.len() {
                row.push(sci(f(&self.cell(ci, si).summary)));
            }
            t.row(row);
        }
        format!("{title}\n{}", t.render())
    }

    /// Figure 4: aggregate (in + out) bandwidth.
    pub fn render_fig4(&self) -> String {
        self.render_metric(
            "Figure 4 — aggregate bandwidth (in+out, bps) vs cluster size",
            |s| s.agg_total_bw.mean,
        )
    }

    /// Figure 5: individual super-peer incoming bandwidth.
    pub fn render_fig5(&self) -> String {
        self.render_metric(
            "Figure 5 — individual super-peer incoming bandwidth (bps) vs cluster size",
            |s| s.sp_in_bw.mean,
        )
    }

    /// Figure 6: individual super-peer processing load.
    pub fn render_fig6(&self) -> String {
        self.render_metric(
            "Figure 6 — individual super-peer processing load (Hz) vs cluster size",
            |s| s.sp_proc.mean,
        )
    }
}

/// Runs the sweep. `query_rate` overrides Table 1's rate (Appendix C
/// uses 9.26 × 10⁻⁴ so queries:joins ≈ 1).
///
/// The (cluster size × system) cells are independent, so they are
/// fanned over a bounded worker pool ([`run_cells`]) within
/// `fid.threads`; whatever budget multiple is left over parallelizes
/// each cell's trials and source loops. Cell order — and every
/// reported number — is independent of the thread count.
pub fn run(
    graph_size: usize,
    cluster_sizes: &[usize],
    systems: &[SystemSpec],
    query_rate: Option<f64>,
    fid: &Fidelity,
) -> SweepData {
    // Row-major (cluster size, system) grid, evaluated as independent
    // cells.
    let specs: Vec<(usize, &SystemSpec)> = cluster_sizes
        .iter()
        .flat_map(|&cs| systems.iter().map(move |spec| (cs, spec)))
        .collect();
    let cells = run_cells(specs.len(), fid.threads, |idx, inner| {
        let (cs, spec) = specs[idx];
        let mut cfg = Config {
            graph_type: spec.graph_type,
            graph_size,
            cluster_size: cs,
            avg_outdegree: spec.avg_outdegree,
            ttl: spec.ttl,
            ..Config::default()
        };
        if let Some(qr) = query_rate {
            cfg.query_rate = qr;
        }
        // Redundancy requires room for two partners.
        if spec.redundancy && cs >= 2 {
            cfg.redundancy_k = 2;
        }
        // Large clusters mean few clusters, so one N(c, 0.2c) draw
        // swings the whole population by ±20% — and those instances
        // are by far the cheapest to analyze. Buy the variance back
        // with more trials.
        let n_clusters = (graph_size / cs).max(1);
        let trial_boost = if n_clusters < 20 {
            6
        } else if n_clusters < 100 {
            3
        } else {
            1
        };
        let summary = run_trials(
            &cfg,
            &TrialOptions {
                trials: fid.trials * trial_boost,
                seed: fid.seed,
                max_sources: fid.max_sources,
                threads: inner,
            },
        );
        SweepCell {
            cluster_size: cs,
            system: spec.label.clone(),
            summary,
        }
    });
    SweepData {
        cluster_sizes: cluster_sizes.to_vec(),
        systems: systems.iter().map(|s| s.label.clone()).collect(),
        cells,
    }
}

/// The Appendix C query rate (queries:joins ≈ 1 by the paper's
/// mean-lifespan accounting).
pub const LOW_QUERY_RATE: f64 = 9.26e-4;

/// A query rate low enough that join traffic dominates outright
/// (queries:joins ≈ 0.1 against the *effective* per-node join rate
/// `E[1/lifespan]`, which the heavy-tailed session law inflates).
pub const JOIN_DOMINATED_QUERY_RATE: f64 = 2.0e-4;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> SweepData {
        run(
            600,
            &[5, 30, 100],
            &paper_systems(),
            None,
            &Fidelity::quick(),
        )
    }

    #[test]
    fn rule_1_shapes_hold_at_small_scale() {
        let data = tiny_sweep();
        // Strong system: aggregate falls, individual incoming rises
        // from cluster 5 to cluster 100.
        let strong_small = &data.cell(0, 0).summary;
        let strong_large = &data.cell(2, 0).summary;
        assert!(strong_large.agg_total_bw.mean < strong_small.agg_total_bw.mean);
        assert!(strong_large.sp_in_bw.mean > strong_small.sp_in_bw.mean);
    }

    #[test]
    fn redundancy_lowers_individual_load_in_sweep() {
        let data = tiny_sweep();
        // At cluster 100: Strong vs Strong+Red.
        let plain = &data.cell(2, 0).summary;
        let red = &data.cell(2, 1).summary;
        assert!(red.sp_total_bw.mean < plain.sp_total_bw.mean);
    }

    #[test]
    fn renderers_emit_all_rows() {
        let data = tiny_sweep();
        for rendered in [data.render_fig4(), data.render_fig5(), data.render_fig6()] {
            assert!(rendered.contains("ClusterSize"));
            assert!(rendered.contains("Power3.1+Red"));
            assert_eq!(rendered.lines().count(), 2 + 1 + 3); // title + header + sep + rows
        }
    }

    #[test]
    fn low_query_rate_flattens_aggregate_curve() {
        // Appendix C: with queries:joins ≈ 1, the aggregate savings of
        // large clusters shrink.
        let systems = vec![paper_systems().remove(0)];
        let normal = run(600, &[5, 100], &systems, None, &Fidelity::quick());
        let low = run(
            600,
            &[5, 100],
            &systems,
            Some(LOW_QUERY_RATE),
            &Fidelity::quick(),
        );
        let drop = |d: &SweepData| {
            d.cell(0, 0).summary.agg_total_bw.mean / d.cell(1, 0).summary.agg_total_bw.mean
        };
        assert!(
            drop(&normal) > drop(&low),
            "normal ratio {} vs low ratio {}",
            drop(&normal),
            drop(&low)
        );
    }

    #[test]
    fn cluster_size_lists_respect_graph_size() {
        assert!(full_range_cluster_sizes(100).iter().all(|&c| c <= 100));
        assert!(small_cluster_sizes(50).iter().all(|&c| c <= 50));
    }
}
