//! The Gnutella redesign walk-through — Figures 11 and 12
//! (Section 5.2).
//!
//! "Today's" system is the measured 2001-era Gnutella: ~20 000 peers,
//! every peer a super-peer (cluster size 1), power-law overlay at
//! average outdegree 3.1, TTL 7. The global design procedure is then
//! run with the paper's constraints (100 Kbps each way, 10 MHz, 100
//! open connections, reach 3000 peers) and the resulting topology is
//! compared on aggregate load (Figure 11) and the full per-node load
//! rank curve (Figure 12), with and without 2-redundancy.

use sp_design::procedure::{
    design, DesignConstraints, DesignError, DesignGoals, DesignStep, EvalOptions,
};
use sp_model::analysis::{analyze, AnalysisOptions};
use sp_model::config::Config;
use sp_model::instance::NetworkInstance;
use sp_model::load::Load;
use sp_model::query_model::QueryModel;
use sp_model::trials::{run_trials, TrialOptions, TrialSummary};
use sp_stats::percentile::RankSummary;
use sp_stats::SpRng;

use super::Fidelity;
use crate::report::{pct_change, sci, Table};

/// One compared topology.
#[derive(Debug, Clone)]
pub struct TopologyReport {
    /// Display label.
    pub label: String,
    /// The configuration.
    pub config: Config,
    /// Trial-averaged evaluation.
    pub summary: TrialSummary,
    /// Per-node outgoing-bandwidth rank curve from one representative
    /// instance (Figure 12), decreasing.
    pub rank_curve: Vec<f64>,
    /// Landmark percentiles of the rank curve.
    pub rank_summary: Option<RankSummary>,
}

/// The full comparison.
#[derive(Debug, Clone)]
pub struct RedesignData {
    /// Today's Gnutella, the procedure's output, and the output with
    /// redundancy.
    pub topologies: Vec<TopologyReport>,
    /// The design procedure's decision log.
    pub design_steps: Vec<DesignStep>,
}

impl RedesignData {
    /// Figure 11: the aggregate-load table.
    pub fn render_fig11(&self) -> String {
        let mut t = Table::new(vec![
            "Topology",
            "In bw (bps)",
            "Out bw (bps)",
            "Proc (Hz)",
            "Results",
            "EPL",
            "vs today (bw)",
        ]);
        let today_bw = self.topologies[0].summary.agg_total_bw.mean;
        for top in &self.topologies {
            t.row(vec![
                top.label.clone(),
                sci(top.summary.agg_in_bw.mean),
                sci(top.summary.agg_out_bw.mean),
                sci(top.summary.agg_proc.mean),
                format!("{:.0}", top.summary.results.mean),
                format!("{:.1}", top.summary.epl.mean),
                pct_change(top.summary.agg_total_bw.mean, today_bw),
            ]);
        }
        format!(
            "Figure 11 — aggregate load: today's Gnutella vs the redesigned topology\n{}",
            t.render()
        )
    }

    /// Figure 12: landmark points of the per-node outgoing-bandwidth
    /// rank curves.
    pub fn render_fig12(&self) -> String {
        let mut t = Table::new(vec![
            "Topology",
            "Max (bps)",
            "Top 0.1%",
            "Top 10% (neck)",
            "Median",
            "Min",
        ]);
        for top in &self.topologies {
            match &top.rank_summary {
                Some(r) => t.row(vec![
                    top.label.clone(),
                    sci(r.max),
                    sci(r.top_0_1_pct),
                    sci(r.top_10_pct),
                    sci(r.median),
                    sci(r.min),
                ]),
                None => t.row(vec![top.label.clone(), "—".into()]),
            }
        }
        format!(
            "Figure 12 — per-node outgoing bandwidth rank-curve landmarks\n{}",
            t.render()
        )
    }

    /// The procedure's decision log.
    pub fn render_design_log(&self) -> String {
        let mut out = String::from("Design-procedure log (Figure 10):\n");
        for s in &self.design_steps {
            out.push_str("  - ");
            out.push_str(&s.description);
            out.push('\n');
        }
        out
    }
}

/// The paper's Section 5.2 constraints.
pub fn paper_constraints() -> DesignConstraints {
    DesignConstraints {
        max_sp_load: Load {
            in_bw: 100_000.0,
            out_bw: 100_000.0,
            proc: 10e6,
        },
        max_connections: 100.0,
        allow_redundancy: false,
    }
}

/// Runs the comparison.
///
/// # Errors
///
/// Propagates design-procedure failure.
pub fn run(
    graph_size: usize,
    reach_peers: usize,
    constraints: &DesignConstraints,
    fid: &Fidelity,
) -> Result<RedesignData, DesignError> {
    let today_cfg = Config {
        graph_size,
        cluster_size: 1,
        avg_outdegree: 3.1,
        ttl: 7,
        ..Config::default()
    };

    let goals = DesignGoals {
        num_users: graph_size,
        desired_reach_peers: reach_peers,
    };
    let outcome = design(
        &goals,
        constraints,
        &Config::default(),
        &EvalOptions {
            trials: fid.trials.max(1),
            max_sources: fid.max_sources.unwrap_or(300).min(400),
            seed: fid.seed,
            max_ttl: 8,
        },
    )?;
    let new_cfg = outcome.config.clone();
    let mut red_cfg = new_cfg.clone().with_redundancy(true);
    if red_cfg.cluster_size < 2 {
        red_cfg.cluster_size = 2;
    }

    let evaluate = |cfg: &Config| {
        run_trials(
            cfg,
            &TrialOptions {
                trials: fid.trials,
                seed: fid.seed,
                max_sources: fid.max_sources,
                threads: fid.threads,
            },
        )
    };

    let rank = |cfg: &Config| -> (Vec<f64>, Option<RankSummary>) {
        // One representative instance, exact (all sources) so every
        // node's load is fully accounted.
        let mut rng = SpRng::seed_from_u64(fid.seed ^ 0x000F_1612);
        let inst = NetworkInstance::generate(cfg, &mut rng).expect("valid config");
        let model = QueryModel::from_config(&cfg.query_model);
        let result = analyze(&inst, &model, &AnalysisOptions::default(), &mut rng);
        let loads = result.out_bw_loads();
        let summary = RankSummary::from_loads(&loads);
        (sp_stats::rank_curve(&loads), summary)
    };

    let mut topologies = Vec::new();
    for (label, cfg) in [
        ("Today".to_string(), today_cfg),
        ("New".to_string(), new_cfg),
        ("New+Red".to_string(), red_cfg),
    ] {
        let summary = evaluate(&cfg);
        let (rank_curve, rank_summary) = rank(&cfg);
        topologies.push(TopologyReport {
            label,
            config: cfg,
            summary,
            rank_curve,
            rank_summary,
        });
    }

    Ok(RedesignData {
        topologies,
        design_steps: outcome.steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RedesignData {
        // Scaled-down walk-through: 2000 users, reach 600.
        run(2000, 600, &paper_constraints(), &Fidelity::quick()).expect("feasible")
    }

    #[test]
    fn redesign_beats_today_on_aggregate_load() {
        let d = small();
        let today = &d.topologies[0].summary;
        let new = &d.topologies[1].summary;
        assert!(
            new.agg_total_bw.mean < 0.6 * today.agg_total_bw.mean,
            "new {} vs today {}",
            new.agg_total_bw.mean,
            today.agg_total_bw.mean
        );
        assert!(new.epl.mean < today.epl.mean);
    }

    #[test]
    fn redundancy_barely_moves_aggregate() {
        let d = small();
        let new = d.topologies[1].summary.agg_total_bw.mean;
        let red = d.topologies[2].summary.agg_total_bw.mean;
        assert!(((red - new) / new).abs() < 0.25, "new {new} vs red {red}");
    }

    #[test]
    fn rank_curves_cover_every_node() {
        let d = small();
        let today = &d.topologies[0];
        assert_eq!(today.rank_curve.len(), 2000);
        assert!(today.rank_curve.windows(2).all(|w| w[0] >= w[1]));
        assert!(today.rank_summary.is_some());
    }

    #[test]
    fn renderers_compare_topologies() {
        let d = small();
        let f11 = d.render_fig11();
        assert!(f11.contains("Today") && f11.contains("New+Red"));
        assert!(f11.contains('%'));
        let f12 = d.render_fig12();
        assert!(f12.contains("neck"));
        assert!(!d.render_design_log().is_empty());
    }
}
