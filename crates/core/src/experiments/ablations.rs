//! Ablations beyond the paper's evaluation: generalized k-redundancy,
//! overlay-family comparison, and population tail sensitivity.
//!
//! The paper motivates each of these but stops short of evaluating
//! them:
//!
//! * **k > 2 redundancy** — "because the number of open connections
//!   increases so quickly as k increases, in this paper we will only
//!   consider the case where k = 2" (Section 3.2). The sweep here
//!   quantifies that wall: individual load keeps falling ~1/k while
//!   connections grow ~k·d and join traffic grows ~k.
//! * **Overlay family** — Figures 7 and 12 blame the power law's degree
//!   *spread* for load concentration. Holding mean degree fixed and
//!   swapping PLOD for Erdős–Rényi (Poisson spread) and random-regular
//!   (no spread) isolates that claim.
//! * **File-count tail** — the synthesized Saroiu-style population uses
//!   a log-normal; re-running rule #1 under a bounded Pareto checks the
//!   rules of thumb don't hinge on the tail family (DESIGN.md §4).

use sp_model::config::{Config, GraphType};
use sp_model::population::{FileTail, PopulationModel};
use sp_model::trials::{run_trials, TrialOptions, TrialSummary};

use super::{run_cells, Fidelity};
use crate::report::{sci, Table};

fn evaluate(cfg: &Config, fid: &Fidelity, threads: usize) -> TrialSummary {
    run_trials(
        cfg,
        &TrialOptions {
            trials: fid.trials,
            seed: fid.seed,
            max_sources: fid.max_sources,
            threads,
        },
    )
}

// ---------------------------------------------------------------------
// k-redundancy sweep
// ---------------------------------------------------------------------

/// One k of the redundancy sweep.
#[derive(Debug, Clone)]
pub struct KPoint {
    /// Partners per virtual super-peer.
    pub k: usize,
    /// Evaluation.
    pub summary: TrialSummary,
    /// Open connections per partner (clients + k per neighbor +
    /// co-partners), computed from the configuration means.
    pub connections_per_partner: f64,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct KSweepData {
    /// Points in k order.
    pub points: Vec<KPoint>,
    /// Cluster size used.
    pub cluster_size: usize,
}

impl KSweepData {
    /// Renders the tradeoff table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "k",
            "SP bw (bps)",
            "SP proc (Hz)",
            "Agg bw (bps)",
            "Agg proc (Hz)",
            "Conns/partner",
        ]);
        for p in &self.points {
            t.row(vec![
                p.k.to_string(),
                sci(p.summary.sp_total_bw.mean),
                sci(p.summary.sp_proc.mean),
                sci(p.summary.agg_total_bw.mean),
                sci(p.summary.agg_proc.mean),
                format!("{:.0}", p.connections_per_partner),
            ]);
        }
        format!(
            "Ablation — k-redundancy beyond the paper's k = 2 (cluster size {})\n{}",
            self.cluster_size,
            t.render()
        )
    }
}

/// Sweeps the redundancy factor.
pub fn redundancy_k_sweep(
    graph_size: usize,
    cluster_size: usize,
    ks: &[usize],
    fid: &Fidelity,
) -> KSweepData {
    let valid: Vec<usize> = ks
        .iter()
        .copied()
        .filter(|&k| k >= 1 && k <= cluster_size)
        .collect();
    let points = run_cells(valid.len(), fid.threads, |idx, inner| {
        let k = valid[idx];
        let cfg = Config {
            graph_size,
            cluster_size,
            redundancy_k: k,
            ..Config::default()
        };
        let summary = evaluate(&cfg, fid, inner);
        let kf = k as f64;
        let connections_per_partner = cfg.mean_clients() + kf * summary.mean_outdegree + (kf - 1.0);
        KPoint {
            k,
            summary,
            connections_per_partner,
        }
    });
    KSweepData {
        points,
        cluster_size,
    }
}

// ---------------------------------------------------------------------
// Overlay-family comparison
// ---------------------------------------------------------------------

/// One overlay family's evaluation.
#[derive(Debug, Clone)]
pub struct FamilyPoint {
    /// Family label.
    pub label: String,
    /// Evaluation.
    pub summary: TrialSummary,
    /// Max/mean ratio of per-outdegree mean super-peer loads — the
    /// load-concentration measure of Figure 7.
    pub load_spread: f64,
}

/// The comparison result.
#[derive(Debug, Clone)]
pub struct FamilyData {
    /// One point per family.
    pub points: Vec<FamilyPoint>,
    /// Mean degree used everywhere.
    pub mean_degree: f64,
}

impl FamilyData {
    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Overlay",
            "Agg bw (bps)",
            "SP bw (bps)",
            "EPL",
            "Results",
            "Load spread (max/mean)",
        ]);
        for p in &self.points {
            t.row(vec![
                p.label.clone(),
                sci(p.summary.agg_total_bw.mean),
                sci(p.summary.sp_total_bw.mean),
                format!("{:.2}", p.summary.epl.mean),
                format!("{:.0}", p.summary.results.mean),
                format!("{:.2}", p.load_spread),
            ]);
        }
        format!(
            "Ablation — overlay family at equal mean degree {}\n{}",
            self.mean_degree,
            t.render()
        )
    }
}

/// Compares PLOD, Erdős–Rényi, and random-regular overlays at one mean
/// degree.
pub fn overlay_family_comparison(
    graph_size: usize,
    cluster_size: usize,
    mean_degree: f64,
    ttl: u16,
    fid: &Fidelity,
) -> FamilyData {
    let families = [
        ("PowerLaw (PLOD)", GraphType::PowerLaw),
        ("ErdosRenyi", GraphType::ErdosRenyi),
        ("RandomRegular", GraphType::RandomRegular),
    ];
    let points = run_cells(families.len(), fid.threads, |idx, inner| {
        let (label, family) = families[idx];
        let cfg = Config {
            graph_size,
            cluster_size,
            graph_type: family,
            avg_outdegree: mean_degree,
            ttl,
            ..Config::default()
        };
        let summary = evaluate(&cfg, fid, inner);
        let means: Vec<f64> = summary
            .sp_out_bw_by_outdegree
            .iter()
            .map(|(_, s)| s.mean())
            .collect();
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let mean = means.iter().sum::<f64>() / means.len().max(1) as f64;
        FamilyPoint {
            label: label.to_string(),
            summary,
            load_spread: if mean > 0.0 { max / mean } else { 0.0 },
        }
    });
    FamilyData {
        points,
        mean_degree,
    }
}

// ---------------------------------------------------------------------
// Population tail sensitivity
// ---------------------------------------------------------------------

/// Rule #1's cluster-size tradeoff under two file-count tails.
#[derive(Debug, Clone)]
pub struct TailData {
    /// Cluster sizes compared.
    pub cluster_sizes: Vec<usize>,
    /// (tail label, per-cluster-size summaries).
    pub series: Vec<(String, Vec<TrialSummary>)>,
}

impl TailData {
    /// Renders aggregate and individual load per tail.
    pub fn render(&self) -> String {
        let mut headers = vec!["ClusterSize".to_string()];
        for (label, _) in &self.series {
            headers.push(format!("{label} agg bw"));
            headers.push(format!("{label} SP bw"));
        }
        let mut t = Table::new(headers);
        for (i, &cs) in self.cluster_sizes.iter().enumerate() {
            let mut row = vec![cs.to_string()];
            for (_, summaries) in &self.series {
                row.push(sci(summaries[i].agg_total_bw.mean));
                row.push(sci(summaries[i].sp_total_bw.mean));
            }
            t.row(row);
        }
        format!(
            "Ablation — rule #1 under log-normal vs bounded-Pareto file tails\n{}",
            t.render()
        )
    }
}

/// Runs the tail-sensitivity ablation. The Pareto parameters are chosen
/// to roughly match the log-normal's mean (~165 files per sharing
/// peer) so only the tail shape differs.
pub fn population_tail_sensitivity(
    graph_size: usize,
    cluster_sizes: &[usize],
    fid: &Fidelity,
) -> TailData {
    let tails = [
        ("LogNormal".to_string(), FileTail::LogNormal),
        (
            "Pareto".to_string(),
            FileTail::BoundedPareto {
                alpha: 1.06,
                max_files: 50_000.0,
            },
        ),
    ];
    // Flatten the (tail × cluster size) grid into independent cells,
    // then regroup per tail.
    let n_cs = cluster_sizes.len();
    let mut flat = run_cells(tails.len() * n_cs, fid.threads, |idx, inner| {
        let (_, tail) = &tails[idx / n_cs];
        let cfg = Config {
            graph_size,
            cluster_size: cluster_sizes[idx % n_cs],
            population: PopulationModel {
                file_tail: *tail,
                ..Default::default()
            },
            ..Config::default()
        };
        evaluate(&cfg, fid, inner)
    });
    let mut series = Vec::with_capacity(tails.len());
    for (label, _) in &tails {
        let rest = flat.split_off(n_cs);
        series.push((label.clone(), flat));
        flat = rest;
    }
    TailData {
        cluster_sizes: cluster_sizes.to_vec(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_sweep_tradeoffs() {
        let d = redundancy_k_sweep(600, 12, &[1, 2, 3], &Fidelity::quick());
        assert_eq!(d.points.len(), 3);
        // Individual load falls with k…
        assert!(d.points[2].summary.sp_total_bw.mean < d.points[0].summary.sp_total_bw.mean);
        // …while connections grow.
        assert!(d.points[2].connections_per_partner > d.points[0].connections_per_partner);
        assert!(d.render().contains("k-redundancy"));
    }

    #[test]
    fn k_sweep_filters_invalid_k() {
        let d = redundancy_k_sweep(200, 4, &[1, 2, 9], &Fidelity::quick());
        assert_eq!(d.points.len(), 2, "k=9 > cluster size must be dropped");
    }

    #[test]
    fn overlay_families_spread_ordering() {
        let d = overlay_family_comparison(800, 10, 6.0, 5, &Fidelity::quick());
        assert_eq!(d.points.len(), 3);
        // Degree spread concentrates load: PLOD ≥ regular.
        let plod = d.points[0].load_spread;
        let regular = d.points[2].load_spread;
        assert!(
            plod >= regular * 0.9,
            "plod spread {plod} vs regular {regular}"
        );
        assert!(d.render().contains("ErdosRenyi"));
    }

    #[test]
    fn tail_sensitivity_preserves_rule1() {
        let d = population_tail_sensitivity(600, &[5, 60], &Fidelity::quick());
        for (label, summaries) in &d.series {
            assert!(
                summaries[1].agg_total_bw.mean < summaries[0].agg_total_bw.mean,
                "{label}: rule 1 aggregate direction lost"
            );
            assert!(
                summaries[1].sp_total_bw.mean > summaries[0].sp_total_bw.mean,
                "{label}: rule 1 individual direction lost"
            );
        }
        assert!(d.render().contains("Pareto"));
    }
}
