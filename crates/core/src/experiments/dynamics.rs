//! Dynamic experiments — the Section 3.2 reliability claim and the
//! Section 5.3 local-rule adaptation, run on the event-driven
//! simulator.
//!
//! These have no figure numbers in the paper (the reliability argument
//! is qualitative: "the probability that all partners will fail before
//! any failed partner can be replaced is much lower than the
//! probability of a single super-peer failing"), but they are load-
//! bearing claims, so the reproduction quantifies them.

use sp_model::config::Config;
use sp_model::load::Load;
use sp_model::population::PopulationModel;
use sp_sim::scenario::{adaptive, reliability, AdaptOptions, ReliabilityComparison, SimReport};

use crate::report::Table;

/// Runs the reliability experiment on a churny network.
///
/// `lifespan_mean_secs` controls churn intensity; the paper-motivated
/// default (1080 s sessions) gives each cluster a super-peer death
/// every few minutes of simulated time.
pub fn reliability_experiment(
    graph_size: usize,
    cluster_size: usize,
    lifespan_mean_secs: f64,
    duration_secs: f64,
    seed: u64,
) -> ReliabilityComparison {
    let cfg = Config {
        graph_size,
        cluster_size,
        population: PopulationModel {
            lifespan_mean_secs,
            ..Default::default()
        },
        ..Config::default()
    };
    reliability(&cfg, duration_secs, seed)
}

/// Renders the reliability comparison.
pub fn render_reliability(c: &ReliabilityComparison) -> String {
    let mut t = Table::new(vec!["Metric", "k = 1", "k = 2 (redundant)"]);
    t.row(vec![
        "client availability".into(),
        format!("{:.4}", c.availability_k1),
        format!("{:.4}", c.availability_k2),
    ]);
    t.row(vec![
        "cluster failures".into(),
        c.failures_k1.to_string(),
        c.failures_k2.to_string(),
    ]);
    t.row(vec![
        "mean downtime per orphaning (s)".into(),
        format!("{:.1}", c.downtime_k1),
        format!("{:.1}", c.downtime_k2),
    ]);
    let unavail_ratio = if c.availability_k2 < 1.0 {
        (1.0 - c.availability_k1) / (1.0 - c.availability_k2).max(1e-12)
    } else {
        f64::INFINITY
    };
    format!(
        "Reliability under churn — single vs 2-redundant super-peers\n{}\n\
         unavailability reduced {unavail_ratio:.1}× by redundancy\n",
        t.render()
    )
}

/// Runs the adaptive local-rules scenario starting from a deliberately
/// overloaded configuration (few oversized clusters).
pub fn adaptive_experiment(
    graph_size: usize,
    initial_cluster_size: usize,
    limit: Load,
    duration_secs: f64,
    seed: u64,
) -> SimReport {
    let cfg = Config {
        graph_size,
        cluster_size: initial_cluster_size,
        ..Config::default()
    };
    adaptive(
        &cfg,
        duration_secs,
        seed,
        AdaptOptions {
            interval_secs: 120.0,
            limit,
        },
    )
}

/// Renders the adaptation timeline.
pub fn render_adaptive(report: &SimReport) -> String {
    let mut t = Table::new(vec![
        "t (s)",
        "clusters",
        "peers",
        "mean cluster size",
        "mean TTL",
        "mean outdegree",
    ]);
    for p in &report.timeline {
        t.row(vec![
            format!("{:.0}", p.time),
            p.clusters.to_string(),
            p.peers.to_string(),
            format!("{:.1}", p.mean_cluster_size),
            format!("{:.2}", p.mean_ttl),
            format!("{:.2}", p.mean_outdegree),
        ]);
    }
    format!(
        "Section 5.3 — adaptive local rules ({} actions applied)\n{}",
        report.adapt_actions,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliability_report_renders() {
        let c = reliability_experiment(100, 10, 400.0, 1500.0, 3);
        let s = render_reliability(&c);
        assert!(s.contains("availability"));
        assert!(c.availability_k2 >= c.availability_k1);
    }

    #[test]
    fn adaptive_report_renders() {
        let r = adaptive_experiment(
            120,
            40,
            Load {
                in_bw: 2e5,
                out_bw: 2e5,
                proc: 2e7,
            },
            900.0,
            5,
        );
        let s = render_adaptive(&r);
        assert!(s.contains("clusters"));
        assert!(r.adapt_actions > 0);
    }
}
