//! Expected path length vs outdegree and reach — Figure 9 and
//! Appendix F.
//!
//! Figure 9 is the designer's lookup table for rule #4: pick the
//! desired reach, read off the EPL for the topology's average
//! outdegree, round up to get the TTL. Appendix F adds the analytic
//! approximation `log_d(reach)` — exact on trees, approximate (and
//! usually below the measurement) on cyclic overlays — which this
//! experiment tabulates next to the measured values.

use sp_design::epl::{ttl_for_epl, EplPredictor};
use sp_graph::metrics::epl_tree_approximation;

use crate::report::Table;

/// The measured table plus the analytic comparison.
#[derive(Debug, Clone)]
pub struct EplData {
    /// Measured EPL grid.
    pub predictor: EplPredictor,
    /// Overlay size used for the measurement.
    pub overlay_nodes: usize,
}

impl EplData {
    /// Figure 9: measured EPL per (reach, outdegree).
    pub fn render_fig9(&self) -> String {
        let mut headers = vec!["Reach\\Outdeg".to_string()];
        for d in self.predictor.outdegrees() {
            headers.push(format!("{d}"));
        }
        let mut t = Table::new(headers);
        for (ri, &r) in self.predictor.reaches().iter().enumerate() {
            let mut row = vec![r.to_string()];
            for di in 0..self.predictor.outdegrees().len() {
                row.push(match self.predictor.at(ri, di) {
                    Some(e) => format!("{e:.2}"),
                    None => "—".to_string(),
                });
            }
            t.row(row);
        }
        format!(
            "Figure 9 — measured EPL vs average outdegree, per desired reach \
             ({} overlay nodes)\n{}",
            self.overlay_nodes,
            t.render()
        )
    }

    /// Appendix F: measured EPL vs the `log_d(reach)` bound, with the
    /// recommended TTL.
    pub fn render_appendix_f(&self) -> String {
        let mut t = Table::new(vec![
            "Outdegree",
            "Reach",
            "Measured EPL",
            "log_d(reach)",
            "Recommended TTL",
        ]);
        for (ri, &r) in self.predictor.reaches().iter().enumerate() {
            for (di, &d) in self.predictor.outdegrees().iter().enumerate() {
                let Some(measured) = self.predictor.at(ri, di) else {
                    continue;
                };
                let approx = epl_tree_approximation(d, r as f64)
                    .map(|a| format!("{a:.2}"))
                    .unwrap_or_else(|| "—".into());
                t.row(vec![
                    format!("{d}"),
                    r.to_string(),
                    format!("{measured:.2}"),
                    approx,
                    ttl_for_epl(measured).to_string(),
                ]);
            }
        }
        format!(
            "Appendix F — measured EPL vs the log_d(reach) approximation\n{}",
            t.render()
        )
    }
}

/// Measures the Figure 9 grid.
pub fn run(
    outdegrees: &[f64],
    reaches: &[usize],
    overlay_nodes: usize,
    samples: usize,
    seed: u64,
) -> EplData {
    EplData {
        predictor: EplPredictor::measure(outdegrees, reaches, overlay_nodes, samples, seed),
        overlay_nodes,
    }
}

/// The paper's Figure 9 grids.
pub fn paper_outdegrees() -> Vec<f64> {
    vec![3.1, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0]
}

/// The paper's Figure 9 reach curves.
pub fn paper_reaches() -> Vec<usize> {
    vec![20, 50, 100, 200, 500, 1000]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_shape() {
        let data = run(&[3.1, 10.0, 20.0], &[50, 200], 800, 15, 3);
        // EPL falls with outdegree, grows with reach.
        let e = |ri, di| data.predictor.at(ri, di).unwrap();
        assert!(e(0, 2) < e(0, 0));
        assert!(e(1, 0) > e(0, 0));
        let rendered = data.render_fig9();
        assert!(rendered.contains("Figure 9"));
        assert!(rendered.contains("3.1"));
    }

    #[test]
    fn appendix_f_lists_ttls() {
        let data = run(&[10.0], &[100], 500, 10, 1);
        let s = data.render_appendix_f();
        assert!(s.contains("Recommended TTL"));
        assert!(s.contains("log_d(reach)"));
        // At least one data row beyond the header and separator.
        assert!(s.lines().count() >= 4);
    }
}
