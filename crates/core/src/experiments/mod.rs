//! Runnable reproductions of every table and figure in the paper's
//! evaluation (Section 5 and the appendices).
//!
//! Each submodule packages one experiment: a typed `run` function that
//! produces the figure's data series, and `render_*` methods that print
//! the same rows the paper reports. The `sp-bench` crate exposes one
//! binary per experiment (`repro_fig04`, `repro_fig11`, …), and
//! EXPERIMENTS.md records paper-versus-measured shape checks.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`cluster_sweep`] | Figures 4, 5, 6 (and A-13/A-14 at a low query rate) |
//! | [`outdegree_hist`] | Figures 7 and 8 |
//! | [`epl_table`] | Figure 9 and Appendix F |
//! | [`redesign`] | Figures 11 and 12 (the Section 5.2 walk-through) |
//! | [`rules`] | Rule #2/#3/#4 numerics, Appendix D Table 2, Figure A-15 |
//! | [`dynamics`] | Section 3.2 reliability claim, Section 5.3 adaptation |
//! | [`ablations`] | Extensions: k > 2 redundancy, overlay families, file-tail sensitivity |

pub mod ablations;
pub mod cluster_sweep;
pub mod dynamics;
pub mod epl_table;
pub mod outdegree_hist;
pub mod redesign;
pub mod rules;

/// Evaluation fidelity: how many trials, how much source sampling.
///
/// The paper-scale runs (`standard`) average several instances of
/// 10 000–20 000-peer networks; tests and smoke runs use `quick` with
/// scaled-down networks.
#[derive(Debug, Clone, Copy)]
pub struct Fidelity {
    /// Instances per configuration.
    pub trials: usize,
    /// Root RNG seed.
    pub seed: u64,
    /// Cap on flooded source clusters per instance (`None` = exact).
    pub max_sources: Option<usize>,
    /// Total worker-thread budget for the whole experiment (`0` = one
    /// per available core). [`run_cells`] splits it between sweep
    /// cells, trials, and analysis source shards so the three levels
    /// of parallelism never oversubscribe the machine. Has no effect
    /// on the reported numbers.
    pub threads: usize,
}

impl Fidelity {
    /// Paper-scale fidelity (several trials, sampled sources — the
    /// sampling error is far below the instance-to-instance CI width).
    pub fn standard() -> Self {
        Fidelity {
            trials: 3,
            seed: 0x5EED_2003,
            max_sources: Some(1200),
            threads: 0,
        }
    }

    /// Fast fidelity for tests and smoke runs.
    pub fn quick() -> Self {
        Fidelity {
            trials: 1,
            seed: 0x5EED_2003,
            max_sources: Some(150),
            threads: 0,
        }
    }

    /// Returns the fidelity with a different thread budget.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

impl Default for Fidelity {
    fn default() -> Self {
        Fidelity::standard()
    }
}

/// Fans `n_cells` independent evaluations over a bounded worker pool
/// and returns their results **in cell order**.
///
/// `budget` is the total worker-thread budget (`0` = one per available
/// core). Up to `min(budget, n_cells)` cells run concurrently, and
/// each invocation of `run(cell_index, inner_budget)` receives the
/// leftover multiple `budget / outer` as its own inner thread budget
/// (to hand to [`sp_model::trials::TrialOptions::threads`]), so
/// `outer × inner` never exceeds the budget. The output order — and,
/// because every cell is evaluated independently from its own seed,
/// every reported number — is independent of the thread count.
pub fn run_cells<O, F>(n_cells: usize, budget: usize, run: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize, usize) -> O + Sync,
{
    let budget = if budget == 0 {
        std::thread::available_parallelism().map_or(1, |v| v.get())
    } else {
        budget
    }
    .max(1);
    let outer = budget.min(n_cells).max(1);
    let inner = (budget / outer).max(1);
    if outer == 1 {
        return (0..n_cells).map(|c| run(c, inner)).collect();
    }

    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<O>> = (0..n_cells).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..outer)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let c = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if c >= n_cells {
                            break;
                        }
                        done.push((c, run(c, inner)));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (c, o) in h.join().expect("sweep cell worker panicked") {
                slots[c] = Some(o);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every cell evaluated exactly once"))
        .collect()
}
