//! Runnable reproductions of every table and figure in the paper's
//! evaluation (Section 5 and the appendices).
//!
//! Each submodule packages one experiment: a typed `run` function that
//! produces the figure's data series, and `render_*` methods that print
//! the same rows the paper reports. The `sp-bench` crate exposes one
//! binary per experiment (`repro_fig04`, `repro_fig11`, …), and
//! EXPERIMENTS.md records paper-versus-measured shape checks.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`cluster_sweep`] | Figures 4, 5, 6 (and A-13/A-14 at a low query rate) |
//! | [`outdegree_hist`] | Figures 7 and 8 |
//! | [`epl_table`] | Figure 9 and Appendix F |
//! | [`redesign`] | Figures 11 and 12 (the Section 5.2 walk-through) |
//! | [`rules`] | Rule #2/#3/#4 numerics, Appendix D Table 2, Figure A-15 |
//! | [`dynamics`] | Section 3.2 reliability claim, Section 5.3 adaptation |
//! | [`ablations`] | Extensions: k > 2 redundancy, overlay families, file-tail sensitivity |

pub mod ablations;
pub mod cluster_sweep;
pub mod dynamics;
pub mod epl_table;
pub mod outdegree_hist;
pub mod redesign;
pub mod rules;

/// Evaluation fidelity: how many trials, how much source sampling.
///
/// The paper-scale runs (`standard`) average several instances of
/// 10 000–20 000-peer networks; tests and smoke runs use `quick` with
/// scaled-down networks.
#[derive(Debug, Clone, Copy)]
pub struct Fidelity {
    /// Instances per configuration.
    pub trials: usize,
    /// Root RNG seed.
    pub seed: u64,
    /// Cap on flooded source clusters per instance (`None` = exact).
    pub max_sources: Option<usize>,
}

impl Fidelity {
    /// Paper-scale fidelity (several trials, sampled sources — the
    /// sampling error is far below the instance-to-instance CI width).
    pub fn standard() -> Self {
        Fidelity {
            trials: 3,
            seed: 0x5EED_2003,
            max_sources: Some(1200),
        }
    }

    /// Fast fidelity for tests and smoke runs.
    pub fn quick() -> Self {
        Fidelity {
            trials: 1,
            seed: 0x5EED_2003,
            max_sources: Some(150),
        }
    }
}

impl Default for Fidelity {
    fn default() -> Self {
        Fidelity::standard()
    }
}
