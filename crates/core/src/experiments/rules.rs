//! Numeric rule-of-thumb checks — rule #2, rule #3 (with Appendix D's
//! Table 2 and Appendix E's Figure A-15), and rule #4.
//!
//! These reproduce the specific percentages the paper quotes in
//! Section 5.1: redundancy's "+2.5% aggregate, −48% individual",
//! rule #3's "31% aggregate bandwidth improvement" and the unilateral
//! outdegree-increase penalty, and rule #4's "19% less aggregate
//! incoming bandwidth" from trimming one wasted TTL hop.

use sp_model::config::{Config, GraphType};
use sp_model::trials::{run_trials, TrialOptions, TrialSummary};

use super::{run_cells, Fidelity};
use crate::report::{pct_change, sci, Table};

fn evaluate(cfg: &Config, fid: &Fidelity, threads: usize) -> TrialSummary {
    run_trials(
        cfg,
        &TrialOptions {
            trials: fid.trials,
            seed: fid.seed,
            max_sources: fid.max_sources,
            threads,
        },
    )
}

/// Evaluates a pair of configurations as two parallel cells.
fn evaluate_pair(a: Config, b: Config, fid: &Fidelity) -> (TrialSummary, TrialSummary) {
    let cfgs = [a, b];
    let mut out = run_cells(2, fid.threads, |idx, inner| {
        evaluate(&cfgs[idx], fid, inner)
    });
    let second = out.pop().expect("two cells");
    let first = out.pop().expect("two cells");
    (first, second)
}

// ---------------------------------------------------------------------
// Rule #2 — super-peer redundancy is good.
// ---------------------------------------------------------------------

/// Rule #2 numbers: the strongly connected system at one cluster size,
/// with and without redundancy.
#[derive(Debug, Clone)]
pub struct Rule2Data {
    /// Cluster size compared (paper: 100).
    pub cluster_size: usize,
    /// Without redundancy.
    pub plain: TrialSummary,
    /// With 2-redundancy.
    pub redundant: TrialSummary,
}

impl Rule2Data {
    /// Renders the paper's headline percentages.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["Metric", "Plain", "2-Redundant", "Change"]);
        let rows: Vec<(&str, f64, f64)> = vec![
            (
                "aggregate bandwidth (bps)",
                self.plain.agg_total_bw.mean,
                self.redundant.agg_total_bw.mean,
            ),
            (
                "individual SP bandwidth (bps)",
                self.plain.sp_total_bw.mean,
                self.redundant.sp_total_bw.mean,
            ),
            (
                "aggregate processing (Hz)",
                self.plain.agg_proc.mean,
                self.redundant.agg_proc.mean,
            ),
            (
                "individual SP processing (Hz)",
                self.plain.sp_proc.mean,
                self.redundant.sp_proc.mean,
            ),
        ];
        for (name, plain, red) in rows {
            t.row(vec![
                name.to_string(),
                sci(plain),
                sci(red),
                pct_change(red, plain),
            ]);
        }
        format!(
            "Rule #2 — super-peer redundancy (strongly connected, cluster size {})\n{}",
            self.cluster_size,
            t.render()
        )
    }
}

/// Runs the rule #2 comparison (paper: strong topology, cluster 100).
pub fn rule2(graph_size: usize, cluster_size: usize, fid: &Fidelity) -> Rule2Data {
    let base = Config {
        graph_type: GraphType::StronglyConnected,
        graph_size,
        cluster_size,
        ttl: 1,
        ..Config::default()
    };
    let (plain, redundant) = evaluate_pair(base.clone(), base.with_redundancy(true), fid);
    Rule2Data {
        cluster_size,
        plain,
        redundant,
    }
}

// ---------------------------------------------------------------------
// Rule #3 — maximize outdegree (Appendix D Table 2 + unilateral caveat).
// ---------------------------------------------------------------------

/// Rule #3 numbers: two power-law topologies at different average
/// outdegrees.
#[derive(Debug, Clone)]
pub struct Rule3Data {
    /// Cluster size compared (paper Appendix D: 100).
    pub cluster_size: usize,
    /// Lower average outdegree (3.1) evaluation.
    pub sparse: TrialSummary,
    /// Higher average outdegree (10) evaluation.
    pub dense: TrialSummary,
    /// The two outdegrees.
    pub outdegrees: (f64, f64),
}

impl Rule3Data {
    /// Appendix D Table 2: aggregate loads for both topologies.
    pub fn render_table_d2(&self) -> String {
        let mut t = Table::new(vec![
            "Avg outdegree",
            "In bw (bps)",
            "Out bw (bps)",
            "Proc (Hz)",
            "EPL",
        ]);
        for (d, s) in [
            (self.outdegrees.0, &self.sparse),
            (self.outdegrees.1, &self.dense),
        ] {
            t.row(vec![
                format!("{d}"),
                sci(s.agg_in_bw.mean),
                sci(s.agg_out_bw.mean),
                sci(s.agg_proc.mean),
                format!("{:.2}", s.epl.mean),
            ]);
        }
        format!(
            "Appendix D Table 2 — aggregate load vs average outdegree (cluster size {})\n{}",
            self.cluster_size,
            t.render()
        )
    }

    /// Rule #3 headline: aggregate bandwidth and EPL improvements.
    pub fn render_summary(&self) -> String {
        format!(
            "Rule #3 — raising average outdegree {} → {}:\n  aggregate bandwidth: {}\n  \
             aggregate processing: {}\n  EPL: {:.2} → {:.2}\n",
            self.outdegrees.0,
            self.outdegrees.1,
            pct_change(self.dense.agg_total_bw.mean, self.sparse.agg_total_bw.mean),
            pct_change(self.dense.agg_proc.mean, self.sparse.agg_proc.mean),
            self.sparse.epl.mean,
            self.dense.epl.mean,
        )
    }

    /// The unilateral caveat: a lone super-peer that raises its own
    /// outdegree in the sparse topology takes on far more load, read
    /// off the by-outdegree histograms.
    pub fn render_unilateral(&self) -> String {
        let sparse = &self.sparse.sp_out_bw_by_outdegree;
        let keys: Vec<u64> = sparse.keys().collect();
        let Some(&low_deg) = keys.iter().find(|&&k| sparse.get(k).is_some()) else {
            return "no histogram data".into();
        };
        let high_deg = *keys.last().expect("nonempty");
        let low = sparse.get(low_deg).map(|s| s.mean()).unwrap_or(0.0);
        let high = sparse.get(high_deg).map(|s| s.mean()).unwrap_or(0.0);
        format!(
            "Unilateral increase in the sparse topology: outdegree {low_deg} carries \
             {} bps; outdegree {high_deg} carries {} bps ({}) — increasing outdegree \
             only pays off when everyone does it.\n",
            sci(low),
            sci(high),
            pct_change(high, low)
        )
    }
}

/// Runs the rule #3 comparison.
pub fn rule3(
    graph_size: usize,
    cluster_size: usize,
    outdegrees: (f64, f64),
    fid: &Fidelity,
) -> Rule3Data {
    let mk = |d: f64| Config {
        graph_size,
        cluster_size,
        avg_outdegree: d,
        ttl: 7,
        ..Config::default()
    };
    let (sparse, dense) = evaluate_pair(mk(outdegrees.0), mk(outdegrees.1), fid);
    Rule3Data {
        cluster_size,
        sparse,
        dense,
        outdegrees,
    }
}

// ---------------------------------------------------------------------
// Rule #4 — minimize TTL.
// ---------------------------------------------------------------------

/// Rule #4 numbers: the same full-reach topology at two TTLs.
#[derive(Debug, Clone)]
pub struct Rule4Data {
    /// Minimal full-reach TTL evaluation.
    pub tight: TrialSummary,
    /// One-hop-too-many evaluation.
    pub loose: TrialSummary,
    /// The TTL pair.
    pub ttls: (u16, u16),
}

impl Rule4Data {
    /// Renders the waste of the extra hop.
    pub fn render(&self) -> String {
        format!(
            "Rule #4 — TTL {} vs {} at full reach (reach {:.0} vs {:.0} clusters):\n  \
             aggregate incoming bandwidth: {} vs {} ({} from trimming the wasted hop)\n",
            self.ttls.1,
            self.ttls.0,
            self.loose.reach_clusters.mean,
            self.tight.reach_clusters.mean,
            sci(self.loose.agg_in_bw.mean),
            sci(self.tight.agg_in_bw.mean),
            pct_change(self.tight.agg_in_bw.mean, self.loose.agg_in_bw.mean),
        )
    }
}

/// Runs the rule #4 comparison (paper: outdegree 20, TTL 4 → 3).
pub fn rule4(
    graph_size: usize,
    cluster_size: usize,
    avg_outdegree: f64,
    ttls: (u16, u16),
    fid: &Fidelity,
) -> Rule4Data {
    let mk = |ttl: u16| Config {
        graph_size,
        cluster_size,
        avg_outdegree,
        ttl,
        ..Config::default()
    };
    let (tight, loose) = evaluate_pair(mk(ttls.0), mk(ttls.1), fid);
    Rule4Data { tight, loose, ttls }
}

// ---------------------------------------------------------------------
// Appendix E — Figure A-15: outdegree can be too large.
// ---------------------------------------------------------------------

/// Figure A-15 data: individual super-peer load for two large
/// outdegrees across cluster sizes at TTL 2.
#[derive(Debug, Clone)]
pub struct FigA15Data {
    /// Cluster sizes on the x axis.
    pub cluster_sizes: Vec<usize>,
    /// (outdegree, per-cluster-size summaries).
    pub series: Vec<(f64, Vec<TrialSummary>)>,
}

impl FigA15Data {
    /// Renders individual outgoing bandwidth per cluster size.
    pub fn render(&self) -> String {
        let mut headers = vec!["ClusterSize".to_string()];
        for (d, _) in &self.series {
            headers.push(format!("Outdeg {d}"));
        }
        let mut t = Table::new(headers);
        for (i, &cs) in self.cluster_sizes.iter().enumerate() {
            let mut row = vec![cs.to_string()];
            for (_, summaries) in &self.series {
                row.push(sci(summaries[i].sp_out_bw.mean));
            }
            t.row(row);
        }
        format!(
            "Figure A-15 — individual super-peer outgoing bandwidth (bps), TTL 2\n{}",
            t.render()
        )
    }
}

/// Runs the Appendix E experiment.
pub fn fig_a15(
    graph_size: usize,
    cluster_sizes: &[usize],
    outdegrees: &[f64],
    fid: &Fidelity,
) -> FigA15Data {
    // Flatten the (outdegree × cluster size) grid into independent
    // cells, then regroup per outdegree.
    let n_cs = cluster_sizes.len();
    let mut flat = run_cells(outdegrees.len() * n_cs, fid.threads, |idx, inner| {
        evaluate(
            &Config {
                graph_size,
                cluster_size: cluster_sizes[idx % n_cs],
                avg_outdegree: outdegrees[idx / n_cs],
                ttl: 2,
                ..Config::default()
            },
            fid,
            inner,
        )
    });
    let mut series = Vec::with_capacity(outdegrees.len());
    for &d in outdegrees {
        let rest = flat.split_off(n_cs);
        series.push((d, flat));
        flat = rest;
    }
    FigA15Data {
        cluster_sizes: cluster_sizes.to_vec(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule2_directions() {
        let d = rule2(800, 40, &Fidelity::quick());
        // Individual load drops sharply; aggregate bandwidth barely
        // moves.
        assert!(d.redundant.sp_total_bw.mean < 0.8 * d.plain.sp_total_bw.mean);
        let agg_rel = (d.redundant.agg_total_bw.mean - d.plain.agg_total_bw.mean).abs()
            / d.plain.agg_total_bw.mean;
        assert!(agg_rel < 0.2, "aggregate moved {agg_rel}");
        assert!(d.render().contains("Rule #2"));
    }

    #[test]
    fn rule3_dense_wins_on_epl() {
        let d = rule3(800, 20, (3.1, 10.0), &Fidelity::quick());
        assert!(d.dense.epl.mean < d.sparse.epl.mean);
        assert!(d.render_table_d2().contains("Appendix D"));
        assert!(d.render_summary().contains("EPL"));
        assert!(d.render_unilateral().contains("outdegree"));
    }

    #[test]
    fn rule4_extra_ttl_costs_bandwidth() {
        // Outdegree 10 on 80 clusters: TTL 3 already reaches everyone.
        let d = rule4(800, 10, 10.0, (3, 6), &Fidelity::quick());
        assert!(
            (d.tight.reach_clusters.mean - d.loose.reach_clusters.mean).abs() < 2.0,
            "reach differs: {} vs {}",
            d.tight.reach_clusters.mean,
            d.loose.reach_clusters.mean
        );
        assert!(d.tight.agg_in_bw.mean < d.loose.agg_in_bw.mean);
        assert!(d.render().contains("Rule #4"));
    }

    #[test]
    fn fig_a15_larger_outdegree_hurts_at_same_epl() {
        // With TTL 2 and reach saturating either way, outdegree 40
        // floods more redundant copies than outdegree 20.
        let d = fig_a15(600, &[5, 20], &[20.0, 40.0], &Fidelity::quick());
        for i in 0..2 {
            let lo = d.series[0].1[i].sp_out_bw.mean;
            let hi = d.series[1].1[i].sp_out_bw.mean;
            assert!(hi > lo, "cs idx {i}: outdeg 40 load {hi} !> outdeg 20 {lo}");
        }
        assert!(d.render().contains("A-15"));
    }
}
