//! Outdegree histograms — Figures 7 and 8.
//!
//! Rule #3's evidence: in a power-law overlay with average outdegree
//! 3.1, the few high-degree super-peers carry extreme load while
//! low-degree ones see fewer results; at average outdegree 10 every
//! super-peer's load lands in a moderate band *and* everyone receives
//! nearly full results. The figures plot, per outdegree, the mean ± one
//! standard deviation of (7) individual outgoing bandwidth and (8)
//! expected results per query.

use sp_model::config::Config;
use sp_model::trials::{run_trials, TrialOptions};
use sp_stats::GroupedStats;

use super::{run_cells, Fidelity};
use crate::report::{sci, Table};

/// Histogram data for one topology.
#[derive(Debug, Clone)]
pub struct HistogramSeries {
    /// Average outdegree of the topology.
    pub avg_outdegree: f64,
    /// Super-peer outgoing bandwidth by outdegree (Figure 7).
    pub out_bw_by_outdegree: GroupedStats,
    /// Results per query by source outdegree (Figure 8).
    pub results_by_outdegree: GroupedStats,
}

/// Both topologies of Figures 7/8.
#[derive(Debug, Clone)]
pub struct HistogramData {
    /// One series per average outdegree (3.1 and 10 in the paper).
    pub series: Vec<HistogramSeries>,
    /// Cluster size used (20 in the paper).
    pub cluster_size: usize,
}

impl HistogramData {
    fn render(&self, title: &str, pick: impl Fn(&HistogramSeries) -> &GroupedStats) -> String {
        let mut out = String::from(title);
        out.push('\n');
        for s in &self.series {
            out.push_str(&format!("\n  average outdegree {}\n", s.avg_outdegree));
            let mut t = Table::new(vec!["Outdegree", "Mean", "StdDev", "SuperPeers"]);
            for (deg, stats) in pick(s).iter() {
                t.row(vec![
                    deg.to_string(),
                    sci(stats.mean()),
                    sci(stats.std_dev()),
                    stats.count().to_string(),
                ]);
            }
            for line in t.render().lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    /// Figure 7: outgoing bandwidth per outdegree.
    pub fn render_fig7(&self) -> String {
        self.render(
            "Figure 7 — super-peer outgoing bandwidth (bps) by number of neighbors",
            |s| &s.out_bw_by_outdegree,
        )
    }

    /// Figure 8: results per query per outdegree.
    pub fn render_fig8(&self) -> String {
        self.render(
            "Figure 8 — expected results per query by number of neighbors",
            |s| &s.results_by_outdegree,
        )
    }
}

/// Runs the Figures 7/8 experiment.
pub fn run(
    graph_size: usize,
    cluster_size: usize,
    outdegrees: &[f64],
    fid: &Fidelity,
) -> HistogramData {
    let series = run_cells(outdegrees.len(), fid.threads, |idx, inner| {
        let d = outdegrees[idx];
        let cfg = Config {
            graph_size,
            cluster_size,
            avg_outdegree: d,
            ttl: 7,
            ..Config::default()
        };
        let summary = run_trials(
            &cfg,
            &TrialOptions {
                trials: fid.trials,
                seed: fid.seed,
                max_sources: fid.max_sources,
                threads: inner,
            },
        );
        HistogramSeries {
            avg_outdegree: d,
            out_bw_by_outdegree: summary.sp_out_bw_by_outdegree,
            results_by_outdegree: summary.results_by_outdegree,
        }
    });
    HistogramData {
        series,
        cluster_size,
    }
}

/// The paper's pair of topologies (average outdegree 3.1 and 10).
pub fn paper_outdegrees() -> Vec<f64> {
    vec![3.1, 10.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> HistogramData {
        run(800, 20, &paper_outdegrees(), &Fidelity::quick())
    }

    #[test]
    fn results_grow_with_outdegree_within_sparse_topology() {
        // In the 3.1 topology, low-degree super-peers see fewer results
        // than high-degree ones (Figure 8's core point).
        let d = data();
        let s = &d.series[0].results_by_outdegree;
        let keys: Vec<u64> = s.keys().collect();
        let lo = s.get(*keys.first().unwrap()).unwrap().mean();
        let hi = s.get(*keys.last().unwrap()).unwrap().mean();
        assert!(hi > lo, "results: deg {lo} !< {hi}");
    }

    #[test]
    fn dense_topology_has_narrower_spread() {
        // "the loads of all peers in the second topology remain in the
        // same moderate range": relative spread of per-degree means is
        // smaller at outdegree 10.
        let d = data();
        let spread = |g: &GroupedStats| {
            let means: Vec<f64> = g.iter().map(|(_, s)| s.mean()).collect();
            let max = means.iter().cloned().fold(f64::MIN, f64::max);
            let min = means.iter().cloned().fold(f64::MAX, f64::min);
            max / min.max(1e-9)
        };
        let sparse = spread(&d.series[0].out_bw_by_outdegree);
        let dense = spread(&d.series[1].out_bw_by_outdegree);
        assert!(
            dense < sparse,
            "load spread dense {dense} !< sparse {sparse}"
        );
    }

    #[test]
    fn renderers_list_degrees() {
        let d = data();
        let f7 = d.render_fig7();
        let f8 = d.render_fig8();
        assert!(f7.contains("average outdegree 3.1"));
        assert!(f7.contains("average outdegree 10"));
        assert!(f8.contains("Outdegree"));
    }
}
