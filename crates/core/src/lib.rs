//! # sp-core — designing super-peer networks
//!
//! A complete Rust implementation of the analysis framework from
//! Beverly Yang & Hector Garcia-Molina, *Designing a Super-Peer
//! Network* (ICDE 2003): topology generation, the Table 2 cost model,
//! the Appendix B query model, mean-value load analysis with 95%
//! confidence intervals, the Figure 10 global design procedure, the
//! Section 5.3 local decision rules, and a discrete-event simulator
//! for churn, redundancy failover, and adaptation.
//!
//! This crate is the **facade**: it re-exports the subsystem crates
//! (`sp-stats`, `sp-graph`, `sp-model`, `sp-design`, `sp-sim`),
//! provides the ergonomic [`NetworkBuilder`] entry point, and packages
//! every table and figure of the paper's evaluation as a runnable
//! experiment under [`experiments`].
//!
//! # Quickstart
//!
//! ```
//! use sp_core::NetworkBuilder;
//!
//! // A 1000-user network, 10 peers per cluster, Gnutella-like overlay.
//! let summary = NetworkBuilder::new()
//!     .users(1000)
//!     .cluster_size(10)
//!     .avg_outdegree(3.1)
//!     .ttl(4)
//!     .evaluate(3, 42);
//! println!(
//!     "super-peer load: {} bps up, {} Hz",
//!     summary.sp_out_bw.mean, summary.sp_proc.mean
//! );
//! assert!(summary.sp_out_bw.mean > summary.client_out_bw.mean);
//! ```
//!
//! # Crate map
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | statistics | [`stats`] | seeded RNG, distributions, CIs |
//! | topology | [`graph`] | CSR graphs, PLOD, flooding |
//! | analysis | [`model`] | cost model, query model, load engine |
//! | design | [`design`] | Figure 10 procedure, local rules, EPL |
//! | dynamics | [`sim`] | event simulator, churn, failover |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod experiments;
pub mod report;

pub use builder::NetworkBuilder;
pub use report::Table;

/// Re-export of the statistics substrate.
pub use sp_stats as stats;

/// Re-export of the topology substrate.
pub use sp_graph as graph;

/// Re-export of the analysis engine.
pub use sp_model as model;

/// Re-export of the design toolkit.
pub use sp_design as design;

/// Re-export of the event simulator.
pub use sp_sim as sim;

pub use sp_design::{DesignConstraints, DesignGoals, DesignOutcome};
pub use sp_model::{Config, GraphType, Load, TrialOptions, TrialSummary};
