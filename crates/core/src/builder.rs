//! Ergonomic entry point for configuring and evaluating super-peer
//! networks.

use sp_design::procedure::{design, DesignConstraints, DesignGoals, DesignOutcome, EvalOptions};
use sp_model::config::{Config, GraphType};
use sp_model::trials::{run_trials, TrialOptions, TrialSummary};
use sp_sim::scenario::{steady_state, SimReport};

/// Fluent builder over [`Config`].
///
/// Every method is optional; defaults are the paper's Table 1 values
/// (10 000 users, cluster size 10, power-law overlay at average
/// outdegree 3.1, TTL 7).
///
/// # Examples
///
/// ```
/// use sp_core::NetworkBuilder;
///
/// let cfg = NetworkBuilder::new()
///     .users(500)
///     .cluster_size(5)
///     .redundancy(true)
///     .config();
/// assert_eq!(cfg.num_clusters(), 100);
/// assert_eq!(cfg.redundancy_k, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetworkBuilder {
    config: Config,
}

impl NetworkBuilder {
    /// Starts from the paper's default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an explicit configuration.
    pub fn from_config(config: Config) -> Self {
        NetworkBuilder { config }
    }

    /// Sets the number of users (total peers).
    pub fn users(mut self, n: usize) -> Self {
        self.config.graph_size = n;
        self
    }

    /// Sets the cluster size (peers per cluster, super-peers included).
    pub fn cluster_size(mut self, c: usize) -> Self {
        self.config.cluster_size = c;
        self
    }

    /// Turns 2-redundancy on or off.
    pub fn redundancy(mut self, on: bool) -> Self {
        self.config = self.config.with_redundancy(on);
        self
    }

    /// Sets the redundancy factor `k` directly (extension beyond the
    /// paper's k = 2).
    pub fn redundancy_k(mut self, k: usize) -> Self {
        self.config.redundancy_k = k;
        self
    }

    /// Sets the average super-peer outdegree (power-law overlays).
    pub fn avg_outdegree(mut self, d: f64) -> Self {
        self.config.avg_outdegree = d;
        self
    }

    /// Uses the strongly connected (complete) overlay.
    pub fn strongly_connected(mut self) -> Self {
        self.config.graph_type = GraphType::StronglyConnected;
        self
    }

    /// Sets the query TTL.
    pub fn ttl(mut self, ttl: u16) -> Self {
        self.config.ttl = ttl;
        self
    }

    /// Sets the per-user query rate (queries per second).
    pub fn query_rate(mut self, rate: f64) -> Self {
        self.config.query_rate = rate;
        self
    }

    /// Returns the underlying configuration.
    pub fn config(&self) -> Config {
        self.config.clone()
    }

    /// Runs the mean-value analysis with full [`TrialOptions`] control
    /// (source sampling, worker-thread budget).
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    pub fn evaluate_with(&self, opts: &TrialOptions) -> TrialSummary {
        run_trials(&self.config, opts)
    }

    /// Runs the mean-value analysis over `trials` instances.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    pub fn evaluate(&self, trials: usize, seed: u64) -> TrialSummary {
        run_trials(
            &self.config,
            &TrialOptions {
                trials,
                seed,
                ..Default::default()
            },
        )
    }

    /// Like [`evaluate`](Self::evaluate) but sampling at most
    /// `max_sources` source clusters per instance — much faster on
    /// large networks, unbiased for aggregate metrics.
    pub fn evaluate_sampled(&self, trials: usize, seed: u64, max_sources: usize) -> TrialSummary {
        run_trials(
            &self.config,
            &TrialOptions {
                trials,
                seed,
                max_sources: Some(max_sources),
                ..Default::default()
            },
        )
    }

    /// Runs the discrete-event simulator for `duration_secs` of
    /// simulated time.
    pub fn simulate(&self, duration_secs: f64, seed: u64) -> SimReport {
        steady_state(&self.config, duration_secs, seed)
    }

    /// Runs the Figure 10 global design procedure with this builder's
    /// configuration as the rate/cost/population template.
    ///
    /// # Errors
    ///
    /// Propagates [`sp_design::procedure::DesignError`].
    pub fn design(
        &self,
        goals: &DesignGoals,
        constraints: &DesignConstraints,
    ) -> Result<DesignOutcome, sp_design::procedure::DesignError> {
        design(goals, constraints, &self.config, &EvalOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let cfg = NetworkBuilder::new()
            .users(2000)
            .cluster_size(20)
            .redundancy(true)
            .avg_outdegree(10.0)
            .ttl(3)
            .query_rate(0.01)
            .config();
        assert_eq!(cfg.graph_size, 2000);
        assert_eq!(cfg.cluster_size, 20);
        assert_eq!(cfg.redundancy_k, 2);
        assert_eq!(cfg.avg_outdegree, 10.0);
        assert_eq!(cfg.ttl, 3);
        assert_eq!(cfg.query_rate, 0.01);
    }

    #[test]
    fn strongly_connected_flag() {
        let cfg = NetworkBuilder::new().strongly_connected().config();
        assert_eq!(cfg.graph_type, GraphType::StronglyConnected);
    }

    #[test]
    fn evaluate_produces_summary() {
        let s = NetworkBuilder::new()
            .users(200)
            .cluster_size(10)
            .ttl(3)
            .evaluate(2, 1);
        assert!(s.agg_total_bw.mean > 0.0);
        assert_eq!(s.agg_total_bw.count, 2);
    }

    #[test]
    fn simulate_runs() {
        let r = NetworkBuilder::new()
            .users(100)
            .cluster_size(10)
            .simulate(300.0, 2);
        assert!(r.queries > 0);
    }
}
