//! Expected-path-length prediction and TTL selection (rule #4,
//! Figure 9, Appendix F).
//!
//! When the desired reach covers only a subset of the network, the
//! right TTL "should be made globally … obtained by predicting the EPL
//! for the desired reach and average outdegree, and then rounding up."
//! Two predictors are provided:
//!
//! * the **analytic bound** `log_d(reach)` (Appendix F) — exact on a
//!   `d`-ary tree, an approximation on graphs;
//! * an **empirical table** measured on generated power-law overlays,
//!   exactly how the paper produced Figure 9.

use serde::{Deserialize, Serialize};

use sp_graph::generate::{plod, PlodConfig};
use sp_graph::metrics::{epl_tree_approximation, mean_epl_for_reach};
use sp_stats::SpRng;

/// Picks the TTL for a desired EPL, per Appendix F: strictly above the
/// EPL ("setting TTL too close to the EPL will cause the actual reach
/// to be lower … some path lengths will be greater than the expected
/// path length").
///
/// The paper's example: outdegree 10, reach 500 → EPL 3.0, and TTL 3
/// under-delivers (reach ≈ 400), so TTL must be 4; while outdegree 20,
/// reach 500 → EPL 2.5 → TTL 3.
pub fn ttl_for_epl(epl: f64) -> u16 {
    (epl.floor() as u16) + 1
}

/// Convenience: recommended TTL for a desired reach (in overlay nodes)
/// on a power-law overlay with the given average outdegree, using the
/// analytic EPL bound. Falls back to TTL 1 when the whole reach is one
/// hop away.
pub fn recommended_ttl(avg_outdegree: f64, desired_reach: usize) -> u16 {
    if desired_reach == 0 {
        return 0;
    }
    if (desired_reach as f64) <= avg_outdegree {
        return 1;
    }
    match epl_tree_approximation(avg_outdegree, desired_reach as f64) {
        Some(epl) => ttl_for_epl(epl),
        None => u16::MAX, // outdegree <= 1 cannot reach geometrically
    }
}

/// An empirical EPL table over (average outdegree × desired reach), as
/// measured on generated power-law overlays — the reproduction of
/// Figure 9.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EplPredictor {
    outdegrees: Vec<f64>,
    reaches: Vec<usize>,
    /// `epl[r][d]` for reach index `r`, outdegree index `d`; `NaN`
    /// where the reach was unattainable.
    epl: Vec<Vec<f64>>,
}

impl EplPredictor {
    /// Measures the table: for every (outdegree, reach) pair, generates
    /// power-law overlays with `n` nodes and averages the EPL over
    /// `samples` random sources.
    ///
    /// # Panics
    ///
    /// Panics if any list is empty or `n == 0`.
    pub fn measure(
        outdegrees: &[f64],
        reaches: &[usize],
        n: usize,
        samples: usize,
        seed: u64,
    ) -> Self {
        assert!(
            !outdegrees.is_empty() && !reaches.is_empty() && n > 0,
            "need outdegrees, reaches, and nodes"
        );
        let mut rng = SpRng::seed_from_u64(seed);
        let mut epl = vec![vec![f64::NAN; outdegrees.len()]; reaches.len()];
        for (di, &d) in outdegrees.iter().enumerate() {
            let g = plod(n, PlodConfig::with_mean(d.min((n - 1) as f64)), &mut rng);
            for (ri, &r) in reaches.iter().enumerate() {
                if let Some(e) = mean_epl_for_reach(&g, r, samples, &mut rng) {
                    epl[ri][di] = e;
                }
            }
        }
        EplPredictor {
            outdegrees: outdegrees.to_vec(),
            reaches: reaches.to_vec(),
            epl,
        }
    }

    /// The measured outdegree grid.
    pub fn outdegrees(&self) -> &[f64] {
        &self.outdegrees
    }

    /// The measured reach grid.
    pub fn reaches(&self) -> &[usize] {
        &self.reaches
    }

    /// Raw measured EPL for grid indices `(reach_idx, outdeg_idx)`;
    /// `None` where unattainable.
    pub fn at(&self, reach_idx: usize, outdeg_idx: usize) -> Option<f64> {
        let v = self.epl[reach_idx][outdeg_idx];
        v.is_finite().then_some(v)
    }

    /// Predicts the EPL for an arbitrary (outdegree, reach), using the
    /// nearest measured grid point; falls back to the analytic bound
    /// when the table has no finite neighbor.
    pub fn predict(&self, avg_outdegree: f64, desired_reach: usize) -> Option<f64> {
        let di = nearest_index(&self.outdegrees, avg_outdegree);
        let ri = nearest_index_usize(&self.reaches, desired_reach);
        self.at(ri, di)
            .or_else(|| epl_tree_approximation(avg_outdegree, desired_reach as f64))
    }
}

fn nearest_index(grid: &[f64], x: f64) -> usize {
    grid.iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            (x - **a)
                .abs()
                .partial_cmp(&(x - **b).abs())
                .expect("finite grid")
        })
        .map(|(i, _)| i)
        .expect("nonempty grid")
}

fn nearest_index_usize(grid: &[usize], x: usize) -> usize {
    grid.iter()
        .enumerate()
        .min_by_key(|(_, &g)| g.abs_diff(x))
        .map(|(i, _)| i)
        .expect("nonempty grid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ttl_rounds_strictly_up() {
        assert_eq!(ttl_for_epl(2.5), 3);
        assert_eq!(ttl_for_epl(3.0), 4); // the Appendix F caveat
        assert_eq!(ttl_for_epl(0.2), 1);
    }

    #[test]
    fn recommended_ttl_paper_example() {
        // Figure 10 walk-through: outdegree 150, reach 150 clusters →
        // one hop.
        assert_eq!(recommended_ttl(150.0, 150), 1);
        // Outdegree 18, reach 300: log_18(300) ≈ 1.97 → TTL 2.
        assert_eq!(recommended_ttl(18.0, 300), 2);
        assert_eq!(recommended_ttl(10.0, 0), 0);
    }

    #[test]
    fn measured_table_is_monotone_in_outdegree() {
        let p = EplPredictor::measure(&[3.1, 10.0, 20.0], &[100, 500], 1000, 20, 7);
        // For a fixed reach, EPL decreases as outdegree grows (rule #3).
        for ri in 0..2 {
            let e_low = p.at(ri, 0).unwrap();
            let e_high = p.at(ri, 2).unwrap();
            assert!(
                e_high < e_low,
                "reach idx {ri}: EPL {e_low} → {e_high} did not drop"
            );
        }
        // For a fixed outdegree, EPL grows with reach.
        for di in 0..3 {
            assert!(p.at(1, di).unwrap() > p.at(0, di).unwrap());
        }
    }

    #[test]
    fn predict_uses_nearest_and_falls_back() {
        let p = EplPredictor::measure(&[10.0], &[100], 500, 10, 3);
        let near = p.predict(9.0, 120).unwrap();
        assert_eq!(near, p.at(0, 0).unwrap());
        // A predictor always answers when the analytic bound exists.
        assert!(p.predict(50.0, 400).is_some());
    }

    #[test]
    fn unattainable_reach_is_none() {
        let p = EplPredictor::measure(&[3.0], &[5000], 100, 5, 1);
        assert!(p.at(0, 0).is_none());
        // predict falls back to the analytic bound.
        assert!(p.predict(3.0, 5000).is_some());
    }

    #[test]
    #[should_panic(expected = "need outdegrees")]
    fn empty_grid_panics() {
        EplPredictor::measure(&[], &[100], 100, 5, 0);
    }
}
