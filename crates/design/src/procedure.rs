//! The global design procedure (Figure 10).
//!
//! Given the properties of the system (number of users, desired reach —
//! chosen from the desired number of results, to which it is
//! proportional) and the designer's constraints (maximum individual
//! super-peer load and open connections), the procedure searches for an
//! efficient configuration:
//!
//! 1. Select the desired reach `r`. Set TTL = 1.
//! 2. Decrease cluster size until the desired individual load is
//!    attained — if bandwidth cannot be attained even at TTL = 1,
//!    decrease `r` (no configuration is more bandwidth-efficient than
//!    TTL = 1); if individual load is too high, apply super-peer
//!    redundancy and/or decrease `r`.
//! 3. If the average outdegree required for the reach exceeds the
//!    connection limit, increment the TTL and retry.
//! 4. Decrease the average outdegree if doing so does not affect the
//!    EPL and the reach can still be attained.
//!
//! Every candidate is validated with the `sp-model` mean-value
//! analysis, exactly as the paper validates its Figure 11/12 redesign
//! of the 20 000-peer Gnutella network.

use serde::{Deserialize, Serialize};

use sp_model::config::{Config, GraphType};
use sp_model::load::Load;
use sp_model::trials::{run_trials, TrialOptions, TrialSummary};

/// System properties the designer specifies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignGoals {
    /// Number of users (peers) in the network.
    pub num_users: usize,
    /// Desired reach, in peers (proportional to the desired number of
    /// results per query).
    pub desired_reach_peers: usize,
}

/// Designer constraints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignConstraints {
    /// Maximum expected load per super-peer partner. The paper advises
    /// limits far below actual capability (bursts, downloads, and the
    /// user's own work share the box).
    pub max_sp_load: Load,
    /// Maximum open connections per super-peer.
    pub max_connections: f64,
    /// Whether the procedure may apply 2-redundancy when individual
    /// load is the binding constraint.
    pub allow_redundancy: bool,
}

/// One logged decision of the procedure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignStep {
    /// Human-readable description of what was tried / decided.
    pub description: String,
}

/// The procedure's output.
#[derive(Debug, Clone)]
pub struct DesignOutcome {
    /// The recommended configuration.
    pub config: Config,
    /// Evaluated summary of the recommended configuration.
    pub evaluation: TrialSummary,
    /// Reach actually achieved, in peers.
    pub achieved_reach_peers: f64,
    /// Decision log.
    pub steps: Vec<DesignStep>,
}

/// Why the procedure failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// No configuration fit the constraints even after shrinking the
    /// reach to the minimum the procedure is willing to consider.
    Infeasible,
    /// The goals were malformed (zero users or reach).
    BadGoals,
}

impl std::fmt::Display for DesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignError::Infeasible => {
                write!(
                    f,
                    "no configuration satisfies the constraints at any considered reach"
                )
            }
            DesignError::BadGoals => write!(f, "goals must have positive users and reach"),
        }
    }
}

impl std::error::Error for DesignError {}

/// Evaluation fidelity knobs (trials per candidate, source sampling).
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Trials per candidate evaluation.
    pub trials: usize,
    /// Source-sampling cap per analysis.
    pub max_sources: usize,
    /// RNG seed.
    pub seed: u64,
    /// Largest TTL the search will consider.
    pub max_ttl: u16,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            trials: 2,
            max_sources: 300,
            seed: 0x00DE_516E,
            max_ttl: 8,
        }
    }
}

/// Minimal average outdegree whose tree bound `d + d² + … + d^ttl`
/// covers `clusters` overlay nodes, with a safety margin for cycle
/// overlap. Returns `None` if no degree up to `max_d` suffices.
fn outdegree_for_reach(clusters: f64, ttl: u16, max_d: f64, margin: f64) -> Option<f64> {
    let target = clusters * margin;
    let covers = |d: f64| -> bool {
        let mut covered = 0.0;
        let mut level = 1.0;
        for _ in 0..ttl {
            level *= d;
            covered += level;
            if covered >= target {
                return true;
            }
        }
        false
    };
    if !covers(max_d) {
        return None;
    }
    // Bisect for the minimal covering degree.
    let (mut lo, mut hi) = (1.0f64, max_d);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if covers(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi.max(2.0))
}

/// Cluster-size ladder, descending (step 3 walks from large clusters —
/// minimal aggregate load — down until the individual limit fits).
fn cluster_ladder(num_users: usize) -> Vec<usize> {
    [500usize, 200, 100, 50, 20, 10, 5, 2, 1]
        .into_iter()
        .filter(|&c| c <= num_users)
        .collect()
}

/// Runs the Figure 10 procedure.
///
/// `base` supplies everything not searched over (rates, cost model,
/// population, query model); its topology fields are overwritten.
///
/// # Errors
///
/// [`DesignError::BadGoals`] for empty goals, [`DesignError::Infeasible`]
/// if nothing fits even after reach reductions.
pub fn design(
    goals: &DesignGoals,
    constraints: &DesignConstraints,
    base: &Config,
    eval: &EvalOptions,
) -> Result<DesignOutcome, DesignError> {
    if goals.num_users == 0 || goals.desired_reach_peers == 0 {
        return Err(DesignError::BadGoals);
    }
    let mut steps = Vec::new();
    let mut reach = goals.desired_reach_peers.min(goals.num_users);

    // Step 1: reach selected; allow a few reach reductions before
    // giving up (the procedure's "decrease r" escape).
    for reduction in 0..4 {
        if reduction > 0 {
            reach = (reach * 3 / 4).max(1);
            steps.push(DesignStep {
                description: format!(
                    "individual load unattainable; decreasing reach to {reach} peers"
                ),
            });
        }
        for redundancy in [false, true] {
            if redundancy && !constraints.allow_redundancy {
                continue;
            }
            let k = if redundancy { 2 } else { 1 };
            // Step 2: TTL starts at 1 (most bandwidth-efficient).
            for ttl in 1..=eval.max_ttl {
                if let Some(outcome) =
                    try_ttl(goals, constraints, base, eval, reach, ttl, k, &mut steps)
                {
                    return Ok(outcome);
                }
            }
            if !redundancy && constraints.allow_redundancy {
                steps.push(DesignStep {
                    description: "no TTL fit without redundancy; applying 2-redundancy".into(),
                });
            }
        }
    }
    Err(DesignError::Infeasible)
}

/// Tries every cluster size at one TTL; returns the first (largest
/// cluster) candidate that fits load and connection limits, after the
/// step-5 outdegree refinement.
#[allow(clippy::too_many_arguments)]
fn try_ttl(
    goals: &DesignGoals,
    constraints: &DesignConstraints,
    base: &Config,
    eval: &EvalOptions,
    reach_peers: usize,
    ttl: u16,
    k: usize,
    steps: &mut Vec<DesignStep>,
) -> Option<DesignOutcome> {
    for cs in cluster_ladder(goals.num_users) {
        if cs < k {
            continue;
        }
        let n = (goals.num_users / cs).max(1);
        let clusters_needed = (reach_peers as f64 / cs as f64).ceil().min(n as f64);
        if clusters_needed <= 1.0 && n > 1 {
            // A reach this small needs no overlay search at all; let a
            // smaller cluster size handle it.
            continue;
        }
        let max_d = (n.saturating_sub(1)) as f64;
        let Some(d) = outdegree_for_reach(clusters_needed - 1.0, ttl, max_d, 1.1) else {
            continue;
        };
        // Step 4 check: connections per partner = clients + k per
        // neighboring virtual super-peer + co-partners.
        let conn = (cs - k) as f64 + (k as f64) * d + (k as f64 - 1.0);
        if conn > constraints.max_connections {
            steps.push(DesignStep {
                description: format!(
                    "ttl {ttl}, cluster {cs}: outdegree {d:.0} needs {conn:.0} connections \
                     (> {:.0}); will increase TTL",
                    constraints.max_connections
                ),
            });
            continue;
        }
        let mut cfg = base.clone();
        cfg.graph_type = if d >= max_d && n > 1 {
            GraphType::StronglyConnected
        } else {
            GraphType::PowerLaw
        };
        cfg.graph_size = goals.num_users;
        cfg.cluster_size = cs;
        cfg.redundancy_k = k;
        cfg.avg_outdegree = d;
        cfg.ttl = ttl;
        let summary = evaluate(&cfg, eval);
        let sp_load = Load {
            in_bw: summary.sp_in_bw.mean,
            out_bw: summary.sp_out_bw.mean,
            proc: summary.sp_proc.mean,
        };
        if !sp_load.fits_within(&constraints.max_sp_load) {
            steps.push(DesignStep {
                description: format!(
                    "ttl {ttl}, cluster {cs}, outdegree {d:.0}: super-peer load {sp_load} \
                     exceeds limit; decreasing cluster size"
                ),
            });
            continue;
        }
        let achieved = summary.reach_clusters.mean * cs as f64;
        if achieved < 0.7 * reach_peers as f64 {
            steps.push(DesignStep {
                description: format!(
                    "ttl {ttl}, cluster {cs}, outdegree {d:.0}: measured reach {achieved:.0} \
                     peers falls short of {reach_peers}; trying next option"
                ),
            });
            continue;
        }
        steps.push(DesignStep {
            description: format!(
                "accepted: ttl {ttl}, cluster {cs}, outdegree {d:.0}, redundancy k={k} \
                 (reach {achieved:.0} peers, sp load {sp_load})"
            ),
        });
        // Step 5: shrink the outdegree while reach (and hence EPL)
        // holds.
        let (cfg, summary, achieved) = refine_outdegree(
            cfg,
            summary,
            achieved,
            reach_peers,
            constraints,
            eval,
            steps,
        );
        return Some(DesignOutcome {
            achieved_reach_peers: achieved,
            config: cfg,
            evaluation: summary,
            steps: std::mem::take(steps),
        });
    }
    None
}

/// Step 5: repeatedly try 15%-smaller outdegrees, keeping the smallest
/// that still attains the reach and the load limit.
fn refine_outdegree(
    mut cfg: Config,
    mut summary: TrialSummary,
    mut achieved: f64,
    reach_peers: usize,
    constraints: &DesignConstraints,
    eval: &EvalOptions,
    steps: &mut Vec<DesignStep>,
) -> (Config, TrialSummary, f64) {
    loop {
        let smaller = (cfg.avg_outdegree * 0.85).floor();
        if smaller < 2.0 || smaller >= cfg.avg_outdegree {
            return (cfg, summary, achieved);
        }
        let mut candidate = cfg.clone();
        candidate.avg_outdegree = smaller;
        candidate.graph_type = GraphType::PowerLaw;
        let s = evaluate(&candidate, eval);
        let reach = s.reach_clusters.mean * candidate.cluster_size as f64;
        let load = Load {
            in_bw: s.sp_in_bw.mean,
            out_bw: s.sp_out_bw.mean,
            proc: s.sp_proc.mean,
        };
        if reach >= 0.95 * reach_peers as f64 && load.fits_within(&constraints.max_sp_load) {
            steps.push(DesignStep {
                description: format!(
                    "step 5: outdegree {:.0} → {smaller:.0} keeps reach {reach:.0}",
                    cfg.avg_outdegree
                ),
            });
            cfg = candidate;
            summary = s;
            achieved = reach;
        } else {
            return (cfg, summary, achieved);
        }
    }
}

fn evaluate(cfg: &Config, eval: &EvalOptions) -> TrialSummary {
    run_trials(
        cfg,
        &TrialOptions {
            trials: eval.trials,
            seed: eval.seed,
            max_sources: Some(eval.max_sources),
            threads: 1,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_constraints() -> DesignConstraints {
        // Section 5.2: 100 Kbps each way, 10 MHz, 100 connections.
        DesignConstraints {
            max_sp_load: Load {
                in_bw: 100_000.0,
                out_bw: 100_000.0,
                proc: 10e6,
            },
            max_connections: 100.0,
            allow_redundancy: false,
        }
    }

    fn quick_eval() -> EvalOptions {
        EvalOptions {
            trials: 1,
            max_sources: 120,
            seed: 3,
            max_ttl: 8,
        }
    }

    #[test]
    fn outdegree_solver_matches_paper_walkthrough() {
        // TTL 1, 150 clusters to cover → outdegree ≈ 150 (the paper's
        // "average outdegree must be 150" at cluster size 20).
        let d = outdegree_for_reach(150.0, 1, 1000.0, 1.0).unwrap();
        assert!((d - 150.0).abs() < 1.0, "d = {d}");
        // TTL 2, ~300 clusters: d + d² ≥ 300 → d ≈ 17 ("each super-peer
        // must have about 18 neighbors").
        let d = outdegree_for_reach(300.0, 2, 1000.0, 1.0).unwrap();
        assert!((15.0..22.0).contains(&d), "d = {d}");
        // Impossible: degree capped below requirement.
        assert!(outdegree_for_reach(1000.0, 1, 50.0, 1.0).is_none());
    }

    #[test]
    fn paper_redesign_scenario_produces_small_ttl() {
        // The Section 5.2 walk-through: 20 000 users, reach 3000 peers,
        // 100 Kbps / 10 MHz / 100-connection limits, no redundancy.
        // We run it at reduced scale fidelity (1 trial, sampled
        // sources) — the shape assertions are what the paper derives:
        // a small TTL (2–3, not Gnutella's 7), a modest cluster, and
        // constraint satisfaction.
        let goals = DesignGoals {
            num_users: 20_000,
            desired_reach_peers: 3000,
        };
        let out = design(
            &goals,
            &paper_constraints(),
            &Config::default(),
            &quick_eval(),
        )
        .expect("feasible");
        assert!(
            (2..=4).contains(&out.config.ttl),
            "ttl {} not small",
            out.config.ttl
        );
        assert!(
            out.config.cluster_size >= 2,
            "clusters collapsed to pure network"
        );
        let load = Load {
            in_bw: out.evaluation.sp_in_bw.mean,
            out_bw: out.evaluation.sp_out_bw.mean,
            proc: out.evaluation.sp_proc.mean,
        };
        assert!(
            load.fits_within(&paper_constraints().max_sp_load),
            "load {load}"
        );
        assert!(
            out.achieved_reach_peers >= 2000.0,
            "reach {}",
            out.achieved_reach_peers
        );
        assert!(!out.steps.is_empty());
    }

    #[test]
    fn tight_individual_limit_triggers_redundancy() {
        let goals = DesignGoals {
            num_users: 2000,
            desired_reach_peers: 800,
        };
        let tight = DesignConstraints {
            max_sp_load: Load {
                in_bw: 40_000.0,
                out_bw: 40_000.0,
                proc: 4e6,
            },
            max_connections: 60.0,
            allow_redundancy: true,
        };
        match design(&goals, &tight, &Config::default(), &quick_eval()) {
            Ok(out) => {
                let load = Load {
                    in_bw: out.evaluation.sp_in_bw.mean,
                    out_bw: out.evaluation.sp_out_bw.mean,
                    proc: out.evaluation.sp_proc.mean,
                };
                assert!(load.fits_within(&tight.max_sp_load));
            }
            Err(e) => panic!("expected feasible design, got {e}"),
        }
    }

    #[test]
    fn impossible_constraints_are_reported() {
        let goals = DesignGoals {
            num_users: 5000,
            desired_reach_peers: 5000,
        };
        let impossible = DesignConstraints {
            max_sp_load: Load {
                in_bw: 1.0,
                out_bw: 1.0,
                proc: 1.0,
            },
            max_connections: 3.0,
            allow_redundancy: true,
        };
        assert_eq!(
            design(&goals, &impossible, &Config::default(), &quick_eval()).unwrap_err(),
            DesignError::Infeasible
        );
    }

    #[test]
    fn bad_goals_rejected() {
        let c = paper_constraints();
        assert_eq!(
            design(
                &DesignGoals {
                    num_users: 0,
                    desired_reach_peers: 10
                },
                &c,
                &Config::default(),
                &quick_eval()
            )
            .unwrap_err(),
            DesignError::BadGoals
        );
    }
}
