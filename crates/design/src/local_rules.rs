//! Local decision rules (Section 5.3).
//!
//! When design-time information or a centralized decision maker is
//! unavailable, each super-peer adapts on its own. The paper gives
//! three guidelines, under a "limited altruism" assumption (a
//! super-peer accepts any load below its self-imposed limit):
//!
//! I.   *Always accept new clients.* If the cluster grows past the
//!      limit, promote a capable client to a redundant partner, or
//!      split the cluster; if the cluster is far below the limit, try
//!      to coalesce with another small cluster.
//! II.  *Increase outdegree* while the cluster is not growing and
//!      resources are spare (rule #3 — effective only if everyone
//!      does it); resign to client if even a few neighbors are too
//!      much.
//! III. *Decrease TTL* when it does not affect reach — detected by
//!      watching whether responses ever arrive from the last hop.
//!
//! [`advise`] is a pure function from a super-peer's local view to a
//! prioritized action list; the `sp-sim` crate executes these actions
//! under churn and measures that the network converges (its
//! `adaptive` scenario).

use serde::{Deserialize, Serialize};

use sp_model::load::Load;

/// What one super-peer can see locally.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalView {
    /// Current measured load.
    pub load: Load,
    /// Self-imposed load limit (the "limited altruism" budget).
    pub limit: Load,
    /// Current number of clients.
    pub num_clients: usize,
    /// Current number of neighbor super-peers.
    pub num_neighbors: usize,
    /// Number of partners in this virtual super-peer (1 = alone).
    pub num_partners: usize,
    /// TTL currently stamped on forwarded queries.
    pub ttl: u16,
    /// Deepest hop count from which a response was recently observed
    /// (`0` if none observed yet).
    pub max_response_hop: u16,
    /// Whether the cluster has been growing recently.
    pub cluster_growing: bool,
}

impl LocalView {
    /// Fraction of the tightest limit component currently used (>1
    /// means overloaded).
    pub fn utilization(&self) -> f64 {
        let mut u: f64 = 0.0;
        if self.limit.in_bw > 0.0 {
            u = u.max(self.load.in_bw / self.limit.in_bw);
        }
        if self.limit.out_bw > 0.0 {
            u = u.max(self.load.out_bw / self.limit.out_bw);
        }
        if self.limit.proc > 0.0 {
            u = u.max(self.load.proc / self.limit.proc);
        }
        u
    }
}

/// An action a super-peer can take locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalAction {
    /// Keep accepting clients (guideline I: never refuse while under
    /// the limit).
    AcceptClients,
    /// Promote the most capable client to a redundant partner
    /// (overloaded, and not yet redundant).
    PromotePartner,
    /// Split the cluster in two, handing half the clients to a capable
    /// client-turned-super-peer (overloaded and already redundant, or
    /// redundancy unavailable).
    SplitCluster,
    /// Look for another small cluster to merge with (far below the
    /// limit).
    Coalesce,
    /// Open a connection to one more neighbor super-peer (guideline
    /// II).
    IncreaseOutdegree,
    /// Too weak to hold even a few neighbors: shed clients or resign to
    /// being a client (guideline II, last resort).
    Resign,
    /// Reduce the TTL stamped on forwarded queries (guideline III).
    DecreaseTtl,
}

/// Utilization above which a super-peer is considered overloaded.
pub const OVERLOAD: f64 = 1.0;
/// Utilization below which a cluster is a coalesce candidate.
pub const IDLE: f64 = 0.25;
/// Utilization headroom required before volunteering for more
/// neighbors.
pub const SPARE: f64 = 0.6;

/// Produces the prioritized local actions for a view, per the Section
/// 5.3 guidelines. The first action is the most urgent; `AcceptClients`
/// is always present unless the node should resign.
pub fn advise(view: &LocalView) -> Vec<LocalAction> {
    let mut actions = Vec::new();
    let u = view.utilization();

    if u > OVERLOAD {
        if view.num_neighbors <= 1 && view.num_clients <= 1 {
            // Can't even hold a couple of connections: step down.
            return vec![LocalAction::Resign];
        }
        if view.num_partners < 2 && view.num_clients >= 1 {
            actions.push(LocalAction::PromotePartner);
        } else if view.num_clients >= 2 {
            actions.push(LocalAction::SplitCluster);
        } else {
            actions.push(LocalAction::Resign);
        }
    }

    // Guideline III: if no response ever arrives from the final hop,
    // the TTL is wasting redundant transmissions.
    if view.ttl > 1 && view.max_response_hop > 0 && view.max_response_hop < view.ttl {
        actions.push(LocalAction::DecreaseTtl);
    }

    // Guideline II: spare capacity and a stable cluster → volunteer for
    // more neighbors.
    if u < SPARE && !view.cluster_growing {
        actions.push(LocalAction::IncreaseOutdegree);
    }

    // Guideline I second half: a nearly idle cluster should merge.
    if u < IDLE && view.num_clients > 0 {
        actions.push(LocalAction::Coalesce);
    }

    if u <= OVERLOAD {
        actions.push(LocalAction::AcceptClients);
    }
    actions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_view() -> LocalView {
        LocalView {
            load: Load {
                in_bw: 50_000.0,
                out_bw: 50_000.0,
                proc: 5e6,
            },
            limit: Load {
                in_bw: 100_000.0,
                out_bw: 100_000.0,
                proc: 1e7,
            },
            num_clients: 10,
            num_neighbors: 5,
            num_partners: 1,
            ttl: 4,
            max_response_hop: 4,
            cluster_growing: false,
        }
    }

    #[test]
    fn utilization_is_max_over_resources() {
        let v = base_view();
        assert!((v.utilization() - 0.5).abs() < 1e-12);
        let mut hot = v;
        hot.load.proc = 2e7;
        assert!((hot.utilization() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn healthy_node_accepts_clients_and_grows_outdegree() {
        let a = advise(&base_view());
        assert!(a.contains(&LocalAction::AcceptClients));
        assert!(a.contains(&LocalAction::IncreaseOutdegree));
        assert!(!a.contains(&LocalAction::SplitCluster));
    }

    #[test]
    fn overloaded_non_redundant_promotes_partner_first() {
        let mut v = base_view();
        v.load.out_bw = 150_000.0;
        let a = advise(&v);
        assert_eq!(a[0], LocalAction::PromotePartner);
        assert!(!a.contains(&LocalAction::AcceptClients));
    }

    #[test]
    fn overloaded_redundant_splits() {
        let mut v = base_view();
        v.load.out_bw = 150_000.0;
        v.num_partners = 2;
        let a = advise(&v);
        assert_eq!(a[0], LocalAction::SplitCluster);
    }

    #[test]
    fn hopeless_node_resigns() {
        let mut v = base_view();
        v.load.proc = 1e9;
        v.num_clients = 0;
        v.num_neighbors = 1;
        assert_eq!(advise(&v), vec![LocalAction::Resign]);
    }

    #[test]
    fn unused_ttl_hops_trigger_decrease() {
        let mut v = base_view();
        v.ttl = 7;
        v.max_response_hop = 3;
        assert!(advise(&v).contains(&LocalAction::DecreaseTtl));
        // But never below the observed hop depth.
        v.max_response_hop = 7;
        assert!(!advise(&v).contains(&LocalAction::DecreaseTtl));
        // And not before any response has been seen.
        v.max_response_hop = 0;
        assert!(!advise(&v).contains(&LocalAction::DecreaseTtl));
    }

    #[test]
    fn idle_cluster_coalesces() {
        let mut v = base_view();
        v.load = Load {
            in_bw: 1000.0,
            out_bw: 1000.0,
            proc: 1000.0,
        };
        let a = advise(&v);
        assert!(a.contains(&LocalAction::Coalesce));
        assert!(a.contains(&LocalAction::AcceptClients));
    }

    #[test]
    fn growing_cluster_defers_outdegree_increase() {
        let mut v = base_view();
        v.cluster_growing = true;
        assert!(!advise(&v).contains(&LocalAction::IncreaseOutdegree));
    }

    #[test]
    fn zero_limits_are_never_overloaded() {
        let mut v = base_view();
        v.limit = Load::ZERO; // "no limit declared"
        assert_eq!(v.utilization(), 0.0);
        assert!(advise(&v).contains(&LocalAction::AcceptClients));
    }
}
