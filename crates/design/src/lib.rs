//! # sp-design
//!
//! Design toolkit for super-peer networks, implementing Sections 5.1,
//! 5.2, and 5.3 of Yang & Garcia-Molina, *Designing a Super-Peer
//! Network* (ICDE 2003):
//!
//! * [`epl`] — expected-path-length prediction: the measured Figure 9
//!   table and the Appendix F `log_d(reach)` analytic bound, plus
//!   TTL selection per rule #4 ("minimize TTL", rounding *up* from the
//!   EPL because "setting TTL too close to the EPL will cause the
//!   actual reach to be lower than the desired value");
//! * [`procedure`] — the global design procedure of Figure 10: given a
//!   desired reach and per-super-peer load/connection limits, search
//!   TTL × cluster-size × outdegree for an efficient configuration,
//!   validating each candidate with the `sp-model` analysis engine;
//! * [`local_rules`] — the local decision guidelines of Section 5.3
//!   (always accept clients; split/partner when overloaded; coalesce
//!   when idle; grow outdegree with spare resources; shrink TTL when
//!   distant hops stop contributing), packaged as a pure advisor that
//!   the `sp-sim` event simulator drives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epl;
pub mod local_rules;
pub mod procedure;

pub use epl::{recommended_ttl, EplPredictor};
pub use local_rules::{advise, LocalAction, LocalView};
pub use procedure::{design, DesignConstraints, DesignGoals, DesignOutcome, DesignStep};
