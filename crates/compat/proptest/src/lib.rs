//! Vendored offline stub of the `proptest` surface this workspace
//! uses.
//!
//! The build container cannot reach a crates registry, so the real
//! `proptest` is unavailable. This crate reimplements the subset the
//! repository's property tests consume — the [`proptest!`] macro,
//! range/tuple/vec/`prop_oneof!` strategies, `prop_map`, and the
//! `prop_assert*` family — over a deterministic generator, so the same
//! test source runs unchanged. Differences from real proptest:
//!
//! * **no shrinking** — a failing case reports its case number (the
//!   run is fully deterministic, so a case replays by itself);
//! * **fixed seeding** — cases are derived from the test name, so runs
//!   are reproducible across machines and invocations.

use std::ops::Range;

// ---------------------------------------------------------------------
// Deterministic generator (SplitMix64; self-contained so the stub has
// no dependencies).
// ---------------------------------------------------------------------

/// Deterministic random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one named test case.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64) << 32 | 0x5EED),
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // 128-bit multiply-shift; bias is < 2^-64, irrelevant for tests.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------
// Strategy trait and combinators.
// ---------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors
    /// `proptest::Strategy::prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`] to mix
    /// heterogeneous arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased arms (backs [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Always yields a clone of the given value (mirrors `Just`).
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start
            .wrapping_add(rng.below(self.end.wrapping_sub(self.start) as u64) as i64)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------------------
// any::<T>() and the prop:: namespace.
// ---------------------------------------------------------------------

/// Full-domain strategy marker for [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical full-domain strategy (mirrors `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws from the full domain of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// The `prop::` namespace (`prop::bool::ANY`,
/// `prop::collection::vec`).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Uniform boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Mirrors `proptest::bool::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// See [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `None` for ~1 in 4 cases, `Some(inner)` otherwise (mirrors
        /// `proptest::option::of`'s default weighting).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Vec of `element` values with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Mirrors `proptest::collection::vec` for `Range<usize>`
        /// sizes.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec-size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

// ---------------------------------------------------------------------
// Config + macros.
// ---------------------------------------------------------------------

/// Run configuration (mirrors `ProptestConfig`; only `cases` is
/// consumed).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Defines deterministic property tests (mirrors `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg); $($rest)*);
    };
    (@with_config ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_rng =
                    $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)+
                let run = std::panic::AssertUnwindSafe(move || { $body });
                if let Err(panic) = std::panic::catch_unwind(run) {
                    eprintln!(
                        "proptest stub: case {case}/{} of `{}` failed \
                         (deterministic; rerun reproduces it)",
                        config.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts inside a property (mirrors `prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property (mirrors `prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when its inputs are unusable (mirrors
/// `prop_assume!`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice between strategy arms (mirrors `prop_oneof!`;
/// unweighted arms only).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -2.0f64..2.0, n in 1usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn tuples_maps_and_vecs(v in prop::collection::vec((0u32..5).prop_map(|x| x * 2), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x % 2 == 0 && x < 10));
        }

        #[test]
        fn oneof_mixes_arms(pick in prop_oneof![
            (0u32..3).prop_map(|_| true),
            any::<u32>().prop_map(|_| false),
        ], flag in prop::bool::ANY) {
            // Both arms and the bool strategy must produce valid values.
            prop_assert!(pick || !pick);
            prop_assert!(flag || !flag);
        }

        #[test]
        fn option_of_yields_both_variants(v in prop::collection::vec(
            prop::option::of(0u32..10), 32..33,
        )) {
            // With 32 draws at ~3:1 odds, both variants must appear.
            prop_assert!(v.iter().any(Option::is_some));
            prop_assert!(v.iter().any(Option::is_none));
            prop_assert!(v.iter().flatten().all(|&x| x < 10));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("seed_test", 7);
        let mut b = TestRng::for_case("seed_test", 7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_case("seed_test", 8);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
