//! Vendored offline stub of `serde_derive`.
//!
//! The build container has no network route to a crates registry, so
//! the real `serde`/`serde_derive` cannot be fetched. The repository
//! only *annotates* types with `#[derive(Serialize, Deserialize)]` —
//! nothing serializes at runtime yet — so these derives expand to bare
//! marker-trait impls (enough for `T: Serialize` bounds to hold). Swap
//! the `serde` workspace dependency back to crates.io to restore real
//! codegen; no call site changes.
//!
//! Only non-generic types are supported, which covers every annotated
//! type in the workspace.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum`/`union`
/// keyword, skipping attributes and visibility.
fn type_name(input: TokenStream) -> String {
    let mut saw_keyword = false;
    for tt in input {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_keyword {
                return s;
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde_derive stub: no type name found in derive input");
}

/// Marker-impl stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl block")
}

/// Marker-impl stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl block")
}
