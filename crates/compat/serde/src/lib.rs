//! Vendored offline stub of `serde`.
//!
//! The build container cannot reach a crates registry, so the real
//! `serde` is unavailable. The repository currently uses serde only as
//! derive annotations on model types (no runtime serialization), so
//! marker traits plus the no-op derives in `serde_derive` are enough to
//! keep every annotation compiling. Point the workspace dependency back
//! at crates.io to upgrade in place.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Stand-in for the `serde::de` module.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`, blanket
    /// implemented exactly like the real one.
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T where T: for<'de> super::Deserialize<'de> {}
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
