//! Vendored offline stub of the `rand` trait surface this workspace
//! consumes.
//!
//! The build container cannot reach a crates registry. `sp-stats`
//! implements its own fixed-algorithm generator ([`sp_stats::SpRng`])
//! and only borrows `rand`'s *traits* so downstream code can use the
//! familiar adapter API. This stub carries exactly that surface:
//! [`RngCore`] plus a blanket [`Rng`] extension with `random::<T>()`.

/// The core generator interface (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types drawable uniformly from a generator (mirrors sampling from
/// `rand`'s `StandardUniform`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ergonomic extension over [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn random_draws_compile_and_vary() {
        let mut rng = Counter(0);
        let a: u64 = rng.random();
        let b: u64 = rng.random();
        assert_ne!(a, b);
        let f: f64 = rng.random();
        assert!((0.0..1.0).contains(&f));
    }
}
