//! Vendored offline stub of the `criterion` surface this workspace
//! uses.
//!
//! The build container cannot reach a crates registry, so the real
//! `criterion` is unavailable. This harness keeps the same bench
//! source compiling *and measuring*: each `bench_function` warms up,
//! sizes an iteration batch to a target measurement window, collects
//! `sample_size` samples, and prints mean / best / worst per
//! iteration. There are no HTML reports, outlier analysis, or saved
//! baselines — for those, point the workspace dependency back at
//! crates.io.

use std::time::{Duration, Instant};

/// Re-export for bench code written against `criterion::black_box`.
pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(200);
const TARGET_SAMPLE: Duration = Duration::from_millis(50);

/// Top-level bench context (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            group: name.to_string(),
            sample_size: 20,
        }
    }

    /// Ungrouped `bench_function` (parity with criterion's API).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, 20, f);
        self
    }
}

/// A named group sharing sampling settings (mirrors
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.group, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<P: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &P,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let label = format!("{}/{}", self.group, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (output is already flushed; kept for API parity).
    pub fn finish(self) {}
}

/// A `group/function/parameter` label (mirrors
/// `criterion::BenchmarkId`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

/// Timing loop handle passed to bench closures (mirrors
/// `criterion::Bencher`).
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the batch so one sample ≈ TARGET_SAMPLE.
        let mut batch = 1u64;
        let warm_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = t.elapsed();
            if warm_start.elapsed() >= WARMUP && took >= Duration::from_micros(10) {
                let scale = TARGET_SAMPLE.as_secs_f64() / took.as_secs_f64().max(1e-9);
                batch = ((batch as f64 * scale).round() as u64).clamp(1, 1 << 24);
                break;
            }
            batch = batch.saturating_mul(2).min(1 << 24);
        }
        self.iters_per_sample = batch;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<44} (no measurement — closure never called iter)");
        return;
    }
    let per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let best = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let worst = per_iter.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{label:<44} time: [{} {} {}]  ({} samples × {} iters)",
        fmt_time(best),
        fmt_time(mean),
        fmt_time(worst),
        per_iter.len(),
        b.iters_per_sample,
    );
}

/// Renders seconds with criterion-style units.
pub fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a bench group runner (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main` (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_time_picks_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size: 3,
        };
        b.iter(|| std::hint::black_box(1 + 1));
        assert_eq!(b.samples.len(), 3);
        assert!(b.iters_per_sample >= 1);
    }
}
