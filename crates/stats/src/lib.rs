//! # sp-stats
//!
//! Deterministic statistics substrate for the super-peer network
//! reproduction of Yang & Garcia-Molina, *Designing a Super-Peer
//! Network* (ICDE 2003).
//!
//! The paper's evaluation methodology (Section 4.1) is Monte-Carlo
//! mean-value analysis: network instances are generated from stochastic
//! configuration parameters (cluster sizes are `N(c, 0.2c)`, file counts
//! and lifespans follow heavy-tailed measurement distributions, topology
//! outdegrees follow a power law), analyzed, and averaged over repeated
//! trials with 95% confidence intervals. This crate provides every
//! statistical primitive that methodology needs:
//!
//! * [`rng`] — reproducible, splittable random number generation so every
//!   experiment in the repository is deterministic given a seed.
//! * [`dist`] — the distributions the paper draws from: normal
//!   (cluster sizes), log-normal (file counts, session lifespans), Zipf
//!   (query popularity `g(j)` of Appendix B), bounded Pareto
//!   (heavy-tailed alternatives), and empirical/weighted-discrete
//!   sampling via the alias method.
//! * [`summary`] — streaming Welford moments and Student-t 95%
//!   confidence intervals (Step 4 of the paper's analysis pipeline).
//! * [`histogram`] — fixed-width histograms and per-key grouped
//!   statistics (Figures 7 and 8 plot mean ± one standard deviation
//!   of load/results *grouped by outdegree*).
//! * [`percentile`] — quantiles and load-rank curves (Figure 12 plots
//!   every node's load ranked in decreasing order).
//!
//! All floating-point work is `f64`. Nothing here allocates on the
//! sampling hot path beyond what the caller requests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod histogram;
pub mod percentile;
pub mod rng;
pub mod summary;

pub use dist::{
    BoundedPareto, Empirical, LogNormal, Normal, Poisson, TruncatedDiscreteNormal, Zipf,
};
pub use histogram::{GroupedStats, Histogram};
pub use percentile::{quantile, rank_curve};
pub use rng::SpRng;
pub use summary::{ConfidenceInterval, OnlineStats};
