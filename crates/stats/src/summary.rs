//! Streaming summary statistics and confidence intervals.
//!
//! Step 4 of the paper's methodology runs the analysis "over several
//! instances of a configuration", averages, and reports 95% confidence
//! intervals for `E[value | instance]`. [`OnlineStats`] accumulates
//! moments in one pass (Welford's algorithm, numerically stable), and
//! [`ConfidenceInterval`] turns them into the Student-t intervals drawn
//! as the vertical bars in every figure.

use serde::{Deserialize, Serialize};

/// One-pass mean/variance accumulator (Welford), with min/max tracking
/// and O(1) merge for parallel trial reduction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulates one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan et al. pairwise
    /// update). The result is identical (up to floating-point
    /// reassociation) to pushing both observation streams into one
    /// accumulator.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The raw accumulator words `(count, mean, m2, min, max)`, for
    /// checkpointing. Together with [`OnlineStats::from_state`] this
    /// lets a snapshot capture the exact accumulator so a restored run
    /// folds further observations into bitwise-identical moments.
    pub fn state(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from words captured by
    /// [`OnlineStats::state`].
    pub fn from_state(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        OnlineStats {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// 95% Student-t confidence interval for the mean.
    pub fn ci95(&self) -> ConfidenceInterval {
        ConfidenceInterval::from_stats(self)
    }
}

/// Two-sided 95% Student-t critical values for small degrees of
/// freedom; beyond 30 df the normal 1.96 is within 2.5%.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Two-sided 95% t critical value for `df` degrees of freedom.
pub fn t_critical_95(df: u64) -> f64 {
    match df {
        0 => f64::INFINITY,
        d if d as usize <= T95.len() => T95[d as usize - 1],
        _ => 1.96,
    }
}

/// A mean with its symmetric 95% confidence half-width, as reported in
/// every figure of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Half-width of the two-sided 95% interval.
    pub half_width: f64,
    /// Number of observations behind the estimate.
    pub count: u64,
}

impl ConfidenceInterval {
    /// Builds the interval from an accumulator.
    pub fn from_stats(stats: &OnlineStats) -> Self {
        let half_width = if stats.count() < 2 {
            0.0
        } else {
            t_critical_95(stats.count() - 1) * stats.std_err()
        };
        ConfidenceInterval {
            mean: stats.mean(),
            half_width,
            count: stats.count(),
        }
    }

    /// Lower bound of the interval.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.low() && x <= self.high()
    }

    /// Relative half-width (`half_width / |mean|`); `inf` for a zero
    /// mean with nonzero width. Convenient for "is this estimate tight
    /// enough" checks in adaptive trial loops.
    pub fn relative_width(&self) -> f64 {
        if self.half_width == 0.0 {
            0.0
        } else if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4e} ± {:.2e}", self.mean, self.half_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn known_small_sample() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance 4.0 → sample variance 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut all = OnlineStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..300] {
            a.push(x);
        }
        for &x in &data[300..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-8);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn state_round_trip_is_bitwise() {
        let mut s = OnlineStats::new();
        for x in [2.5, -1.0, 7.75, 0.0, 1e9] {
            s.push(x);
        }
        let (count, mean, m2, min, max) = s.state();
        let mut r = OnlineStats::from_state(count, mean, m2, min, max);
        assert_eq!(r, s);
        r.push(3.25);
        s.push(3.25);
        assert_eq!(r.mean().to_bits(), s.mean().to_bits());
        assert_eq!(r.variance().to_bits(), s.variance().to_bits());
    }

    #[test]
    fn t_table_sane() {
        assert!(t_critical_95(1) > 12.0);
        assert!((t_critical_95(10) - 2.228).abs() < 1e-9);
        assert_eq!(t_critical_95(1000), 1.96);
        assert!(t_critical_95(0).is_infinite());
    }

    #[test]
    fn ci_covers_true_mean_usually() {
        use crate::rng::SpRng;
        // 200 repetitions of a 20-sample CI for N(0,1); coverage should
        // be near 95%.
        let mut rng = SpRng::seed_from_u64(77);
        let mut covered = 0;
        for _ in 0..200 {
            let mut s = OnlineStats::new();
            for _ in 0..20 {
                s.push(crate::dist::Normal::standard(&mut rng));
            }
            if s.ci95().contains(0.0) {
                covered += 1;
            }
        }
        assert!(
            (170..=200).contains(&covered),
            "coverage {covered}/200 out of plausible range"
        );
    }

    #[test]
    fn ci_width_shrinks_with_samples() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for i in 0..10 {
            small.push((i % 3) as f64);
        }
        for i in 0..1000 {
            large.push((i % 3) as f64);
        }
        assert!(large.ci95().half_width < small.ci95().half_width);
    }

    #[test]
    fn ci_display_formats() {
        let ci = ConfidenceInterval {
            mean: 1234.5,
            half_width: 10.0,
            count: 30,
        };
        let s = ci.to_string();
        assert!(s.contains('±'), "display: {s}");
    }

    #[test]
    fn relative_width_edge_cases() {
        let zero = ConfidenceInterval {
            mean: 0.0,
            half_width: 0.0,
            count: 5,
        };
        assert_eq!(zero.relative_width(), 0.0);
        let degenerate = ConfidenceInterval {
            mean: 0.0,
            half_width: 1.0,
            count: 5,
        };
        assert!(degenerate.relative_width().is_infinite());
    }
}
