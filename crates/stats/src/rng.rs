//! Reproducible random number generation.
//!
//! Every experiment in the repository must be exactly reproducible from
//! a single `u64` seed: the paper's figures are averages over repeated
//! trials, and regenerating a figure must yield the same rows every
//! time. [`SpRng`] wraps a fixed-algorithm generator (xoshiro256++
//! seeded through SplitMix64) rather than `rand::rngs::StdRng` so the
//! stream is stable across `rand` versions, and adds *splitting*: each
//! trial, node, or subsystem derives an independent child stream, so
//! adding a sampling site in one module never perturbs the draws seen
//! by another.

use rand::RngCore;

/// SplitMix64 step, used for seeding and stream derivation.
///
/// This is the standard finalizer from Vigna's `splitmix64.c`; it is
/// statistically excellent for expanding a small seed into generator
/// state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic, splittable random number generator.
///
/// Implements xoshiro256++ (Blackman & Vigna), a small, fast generator
/// with a 2^256 − 1 period — far more than the Monte-Carlo workloads
/// here require — implemented locally so that the byte stream is pinned
/// by this crate, not by a dependency's internals.
///
/// `SpRng` implements [`rand::RngCore`], so every `rand` adapter
/// (ranges, shuffles, `Distribution`s) works on it.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// use sp_stats::SpRng;
///
/// let mut a = SpRng::seed_from_u64(42);
/// let mut b = SpRng::seed_from_u64(42);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpRng {
    s: [u64; 4],
}

impl SpRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded through SplitMix64, so similar seeds (0, 1,
    /// 2, …) still produce uncorrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SpRng { s }
    }

    /// Derives an independent child generator for a named sub-stream.
    ///
    /// Trials, nodes, and subsystems should each draw from their own
    /// split so that the number of samples one component consumes never
    /// shifts the values another component sees. Splitting is
    /// deterministic: the same `(parent seed, stream)` pair always
    /// yields the same child.
    ///
    /// # Examples
    ///
    /// ```
    /// use sp_stats::SpRng;
    ///
    /// let root = SpRng::seed_from_u64(7);
    /// let trial0 = root.split(0);
    /// let trial1 = root.split(1);
    /// assert_ne!(trial0, trial1);
    /// assert_eq!(trial0, root.split(0)); // reproducible
    /// ```
    #[must_use]
    pub fn split(&self, stream: u64) -> Self {
        // Mix the current state with the stream id through SplitMix64;
        // do not advance `self`, so splits are order-independent.
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(16)
            ^ self.s[2].rotate_left(32)
            ^ self.s[3].rotate_left(48)
            ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SpRng { s }
    }

    /// The raw xoshiro256++ state words, for checkpointing.
    ///
    /// Together with [`SpRng::from_state`], this lets a simulation
    /// snapshot capture the exact stream position so a restored run
    /// draws the same values the uninterrupted run would have.
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from state words captured by
    /// [`SpRng::state`]. The restored generator continues the stream
    /// from exactly where the captured one stood.
    #[inline]
    pub fn from_state(s: [u64; 4]) -> Self {
        SpRng { s }
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        // Take the top 53 bits; divide by 2^53.
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        let mut x = self.next_raw();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_raw();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform index in `[0, len)`, convenient for slice indexing.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to
    /// `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (Floyd's algorithm).
    ///
    /// Returns them in unspecified order. Useful for picking random
    /// neighbor sets without allocating an `n`-sized scratch vector.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        // Floyd's algorithm: O(k) expected insertions.
        let mut chosen = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.index(j + 1);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        chosen
    }
}

impl RngCore for SpRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SpRng::seed_from_u64(123);
        let mut b = SpRng::seed_from_u64(123);
        for _ in 0..64 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SpRng::seed_from_u64(1);
        let mut b = SpRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_raw() == b.next_raw()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_is_deterministic_and_independent_of_consumption() {
        let root = SpRng::seed_from_u64(99);
        let c1 = root.split(5);
        let mut consumed = root.clone();
        for _ in 0..10 {
            consumed.next_raw();
        }
        // Splitting never advances parent state, and split() on a clone
        // that *was* advanced differs (state-dependent), so we check the
        // canonical property: same parent state + same id = same child.
        assert_eq!(c1, root.split(5));
        assert_ne!(c1, root.split(6));
    }

    #[test]
    fn unit_f64_in_range_and_nondegenerate() {
        let mut rng = SpRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn below_is_unbiased_ish() {
        let mut rng = SpRng::seed_from_u64(11);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 500.0,
                "bucket count {c} deviates too much"
            );
        }
    }

    #[test]
    fn below_handles_bound_one() {
        let mut rng = SpRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(rng.below(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        SpRng::seed_from_u64(0).below(0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SpRng::seed_from_u64(21);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn sample_distinct_yields_k_unique_in_range() {
        let mut rng = SpRng::seed_from_u64(33);
        for k in [0usize, 1, 5, 50, 100] {
            let s = rng.sample_distinct(100, k);
            assert_eq!(s.len(), k);
            let mut dedup = s.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), k, "duplicates in sample");
            assert!(s.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut rng = SpRng::seed_from_u64(77);
        for _ in 0..13 {
            rng.next_raw();
        }
        let mut restored = SpRng::from_state(rng.state());
        for _ in 0..64 {
            assert_eq!(restored.next_raw(), rng.next_raw());
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SpRng::seed_from_u64(8);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
