//! Quantiles and load-rank curves.
//!
//! Figure 12 of the paper plots the outgoing-bandwidth load of *every*
//! node in a topology, ranked in decreasing order, to compare the load
//! spread of today's Gnutella against the redesigned topology ("the
//! lowest 90% of loads are one to two orders of magnitude lower…").
//! [`rank_curve`] produces exactly that curve; [`quantile`] answers the
//! percentile statements in the text (the 90th-percentile "neck", the
//! top .1% heaviest loads).

/// Linear-interpolation quantile (type 7, the R/NumPy default) of a
/// data set. `q` is in `[0, 1]`.
///
/// The input slice does not need to be sorted; a sorted copy is made.
/// Returns `None` for an empty slice or a `q` outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use sp_stats::quantile;
///
/// let data = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&data, 0.5), Some(2.5));
/// assert_eq!(quantile(&data, 0.0), Some(1.0));
/// assert_eq!(quantile(&data, 1.0), Some(4.0));
/// ```
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    Some(quantile_sorted(&sorted, q))
}

/// [`quantile`] over data that is already sorted ascending; avoids the
/// copy when computing many quantiles of one data set.
///
/// # Panics
///
/// Panics if `data` is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    let pos = q * (data.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        data[lo]
    } else {
        let frac = pos - lo as f64;
        data[lo] * (1.0 - frac) + data[hi] * frac
    }
}

/// Sorts loads in *decreasing* order — the Figure 12 rank curve.
///
/// Element `i` of the result is the `(i+1)`-th heaviest load; plotting
/// it against its index reproduces the paper's "rank (in decreasing
/// required load)" axis.
pub fn rank_curve(loads: &[f64]) -> Vec<f64> {
    let mut sorted = loads.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("NaN in rank_curve input"));
    sorted
}

/// Summary of a rank curve at the percentile landmarks the paper's
/// Figure 12 discussion uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankSummary {
    /// Heaviest single load.
    pub max: f64,
    /// Load at the top 0.1% rank (paper: "the top .1% heaviest loads").
    pub top_0_1_pct: f64,
    /// Load at the 90th percentile from the top (the "neck").
    pub top_10_pct: f64,
    /// Median load.
    pub median: f64,
    /// Lightest load.
    pub min: f64,
}

impl RankSummary {
    /// Computes the landmarks from raw (unsorted) loads.
    ///
    /// Returns `None` for an empty input.
    pub fn from_loads(loads: &[f64]) -> Option<Self> {
        if loads.is_empty() {
            return None;
        }
        let mut sorted = loads.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in loads"));
        Some(RankSummary {
            max: *sorted.last().expect("nonempty"),
            top_0_1_pct: quantile_sorted(&sorted, 0.999),
            top_10_pct: quantile_sorted(&sorted, 0.90),
            median: quantile_sorted(&sorted, 0.5),
            min: sorted[0],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_basics() {
        let data = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&data, 0.5), Some(2.0));
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(3.0));
    }

    #[test]
    fn quantile_interpolates() {
        let data = [0.0, 10.0];
        assert_eq!(quantile(&data, 0.25), Some(2.5));
        assert_eq!(quantile(&data, 0.75), Some(7.5));
    }

    #[test]
    fn quantile_rejects_bad_input() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[1.0], 1.5), None);
        assert_eq!(quantile(&[1.0], -0.1), None);
    }

    #[test]
    fn single_element_quantiles() {
        let data = [7.0];
        for q in [0.0, 0.3, 0.5, 1.0] {
            assert_eq!(quantile(&data, q), Some(7.0));
        }
    }

    #[test]
    fn rank_curve_is_decreasing() {
        let curve = rank_curve(&[5.0, 1.0, 9.0, 3.0]);
        assert_eq!(curve, vec![9.0, 5.0, 3.0, 1.0]);
    }

    #[test]
    fn rank_summary_landmarks() {
        let loads: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let s = RankSummary::from_loads(&loads).unwrap();
        assert_eq!(s.max, 1000.0);
        assert_eq!(s.min, 1.0);
        assert!((s.median - 500.5).abs() < 1e-9);
        assert!(s.top_10_pct > 899.0 && s.top_10_pct < 902.0);
        assert!(s.top_0_1_pct > 998.0);
    }

    #[test]
    fn rank_summary_empty_is_none() {
        assert!(RankSummary::from_loads(&[]).is_none());
    }
}
