//! Log-normal distribution.
//!
//! Used as the synthetic stand-in for the Saroiu et al. Gnutella
//! measurement data the paper assigns to each peer (Section 4.1,
//! Step 1): the number of shared files and the session lifespan. Both
//! quantities are strongly right-skewed in the measurements — a few
//! peers share tens of thousands of files and stay connected for days,
//! while the median peer shares ~100 files for tens of minutes — and a
//! log-normal reproduces that skew with two interpretable parameters.

use super::{Normal, Sampler};
use crate::rng::SpRng;

/// Log-normal distribution: `exp(N(mu, sigma²))`.
///
/// `mu`/`sigma` are the *log-space* parameters. Construct from the more
/// intuitive median/mean via [`LogNormal::from_median_sigma`] or
/// [`LogNormal::from_mean_sigma`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates from log-space parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0` or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "mu must be finite");
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be finite and >= 0"
        );
        LogNormal { mu, sigma }
    }

    /// Creates from the distribution median (`exp(mu)`) and log-space
    /// sigma. The median is what measurement papers usually report.
    ///
    /// # Panics
    ///
    /// Panics if `median <= 0`.
    pub fn from_median_sigma(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        LogNormal::new(median.ln(), sigma)
    }

    /// Creates from the distribution *mean* and log-space sigma, using
    /// `E[X] = exp(mu + sigma²/2)`.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`.
    pub fn from_mean_sigma(mean: f64, sigma: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        LogNormal::new(mean.ln() - sigma * sigma / 2.0, sigma)
    }

    /// Analytic mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Analytic median `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Analytic variance.
    pub fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }
}

impl Sampler<f64> for LogNormal {
    fn sample(&self, rng: &mut SpRng) -> f64 {
        (self.mu + self.sigma * Normal::standard(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::OnlineStats;

    #[test]
    fn mean_matches_analytic() {
        let d = LogNormal::from_mean_sigma(1080.0, 1.2);
        assert!((d.mean() - 1080.0).abs() < 1e-9);
        let mut rng = SpRng::seed_from_u64(10);
        let mut stats = OnlineStats::new();
        for _ in 0..400_000 {
            stats.push(d.sample(&mut rng));
        }
        let rel = (stats.mean() - 1080.0).abs() / 1080.0;
        assert!(rel < 0.02, "sample mean {} off by {rel}", stats.mean());
    }

    #[test]
    fn median_matches_analytic() {
        let d = LogNormal::from_median_sigma(100.0, 1.5);
        assert!((d.median() - 100.0).abs() < 1e-9);
        let mut rng = SpRng::seed_from_u64(3);
        let mut samples: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = samples[50_000];
        assert!((med - 100.0).abs() / 100.0 < 0.05, "sample median {med}");
    }

    #[test]
    fn samples_are_positive_and_skewed() {
        let d = LogNormal::from_median_sigma(100.0, 1.5);
        let mut rng = SpRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // Right skew: mean well above median.
        assert!(mean > 150.0, "mean {mean} not skewed above median 100");
    }

    #[test]
    fn variance_formula() {
        let d = LogNormal::new(0.0, 0.5);
        let s2: f64 = 0.25;
        let expect = (s2.exp() - 1.0) * s2.exp();
        assert!((d.variance() - expect).abs() < 1e-12);
    }

    #[test]
    fn zero_sigma_is_point_mass() {
        let d = LogNormal::from_median_sigma(42.0, 0.0);
        let mut rng = SpRng::seed_from_u64(5);
        for _ in 0..10 {
            assert!((d.sample(&mut rng) - 42.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "median must be positive")]
    fn nonpositive_median_panics() {
        LogNormal::from_median_sigma(0.0, 1.0);
    }
}
