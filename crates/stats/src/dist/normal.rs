//! Normal (Gaussian) distribution and its discrete truncation.
//!
//! Cluster sizes in the paper are drawn as `C ~ N(c, 0.2c)` where `c`
//! is the mean number of clients per cluster (Section 4.1, Step 1).
//! Client counts must be non-negative integers, so instance generation
//! uses [`TruncatedDiscreteNormal`], which rounds and clamps at zero.

use super::Sampler;
use crate::rng::SpRng;

/// Normal distribution `N(mean, std²)` sampled via the Box–Muller
/// transform (the polar/Marsaglia variant, which avoids trig calls).
///
/// # Examples
///
/// ```
/// use sp_stats::{Normal, SpRng};
/// use sp_stats::dist::Sampler;
///
/// let d = Normal::new(10.0, 2.0);
/// let mut rng = SpRng::seed_from_u64(1);
/// let x = d.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates `N(mean, std²)`.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(mean.is_finite(), "mean must be finite");
        assert!(std.is_finite() && std >= 0.0, "std must be finite and >= 0");
        Normal { mean, std }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Draws one standard-normal variate (mean 0, std 1).
    ///
    /// Marsaglia polar method. The second variate of each pair is
    /// deliberately discarded: the sampler stays stateless, which keeps
    /// split RNG streams independent of call interleaving.
    pub fn standard(rng: &mut SpRng) -> f64 {
        loop {
            let u = 2.0 * rng.unit_f64() - 1.0;
            let v = 2.0 * rng.unit_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Sampler<f64> for Normal {
    fn sample(&self, rng: &mut SpRng) -> f64 {
        self.mean + self.std * Normal::standard(rng)
    }
}

/// Normal distribution rounded to the nearest integer and truncated
/// below at a floor (default 0), as used for client counts per cluster.
///
/// Sampling is by rejection: draw from the underlying normal, round,
/// and retry if the result falls below the floor. For the paper's
/// parameterization (`std = 0.2·mean`) the floor is 5σ below the mean,
/// so rejection is vanishingly rare and the sampled mean matches the
/// nominal mean to high accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedDiscreteNormal {
    inner: Normal,
    floor: u64,
}

impl TruncatedDiscreteNormal {
    /// Creates a discretized `N(mean, std²)` truncated below at `floor`.
    ///
    /// # Panics
    ///
    /// Panics if `mean < floor as f64` (the sampler would reject
    /// more than half the mass and no longer approximate the nominal
    /// mean) or on invalid normal parameters.
    pub fn new(mean: f64, std: f64, floor: u64) -> Self {
        assert!(
            mean >= floor as f64,
            "mean {mean} must be at least the floor {floor}"
        );
        TruncatedDiscreteNormal {
            inner: Normal::new(mean, std),
            floor,
        }
    }

    /// The paper's cluster-size law `N(c, 0.2c)`, truncated at zero.
    pub fn cluster_size(mean_clients: f64) -> Self {
        TruncatedDiscreteNormal::new(mean_clients.max(0.0), 0.2 * mean_clients.max(0.0), 0)
    }

    /// Nominal (untruncated) mean.
    pub fn mean(&self) -> f64 {
        self.inner.mean()
    }
}

impl Sampler<u64> for TruncatedDiscreteNormal {
    fn sample(&self, rng: &mut SpRng) -> u64 {
        // Degenerate case: zero std is a point mass.
        if self.inner.std() == 0.0 {
            return self.inner.mean().round().max(self.floor as f64) as u64;
        }
        loop {
            let x = self.inner.sample(rng).round();
            if x >= self.floor as f64 {
                return x as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::OnlineStats;

    #[test]
    fn standard_normal_moments() {
        let mut rng = SpRng::seed_from_u64(42);
        let mut stats = OnlineStats::new();
        for _ in 0..200_000 {
            stats.push(Normal::standard(&mut rng));
        }
        assert!(stats.mean().abs() < 0.01, "mean {}", stats.mean());
        assert!(
            (stats.std_dev() - 1.0).abs() < 0.01,
            "std {}",
            stats.std_dev()
        );
    }

    #[test]
    fn scaled_normal_moments() {
        let d = Normal::new(50.0, 10.0);
        let mut rng = SpRng::seed_from_u64(7);
        let mut stats = OnlineStats::new();
        for _ in 0..100_000 {
            stats.push(d.sample(&mut rng));
        }
        assert!((stats.mean() - 50.0).abs() < 0.2);
        assert!((stats.std_dev() - 10.0).abs() < 0.2);
    }

    #[test]
    fn cluster_size_law_matches_paper_mean() {
        // N(c, .2c) truncated at 0: for c = 10 truncation is negligible
        // and the sample mean must track c.
        let d = TruncatedDiscreteNormal::cluster_size(10.0);
        let mut rng = SpRng::seed_from_u64(5);
        let mut stats = OnlineStats::new();
        for _ in 0..100_000 {
            stats.push(d.sample(&mut rng) as f64);
        }
        assert!((stats.mean() - 10.0).abs() < 0.1, "mean {}", stats.mean());
        assert!(
            (stats.std_dev() - 2.0).abs() < 0.1,
            "std {}",
            stats.std_dev()
        );
    }

    #[test]
    fn truncation_floor_respected() {
        let d = TruncatedDiscreteNormal::new(2.0, 3.0, 1);
        let mut rng = SpRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 1);
        }
    }

    #[test]
    fn zero_std_is_point_mass() {
        let d = TruncatedDiscreteNormal::new(4.0, 0.0, 0);
        let mut rng = SpRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 4);
        }
    }

    #[test]
    fn zero_mean_cluster_size_is_all_zero_floor() {
        let d = TruncatedDiscreteNormal::cluster_size(0.0);
        let mut rng = SpRng::seed_from_u64(2);
        assert_eq!(d.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "must be at least the floor")]
    fn mean_below_floor_panics() {
        TruncatedDiscreteNormal::new(0.5, 1.0, 2);
    }

    #[test]
    #[should_panic(expected = "std must be finite")]
    fn negative_std_panics() {
        Normal::new(0.0, -1.0);
    }
}
