//! Poisson distribution.
//!
//! The event-driven simulator draws per-query result counts: a cluster
//! indexing `x` files matches query class `j` `Binomial(x, f_j)` times,
//! which for the tiny per-file match probabilities of the query model
//! is Poisson with mean `f_j·x` to high accuracy.

use super::{Normal, Sampler};
use crate::rng::SpRng;

/// Poisson distribution with mean `lambda ≥ 0`.
///
/// Sampling uses Knuth's product method below mean 30 and a rounded
/// normal approximation above (error < 1% there, far below the
/// Monte-Carlo noise of any simulation using it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or non-finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "lambda must be finite and >= 0"
        );
        Poisson { lambda }
    }

    /// The mean (= variance).
    pub fn mean(&self) -> f64 {
        self.lambda
    }
}

impl Sampler<u64> for Poisson {
    fn sample(&self, rng: &mut SpRng) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda < 30.0 {
            // Knuth: count multiplications until the product drops
            // below e^{-λ}.
            let limit = (-self.lambda).exp();
            let mut product = rng.unit_f64();
            let mut count = 0u64;
            while product > limit {
                product *= rng.unit_f64();
                count += 1;
            }
            count
        } else {
            let x = self.lambda + self.lambda.sqrt() * Normal::standard(rng);
            x.round().max(0.0) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::OnlineStats;

    #[test]
    fn zero_lambda_is_always_zero() {
        let d = Poisson::new(0.0);
        let mut rng = SpRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(d.sample(&mut rng), 0);
        }
    }

    #[test]
    fn small_lambda_moments() {
        let d = Poisson::new(2.5);
        let mut rng = SpRng::seed_from_u64(2);
        let mut s = OnlineStats::new();
        for _ in 0..200_000 {
            s.push(d.sample(&mut rng) as f64);
        }
        assert!((s.mean() - 2.5).abs() < 0.02, "mean {}", s.mean());
        assert!((s.variance() - 2.5).abs() < 0.05, "var {}", s.variance());
    }

    #[test]
    fn large_lambda_moments() {
        let d = Poisson::new(400.0);
        let mut rng = SpRng::seed_from_u64(3);
        let mut s = OnlineStats::new();
        for _ in 0..100_000 {
            s.push(d.sample(&mut rng) as f64);
        }
        assert!((s.mean() - 400.0).abs() < 1.0, "mean {}", s.mean());
        assert!((s.std_dev() - 20.0).abs() < 0.5, "std {}", s.std_dev());
    }

    #[test]
    fn tiny_lambda_mostly_zero() {
        let d = Poisson::new(1e-4);
        let mut rng = SpRng::seed_from_u64(4);
        let nonzero = (0..100_000).filter(|_| d.sample(&mut rng) > 0).count();
        // P(X > 0) ≈ 1e-4 → about 10 in 100k.
        assert!(nonzero < 50, "nonzero {nonzero}");
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn negative_lambda_panics() {
        Poisson::new(-1.0);
    }
}
