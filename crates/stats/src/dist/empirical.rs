//! Weighted discrete ("empirical") distribution via Walker's alias
//! method.
//!
//! Instance generation assigns measured quantities (file-count class,
//! peer capability tier, …) from arbitrary weighted tables. The alias
//! method gives O(1) sampling after O(n) setup — important in the
//! event-driven simulator, which draws per-peer attributes at every
//! churn event.

use super::Sampler;
use crate::rng::SpRng;

/// Discrete distribution over `0..n` with arbitrary non-negative
/// weights, sampled in O(1) by the alias method.
///
/// # Examples
///
/// ```
/// use sp_stats::{Empirical, SpRng};
/// use sp_stats::dist::Sampler;
///
/// // 25% free riders, 75% sharers — the Adar & Huberman split.
/// let d = Empirical::new(&[1.0, 3.0]).unwrap();
/// let mut rng = SpRng::seed_from_u64(1);
/// let x = d.sample(&mut rng);
/// assert!(x < 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    /// Per-cell acceptance probability.
    prob: Vec<f64>,
    /// Per-cell alias target.
    alias: Vec<usize>,
    /// Normalized weights, retained for pmf queries.
    pmf: Vec<f64>,
}

/// Error constructing an [`Empirical`] distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmpiricalError {
    /// The weight table was empty.
    Empty,
    /// All weights were zero, or a weight was negative/NaN.
    InvalidWeights,
}

impl std::fmt::Display for EmpiricalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmpiricalError::Empty => write!(f, "empirical distribution needs at least one weight"),
            EmpiricalError::InvalidWeights => {
                write!(f, "weights must be non-negative, finite, and not all zero")
            }
        }
    }
}

impl std::error::Error for EmpiricalError {}

impl Empirical {
    /// Builds the alias table from a weight slice.
    ///
    /// # Errors
    ///
    /// Returns [`EmpiricalError`] on an empty table, any negative or
    /// non-finite weight, or an all-zero table.
    pub fn new(weights: &[f64]) -> Result<Self, EmpiricalError> {
        if weights.is_empty() {
            return Err(EmpiricalError::Empty);
        }
        if weights.iter().any(|&w| !w.is_finite() || w < 0.0) {
            return Err(EmpiricalError::InvalidWeights);
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(EmpiricalError::InvalidWeights);
        }
        let n = weights.len();
        let pmf: Vec<f64> = weights.iter().map(|&w| w / total).collect();

        // Vose's stable alias construction.
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0usize; n];
        let mut small = Vec::with_capacity(n);
        let mut large = Vec::with_capacity(n);
        let mut scaled: Vec<f64> = pmf.iter().map(|&p| p * n as f64).collect();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        Ok(Empirical { prob, alias, pmf })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.pmf.len()
    }

    /// Whether the table is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.pmf.is_empty()
    }

    /// Normalized probability of category `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn pmf(&self, i: usize) -> f64 {
        self.pmf[i]
    }
}

impl Sampler<usize> for Empirical {
    fn sample(&self, rng: &mut SpRng) -> usize {
        let i = rng.index(self.prob.len());
        if rng.unit_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_match_weights() {
        let d = Empirical::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut rng = SpRng::seed_from_u64(23);
        let n = 400_000usize;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[d.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - d.pmf(i)).abs() < 0.005,
                "cat {i}: empirical {emp} vs pmf {}",
                d.pmf(i)
            );
        }
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let d = Empirical::new(&[0.0, 1.0, 0.0]).unwrap();
        let mut rng = SpRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_category() {
        let d = Empirical::new(&[7.5]).unwrap();
        let mut rng = SpRng::seed_from_u64(0);
        assert_eq!(d.sample(&mut rng), 0);
        assert!((d.pmf(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_normalized() {
        let d = Empirical::new(&[5.0, 15.0]).unwrap();
        assert!((d.pmf(0) - 0.25).abs() < 1e-12);
        assert!((d.pmf(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn errors_reported() {
        assert_eq!(Empirical::new(&[]).unwrap_err(), EmpiricalError::Empty);
        assert_eq!(
            Empirical::new(&[0.0, 0.0]).unwrap_err(),
            EmpiricalError::InvalidWeights
        );
        assert_eq!(
            Empirical::new(&[1.0, -1.0]).unwrap_err(),
            EmpiricalError::InvalidWeights
        );
        assert_eq!(
            Empirical::new(&[f64::NAN]).unwrap_err(),
            EmpiricalError::InvalidWeights
        );
    }

    #[test]
    fn error_display_is_informative() {
        let msg = EmpiricalError::Empty.to_string();
        assert!(msg.contains("at least one"));
    }
}
