//! Probability distributions used across the reproduction.
//!
//! The paper draws from the following stochastic sources:
//!
//! * cluster sizes: `C ~ N(c, 0.2c)` (Section 4.1, Step 1) —
//!   [`Normal`] / [`TruncatedDiscreteNormal`];
//! * file counts and session lifespans: heavy-tailed measurement
//!   distributions from Saroiu et al. — [`LogNormal`] and
//!   [`BoundedPareto`];
//! * query popularity `g(j)` of the Appendix B query model — [`Zipf`];
//! * arbitrary measured discrete data — [`Empirical`] (alias method).
//!
//! Each distribution exposes `sample(&mut SpRng)` plus its analytic
//! moments where they exist, so tests can verify the samplers against
//! closed forms.

mod empirical;
mod lognormal;
mod normal;
mod pareto;
mod poisson;
mod zipf;

pub use empirical::{Empirical, EmpiricalError};
pub use lognormal::LogNormal;
pub use normal::{Normal, TruncatedDiscreteNormal};
pub use pareto::BoundedPareto;
pub use poisson::Poisson;
pub use zipf::Zipf;

use crate::rng::SpRng;

/// A distribution over `T` that can be sampled with the crate RNG.
///
/// A local trait (rather than `rand::distr::Distribution`) keeps the
/// sampling contract pinned to [`SpRng`] and lets distributions also be
/// trait objects in configuration structs.
pub trait Sampler<T> {
    /// Draws one sample.
    fn sample(&self, rng: &mut SpRng) -> T;

    /// Draws `n` samples into a fresh vector.
    fn sample_n(&self, rng: &mut SpRng, n: usize) -> Vec<T> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}
