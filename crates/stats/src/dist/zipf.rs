//! Zipf distribution over a finite rank universe.
//!
//! The Appendix B query model needs a query-popularity law `g(j)`:
//! the probability that a random submitted query is query `q_j`. P2P
//! query logs (OpenNap in the paper's reference [25], and every
//! Gnutella study since) are well described by a Zipf law
//! `g(j) ∝ (j+1)^{-s}`. This module provides both the probability
//! mass function (used analytically by the query model) and an exact
//! inverse-CDF sampler (used by the event-driven simulator).

use super::Sampler;
use crate::rng::SpRng;

/// Zipf distribution over ranks `0..n` with exponent `s ≥ 0`:
/// `P(rank = j) = (j+1)^{-s} / H_{n,s}`.
///
/// `s = 0` degenerates to the uniform distribution over `0..n`.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    exponent: f64,
    /// Cumulative distribution, `cdf[j] = P(rank <= j)`; `cdf[n-1] = 1`.
    cdf: Vec<f64>,
    /// Probability mass `pmf[j]`.
    pmf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf law over `n` ranks with the given exponent.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or `exponent` is negative or non-finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "exponent must be finite and >= 0"
        );
        let mut pmf: Vec<f64> = (0..n).map(|j| ((j + 1) as f64).powf(-exponent)).collect();
        let norm: f64 = pmf.iter().sum();
        for p in &mut pmf {
            *p /= norm;
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &p in &pmf {
            acc += p;
            cdf.push(acc);
        }
        // Guard against float drift so inverse-CDF sampling cannot fall
        // off the end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { exponent, cdf, pmf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.pmf.len()
    }

    /// Whether the universe is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.pmf.is_empty()
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability mass of rank `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn pmf(&self, j: usize) -> f64 {
        self.pmf[j]
    }

    /// Iterator over `(rank, probability)` pairs, most popular first.
    pub fn masses(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.pmf.iter().copied().enumerate()
    }

    /// Expected value of an arbitrary function of rank,
    /// `Σ_j g(j)·f(j)` — the workhorse of the Appendix B query model.
    pub fn expect<F: FnMut(usize) -> f64>(&self, mut f: F) -> f64 {
        self.pmf.iter().enumerate().map(|(j, &p)| p * f(j)).sum()
    }
}

impl Sampler<usize> for Zipf {
    /// Exact inverse-CDF sampling by binary search: O(log n).
    fn sample(&self, rng: &mut SpRng) -> usize {
        let u = rng.unit_f64();
        // partition_point returns the first index with cdf[j] >= u
        // (cdf is nondecreasing and ends at exactly 1.0).
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for &(n, s) in &[(1usize, 1.0), (10, 0.8), (1000, 1.2), (5, 0.0)] {
            let z = Zipf::new(n, s);
            let total: f64 = z.masses().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-12, "n={n} s={s} total={total}");
        }
    }

    #[test]
    fn pmf_is_monotone_decreasing() {
        let z = Zipf::new(100, 1.0);
        for j in 1..100 {
            assert!(z.pmf(j) <= z.pmf(j - 1));
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(8, 0.0);
        for j in 0..8 {
            assert!((z.pmf(j) - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_ratios_follow_power_law() {
        let z = Zipf::new(1000, 1.0);
        // g(0)/g(9) = 10 for s = 1.
        let ratio = z.pmf(0) / z.pmf(9);
        assert!((ratio - 10.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn sampler_matches_pmf() {
        let z = Zipf::new(50, 1.0);
        let mut rng = SpRng::seed_from_u64(17);
        let n = 200_000usize;
        let mut counts = vec![0usize; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (j, &count) in counts.iter().enumerate().take(10) {
            let emp = count as f64 / n as f64;
            let rel = (emp - z.pmf(j)).abs() / z.pmf(j);
            assert!(rel < 0.05, "rank {j}: empirical {emp} vs pmf {}", z.pmf(j));
        }
    }

    #[test]
    fn expect_computes_weighted_sum() {
        let z = Zipf::new(4, 0.0); // uniform over 0..4
        let e = z.expect(|j| j as f64);
        assert!((e - 1.5).abs() < 1e-12);
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = Zipf::new(1, 2.0);
        let mut rng = SpRng::seed_from_u64(0);
        for _ in 0..20 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_universe_panics() {
        Zipf::new(0, 1.0);
    }
}
