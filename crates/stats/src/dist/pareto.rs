//! Bounded (truncated) Pareto distribution.
//!
//! An alternative heavy-tail model for per-peer file counts and
//! lifespans. The Saroiu et al. measurements the paper cites show
//! power-law-like tails with physical upper bounds (nobody shares more
//! files than their disk holds; no session outlives the measurement
//! window), which is exactly the bounded Pareto shape. The instance
//! builder in `sp-model` lets experiments swap [`LogNormal`] for this
//! distribution to test sensitivity of the rules of thumb to the tail
//! model.
//!
//! [`LogNormal`]: super::LogNormal

use super::Sampler;
use crate::rng::SpRng;

/// Pareto distribution with shape `alpha > 0` truncated to
/// `[low, high]`.
///
/// Density `∝ x^{-alpha-1}` on the support. Sampled by inverse CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    alpha: f64,
    low: f64,
    high: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto on `[low, high]` with shape `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < low < high` and `alpha > 0`, all finite.
    pub fn new(alpha: f64, low: f64, high: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be > 0");
        assert!(
            low.is_finite() && high.is_finite() && 0.0 < low && low < high,
            "need 0 < low < high"
        );
        BoundedPareto { alpha, low, high }
    }

    /// Shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Lower bound of the support.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper bound of the support.
    pub fn high(&self) -> f64 {
        self.high
    }

    /// Analytic mean of the truncated distribution.
    pub fn mean(&self) -> f64 {
        let (a, l, h) = (self.alpha, self.low, self.high);
        if (a - 1.0).abs() < 1e-12 {
            // α = 1 limit: mean = ln(h/l) · l·h / (h − l).
            (h / l).ln() * l * h / (h - l)
        } else {
            let la = l.powf(a);
            let num = la / (1.0 - (l / h).powf(a)) * a / (a - 1.0);
            num * (l.powf(1.0 - a) - h.powf(1.0 - a))
        }
    }
}

impl Sampler<f64> for BoundedPareto {
    fn sample(&self, rng: &mut SpRng) -> f64 {
        // Inverse CDF of the bounded Pareto:
        // x = (l^-a - u (l^-a - h^-a))^(-1/a)
        let u = rng.unit_f64();
        let la = self.low.powf(-self.alpha);
        let ha = self.high.powf(-self.alpha);
        (la - u * (la - ha)).powf(-1.0 / self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::OnlineStats;

    #[test]
    fn samples_within_bounds() {
        let d = BoundedPareto::new(1.1, 10.0, 10_000.0);
        let mut rng = SpRng::seed_from_u64(6);
        for _ in 0..50_000 {
            let x = d.sample(&mut rng);
            assert!((10.0..=10_000.0).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn sample_mean_matches_analytic() {
        let d = BoundedPareto::new(1.5, 1.0, 1000.0);
        let mut rng = SpRng::seed_from_u64(13);
        let mut stats = OnlineStats::new();
        for _ in 0..400_000 {
            stats.push(d.sample(&mut rng));
        }
        let rel = (stats.mean() - d.mean()).abs() / d.mean();
        assert!(
            rel < 0.03,
            "sample mean {} vs analytic {}",
            stats.mean(),
            d.mean()
        );
    }

    #[test]
    fn alpha_one_mean_limit() {
        let d = BoundedPareto::new(1.0, 1.0, std::f64::consts::E);
        // mean = ln(e/1)·1·e/(e−1) = e/(e−1)
        let expect = std::f64::consts::E / (std::f64::consts::E - 1.0);
        assert!((d.mean() - expect).abs() < 1e-9);
    }

    #[test]
    fn heavier_tail_for_smaller_alpha() {
        let light = BoundedPareto::new(3.0, 1.0, 1e6);
        let heavy = BoundedPareto::new(1.05, 1.0, 1e6);
        assert!(heavy.mean() > light.mean());
    }

    #[test]
    #[should_panic(expected = "0 < low < high")]
    fn inverted_bounds_panic() {
        BoundedPareto::new(1.0, 10.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be > 0")]
    fn zero_alpha_panics() {
        BoundedPareto::new(0.0, 1.0, 2.0);
    }
}
