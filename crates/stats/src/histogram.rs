//! Histograms and per-key grouped statistics.
//!
//! Figures 7 and 8 of the paper are *histograms over outdegree*: for
//! each number of neighbors, they plot the mean load / mean number of
//! results of all super-peers with that outdegree, with one-standard-
//! deviation bars. [`GroupedStats`] accumulates exactly that.
//! [`Histogram`] is a plain fixed-width-bin frequency histogram used to
//! check generated degree sequences against the power law.

use std::collections::BTreeMap;

use crate::summary::OnlineStats;

/// Fixed-width-bin frequency histogram over `[low, high)`.
///
/// Out-of-range observations are clamped into the first/last bin and
/// counted separately so tests can assert none occurred.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins on `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `low >= high`.
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(low < high, "need low < high");
        Histogram {
            low,
            high,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.low {
            self.underflow += 1;
            self.bins[0] += 1;
            return;
        }
        if x >= self.high {
            self.overflow += 1;
            let last = self.bins.len() - 1;
            self.bins[last] += 1;
            return;
        }
        let width = (self.high - self.low) / self.bins.len() as f64;
        let idx = (((x - self.low) / width) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Observations that fell below `low` (clamped into bin 0).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `high` (clamped into the last bin).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `(bin_center, count)` pairs, in order.
    pub fn centers(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.high - self.low) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.low + (i as f64 + 0.5) * width, c))
    }
}

/// Streaming statistics grouped by an integer key (e.g. outdegree).
///
/// Backed by a `BTreeMap` so iteration is sorted by key, matching how
/// the paper's histogram figures order their x axis.
///
/// # Examples
///
/// ```
/// use sp_stats::GroupedStats;
///
/// let mut g = GroupedStats::new();
/// g.push(3, 10.0);  // a super-peer with 3 neighbors, load 10
/// g.push(3, 14.0);
/// g.push(7, 99.0);
/// assert_eq!(g.get(3).unwrap().mean(), 12.0);
/// assert_eq!(g.keys().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupedStats {
    groups: BTreeMap<u64, OnlineStats>,
}

impl GroupedStats {
    /// Creates an empty grouping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records observation `x` under `key`.
    pub fn push(&mut self, key: u64, x: f64) {
        self.groups.entry(key).or_default().push(x);
    }

    /// Statistics for `key`, if any observation was recorded.
    pub fn get(&self, key: u64) -> Option<&OnlineStats> {
        self.groups.get(&key)
    }

    /// Sorted iterator over keys.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.groups.keys().copied()
    }

    /// Sorted iterator over `(key, stats)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &OnlineStats)> + '_ {
        self.groups.iter().map(|(&k, s)| (k, s))
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Merges another grouping into this one.
    pub fn merge(&mut self, other: &GroupedStats) {
        for (&k, s) in &other.groups {
            self.groups.entry(k).or_default().merge(s);
        }
    }

    /// Grand statistics over all observations regardless of key.
    pub fn overall(&self) -> OnlineStats {
        let mut all = OnlineStats::new();
        for s in self.groups.values() {
            all.merge(s);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_observations() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        for i in 0..10 {
            assert_eq!(h.count(i), 1, "bin {i}");
        }
        assert_eq!(h.total(), 10);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn histogram_clamps_and_counts_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-5.0);
        h.push(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 1);
    }

    #[test]
    fn histogram_boundary_goes_to_upper_bin() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(3.0); // exactly on the 3rd bin's lower edge
        assert_eq!(h.count(3), 1);
    }

    #[test]
    fn histogram_centers() {
        let h = Histogram::new(0.0, 4.0, 4);
        let centers: Vec<f64> = h.centers().map(|(c, _)| c).collect();
        assert_eq!(centers, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn grouped_stats_by_key() {
        let mut g = GroupedStats::new();
        g.push(2, 1.0);
        g.push(2, 3.0);
        g.push(5, 10.0);
        assert_eq!(g.len(), 2);
        assert_eq!(g.get(2).unwrap().mean(), 2.0);
        assert_eq!(g.get(5).unwrap().count(), 1);
        assert!(g.get(3).is_none());
    }

    #[test]
    fn grouped_merge_and_overall() {
        let mut a = GroupedStats::new();
        a.push(1, 1.0);
        a.push(2, 2.0);
        let mut b = GroupedStats::new();
        b.push(2, 4.0);
        b.push(3, 9.0);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(2).unwrap().count(), 2);
        assert_eq!(a.get(2).unwrap().mean(), 3.0);
        let overall = a.overall();
        assert_eq!(overall.count(), 4);
        assert!((overall.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn grouped_iteration_is_sorted() {
        let mut g = GroupedStats::new();
        for k in [9u64, 1, 5, 3] {
            g.push(k, 0.0);
        }
        let keys: Vec<u64> = g.keys().collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "need low < high")]
    fn bad_histogram_range_panics() {
        Histogram::new(1.0, 1.0, 4);
    }
}
