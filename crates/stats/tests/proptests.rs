//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use sp_stats::dist::Sampler;
use sp_stats::{quantile, rank_curve, Empirical, OnlineStats, SpRng, Zipf};

proptest! {
    /// Welford merge must agree with sequential accumulation for any
    /// split point of any data set.
    #[test]
    fn merge_matches_sequential(
        data in prop::collection::vec(-1e6f64..1e6, 1..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..split] {
            a.push(x);
        }
        for &x in &data[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs()
            <= 1e-5 * (1.0 + whole.variance().abs()));
    }

    /// The mean always lies within [min, max].
    #[test]
    fn mean_bounded_by_extremes(data in prop::collection::vec(-1e9f64..1e9, 1..100)) {
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        prop_assert!(s.mean() >= s.min() - 1e-6);
        prop_assert!(s.mean() <= s.max() + 1e-6);
    }

    /// Quantiles are monotone in q and bounded by the data range.
    #[test]
    fn quantiles_monotone(
        data in prop::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&data, lo).unwrap();
        let b = quantile(&data, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(a >= min - 1e-12 && b <= max + 1e-12);
    }

    /// rank_curve is a permutation of the input sorted descending.
    #[test]
    fn rank_curve_permutation(data in prop::collection::vec(0.0f64..1e6, 0..100)) {
        let curve = rank_curve(&data);
        prop_assert_eq!(curve.len(), data.len());
        for w in curve.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        let sum_in: f64 = data.iter().sum();
        let sum_out: f64 = curve.iter().sum();
        prop_assert!((sum_in - sum_out).abs() < 1e-6 * (1.0 + sum_in.abs()));
    }

    /// Zipf pmf always sums to 1 and sampling stays in range.
    #[test]
    fn zipf_normalized(n in 1usize..500, s in 0.0f64..3.0, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let total: f64 = z.masses().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let mut rng = SpRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Empirical distribution never samples a zero-weight category.
    #[test]
    fn empirical_respects_support(
        weights in prop::collection::vec(0.0f64..10.0, 1..30),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let d = Empirical::new(&weights).unwrap();
        let mut rng = SpRng::seed_from_u64(seed);
        for _ in 0..100 {
            let i = d.sample(&mut rng);
            prop_assert!(weights[i] > 0.0, "sampled zero-weight category {}", i);
        }
    }

    /// Splitting the RNG with distinct ids yields distinct streams.
    #[test]
    fn rng_splits_distinct(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let root = SpRng::seed_from_u64(seed);
        let mut ra = root.split(a);
        let mut rb = root.split(b);
        let equal = (0..8).all(|_| ra.next_raw() == rb.next_raw());
        prop_assert!(!equal);
    }
}
