//! Micro-benchmarks for the topology substrate: generation and
//! TTL-bounded flooding, the inner loops of every figure sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_graph::generate::{complete, erdos_renyi, plod, PlodConfig};
use sp_graph::traverse::{flood, message_counts};
use sp_stats::SpRng;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(20);
    for &n in &[1000usize, 4000] {
        group.bench_with_input(BenchmarkId::new("plod_3.1", n), &n, |b, &n| {
            let mut rng = SpRng::seed_from_u64(1);
            b.iter(|| plod(n, PlodConfig::with_mean(3.1), &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("erdos_renyi_3.1", n), &n, |b, &n| {
            let mut rng = SpRng::seed_from_u64(1);
            b.iter(|| erdos_renyi(n, 3.1, &mut rng));
        });
    }
    group.bench_function("complete_500", |b| b.iter(|| complete(500)));
    group.finish();
}

fn bench_flooding(c: &mut Criterion) {
    let mut group = c.benchmark_group("flood");
    group.sample_size(30);
    let mut rng = SpRng::seed_from_u64(2);
    let g = plod(4000, PlodConfig::with_mean(3.1), &mut rng);
    for &ttl in &[3u16, 7] {
        group.bench_with_input(BenchmarkId::new("bfs_ttl", ttl), &ttl, |b, &ttl| {
            let mut src = 0u32;
            b.iter(|| {
                src = (src + 17) % g.num_nodes() as u32;
                flood(&g, src, ttl)
            });
        });
    }
    group.bench_function("message_counts_ttl7", |b| {
        let f = flood(&g, 0, 7);
        b.iter(|| message_counts(&g, &f));
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_flooding);
criterion_main!(benches);
