//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! These are comparative *measurements* (printed through Criterion's
//! timing of the underlying evaluation) over model variants:
//!
//! * topology family at equal mean degree — PLOD power-law vs
//!   Erdős–Rényi vs random-regular — showing how degree spread shapes
//!   analysis cost (flood fan-out) on top of the load-spread results in
//!   the integration tests;
//! * redundancy factor k = 1, 2, 3 — the paper stops at 2 because
//!   connections grow as k²; the bench exposes the evaluation cost and
//!   the integration tests the load effect;
//! * query-model universe size — the match-cache makes per-instance
//!   analysis nearly independent of `num_classes`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_graph::generate::{erdos_renyi, plod, random_regular, PlodConfig};
use sp_model::analysis::{analyze, AnalysisOptions};
use sp_model::config::Config;
use sp_model::instance::NetworkInstance;
use sp_model::query_model::{QueryModel, QueryModelConfig};
use sp_stats::SpRng;

fn bench_topology_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_topology");
    group.sample_size(15);
    let n = 2000;
    let d = 6.0;
    group.bench_function("plod", |b| {
        let mut rng = SpRng::seed_from_u64(3);
        b.iter(|| plod(n, PlodConfig::with_mean(d), &mut rng));
    });
    group.bench_function("erdos_renyi", |b| {
        let mut rng = SpRng::seed_from_u64(3);
        b.iter(|| erdos_renyi(n, d, &mut rng));
    });
    group.bench_function("random_regular", |b| {
        let mut rng = SpRng::seed_from_u64(3);
        b.iter(|| random_regular(n, d as usize, &mut rng));
    });
    group.finish();
}

fn bench_redundancy_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_redundancy_k");
    group.sample_size(10);
    for k in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let cfg = Config {
                graph_size: 1000,
                cluster_size: 10,
                redundancy_k: k,
                ..Config::default()
            };
            let mut rng = SpRng::seed_from_u64(4);
            let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
            let model = QueryModel::from_config(&cfg.query_model);
            b.iter(|| analyze(&inst, &model, &AnalysisOptions::default(), &mut rng));
        });
    }
    group.finish();
}

fn bench_query_universe(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_query_classes");
    group.sample_size(10);
    for classes in [256usize, 1024, 4096] {
        group.bench_with_input(
            BenchmarkId::from_parameter(classes),
            &classes,
            |b, &classes| {
                let cfg = Config {
                    graph_size: 1000,
                    cluster_size: 10,
                    query_model: QueryModelConfig {
                        num_classes: classes,
                        ..Default::default()
                    },
                    ..Config::default()
                };
                let mut rng = SpRng::seed_from_u64(5);
                let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
                let model = QueryModel::from_config(&cfg.query_model);
                b.iter(|| analyze(&inst, &model, &AnalysisOptions::default(), &mut rng));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_topology_families,
    bench_redundancy_k,
    bench_query_universe
);
criterion_main!(benches);
