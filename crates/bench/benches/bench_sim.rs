//! Benchmarks for the event-driven simulator: events per second under
//! realistic churn + query traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_model::config::Config;
use sp_sim::engine::{SimOptions, Simulation};

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.sample_size(10);
    for &(peers, duration) in &[(200usize, 600.0f64), (1000, 300.0)] {
        group.bench_with_input(
            BenchmarkId::new("steady_state", format!("{peers}p_{duration}s")),
            &(peers, duration),
            |b, &(peers, duration)| {
                let cfg = Config {
                    graph_size: peers,
                    cluster_size: 10,
                    ..Config::default()
                };
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut sim = Simulation::new(
                        &cfg,
                        SimOptions {
                            duration_secs: duration,
                            seed,
                            ..Default::default()
                        },
                    );
                    sim.run()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
