//! Benchmarks for the event-driven simulator: events per second under
//! realistic churn + query traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_model::config::Config;
use sp_sim::engine::{SimOptions, Simulation};
use sp_sim::reference::ReferenceSimulation;

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.sample_size(10);
    for &(peers, duration) in &[(200usize, 600.0f64), (1000, 300.0)] {
        group.bench_with_input(
            BenchmarkId::new("steady_state", format!("{peers}p_{duration}s")),
            &(peers, duration),
            |b, &(peers, duration)| {
                let cfg = Config {
                    graph_size: peers,
                    cluster_size: 10,
                    ..Config::default()
                };
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut sim = Simulation::new(
                        &cfg,
                        SimOptions {
                            duration_secs: duration,
                            seed,
                            ..Default::default()
                        },
                    );
                    sim.run()
                });
            },
        );
    }
    group.finish();
}

/// Head-to-head: the reference engine vs the optimized engine on the
/// same workload and seed. The two produce bitwise-identical metrics
/// (see `tests/sim_determinism.rs`); this group tracks the wall-clock
/// gap that `repro_bench` summarizes as `speedup_vs_reference`.
fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engines");
    group.sample_size(10);
    let cfg = Config {
        graph_size: 1000,
        cluster_size: 10,
        ..Config::default()
    };
    let opts = || SimOptions {
        duration_secs: 600.0,
        seed: 42,
        ..Default::default()
    };
    group.bench_function(BenchmarkId::new("reference", "1000p_600s"), |b| {
        b.iter(|| ReferenceSimulation::new(&cfg, opts()).run());
    });
    group.bench_function(BenchmarkId::new("fast", "1000p_600s"), |b| {
        b.iter(|| Simulation::new(&cfg, opts()).run());
    });
    group.finish();
}

criterion_group!(benches, bench_sim, bench_engines);
criterion_main!(benches);
