//! Head-to-head benchmark of the two analysis engines at sweep scale:
//! power-law overlay, 10 000 clusters, TTL 7, full source loop — the
//! per-instance cost that dominates every figure reproduction.
//!
//! Cases:
//!
//! * `reference` — the original implementation: three fresh n-sized
//!   vectors per source and an O(n) charging scan;
//! * `fast_1_thread` — reusable epoch-stamped scratch + O(reach)
//!   charging, single worker (the pure algorithmic win);
//! * `fast_all_cores` — the same plus source-level parallelism across
//!   one shard-worker per core.
//!
//! Set `BENCH_ENGINE_QUICK=1` to shrink to 1 000 clusters for a smoke
//! run.

use criterion::{criterion_group, criterion_main, Criterion};
use sp_model::analysis::{analyze, AnalysisOptions, Engine};
use sp_model::config::Config;
use sp_model::instance::NetworkInstance;
use sp_model::query_model::QueryModel;
use sp_stats::SpRng;

fn bench_engines(c: &mut Criterion) {
    let quick = std::env::var("BENCH_ENGINE_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false);
    // Defaults are the paper's Table 1: power-law at outdegree 3.1,
    // TTL 7; 100 000 users at cluster size 10 = 10 000 clusters.
    let cfg = Config {
        graph_size: if quick { 10_000 } else { 100_000 },
        cluster_size: 10,
        ttl: 7,
        ..Config::default()
    };
    let mut rng = SpRng::seed_from_u64(42);
    let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
    let model = QueryModel::from_config(&cfg.query_model);

    let mut group = c.benchmark_group(if quick {
        "engine_1k_clusters_ttl7_full"
    } else {
        "engine_10k_clusters_ttl7_full"
    });
    group.sample_size(if quick { 10 } else { 2 });

    let cases = [
        (
            "reference",
            AnalysisOptions {
                engine: Engine::Reference,
                ..AnalysisOptions::default()
            },
        ),
        (
            "fast_1_thread",
            AnalysisOptions {
                threads: 1,
                ..AnalysisOptions::default()
            },
        ),
        ("fast_all_cores", AnalysisOptions::default()),
    ];
    for (name, opts) in cases {
        group.bench_function(name, |b| b.iter(|| analyze(&inst, &model, &opts, &mut rng)));
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
