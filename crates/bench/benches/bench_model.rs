//! Benchmarks for the analysis pipeline: query-model evaluation,
//! instance generation, and the full per-instance mean-value analysis
//! (the cost of one trial of any figure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_model::analysis::{analyze, AnalysisOptions};
use sp_model::config::{Config, GraphType};
use sp_model::instance::NetworkInstance;
use sp_model::query_model::{MatchCache, QueryModel};
use sp_stats::SpRng;

fn bench_query_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_model");
    let model = QueryModel::paper_default();
    group.bench_function("prob_no_match_1k_files", |b| {
        b.iter(|| model.prob_no_match(std::hint::black_box(1000)))
    });
    group.bench_function("match_cache_hit", |b| {
        let mut cache = MatchCache::new();
        cache.prob_no_match(&model, 1000);
        b.iter(|| cache.prob_no_match(&model, std::hint::black_box(1000)))
    });
    group.bench_function("build_calibrated_model", |b| {
        b.iter(QueryModel::paper_default)
    });
    group.finish();
}

fn bench_instance(c: &mut Criterion) {
    let mut group = c.benchmark_group("instance");
    group.sample_size(20);
    for &n in &[1000usize, 5000] {
        group.bench_with_input(BenchmarkId::new("generate", n), &n, |b, &n| {
            let cfg = Config {
                graph_size: n,
                cluster_size: 10,
                ..Config::default()
            };
            let mut rng = SpRng::seed_from_u64(1);
            b.iter(|| NetworkInstance::generate(&cfg, &mut rng).unwrap());
        });
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze");
    group.sample_size(10);
    let cases = [
        (
            "power_n1000_c10_ttl7",
            Config {
                graph_size: 1000,
                cluster_size: 10,
                ..Config::default()
            },
        ),
        (
            "strong_n1000_c10_ttl1",
            Config {
                graph_size: 1000,
                cluster_size: 10,
                graph_type: GraphType::StronglyConnected,
                ttl: 1,
                ..Config::default()
            },
        ),
        (
            "power_n1000_c10_red",
            Config {
                graph_size: 1000,
                cluster_size: 10,
                redundancy_k: 2,
                ..Config::default()
            },
        ),
    ];
    for (name, cfg) in cases {
        group.bench_function(name, |b| {
            let mut rng = SpRng::seed_from_u64(2);
            let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
            let model = QueryModel::from_config(&cfg.query_model);
            b.iter(|| analyze(&inst, &model, &AnalysisOptions::default(), &mut rng));
        });
    }
    group.bench_function("power_n1000_sampled_100_sources", |b| {
        let cfg = Config {
            graph_size: 1000,
            cluster_size: 10,
            ..Config::default()
        };
        let mut rng = SpRng::seed_from_u64(2);
        let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
        let model = QueryModel::from_config(&cfg.query_model);
        let opts = AnalysisOptions {
            max_sources: Some(100),
            ..AnalysisOptions::default()
        };
        b.iter(|| analyze(&inst, &model, &opts, &mut rng));
    });
    group.finish();
}

criterion_group!(benches, bench_query_model, bench_instance, bench_analysis);
criterion_main!(benches);
