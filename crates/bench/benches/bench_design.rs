//! Benchmarks for the design toolkit: EPL prediction and the full
//! Figure 10 procedure at a reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use sp_design::epl::{recommended_ttl, EplPredictor};
use sp_design::procedure::{design, DesignConstraints, DesignGoals, EvalOptions};
use sp_model::config::Config;
use sp_model::load::Load;

fn bench_epl(c: &mut Criterion) {
    let mut group = c.benchmark_group("epl");
    group.sample_size(10);
    group.bench_function("measure_table_3x2_n500", |b| {
        b.iter(|| EplPredictor::measure(&[3.1, 10.0, 20.0], &[50, 200], 500, 10, 1))
    });
    group.bench_function("recommended_ttl", |b| {
        b.iter(|| recommended_ttl(std::hint::black_box(18.0), std::hint::black_box(300)))
    });
    group.finish();
}

fn bench_procedure(c: &mut Criterion) {
    let mut group = c.benchmark_group("procedure");
    group.sample_size(10);
    group.bench_function("design_2000_users", |b| {
        let goals = DesignGoals {
            num_users: 2000,
            desired_reach_peers: 500,
        };
        let constraints = DesignConstraints {
            max_sp_load: Load {
                in_bw: 100_000.0,
                out_bw: 100_000.0,
                proc: 10e6,
            },
            max_connections: 100.0,
            allow_redundancy: false,
        };
        let eval = EvalOptions {
            trials: 1,
            max_sources: 100,
            seed: 1,
            max_ttl: 6,
        };
        b.iter(|| design(&goals, &constraints, &Config::default(), &eval).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_epl, bench_procedure);
criterion_main!(benches);
