//! Figure 4: aggregate bandwidth (in + out) vs cluster size, for the
//! four systems of Section 5.1.

use sp_bench::{banner, fidelity, scaled};
use sp_core::experiments::cluster_sweep;

fn main() {
    banner(
        "Figure 4",
        "aggregate load decreases with cluster size (knee and all)",
    );
    let n = scaled(10_000);
    let data = cluster_sweep::run(
        n,
        &cluster_sweep::full_range_cluster_sizes(n),
        &cluster_sweep::paper_systems(),
        None,
        &fidelity(),
    );
    println!("{}", data.render_fig4());
    println!(
        "Expected shape: both strong (TTL 1) and power-law (outdeg 3.1, TTL 7)\n\
         curves drop steeply, then flatten past a knee (paper: ~200 strong,\n\
         ~1000 power-law); redundancy tracks the plain curves closely."
    );
}
