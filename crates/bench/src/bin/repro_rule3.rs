//! Rule #3 numerics: raise everyone's outdegree and every super-peer
//! wins; raise only yours and you pay.

use sp_bench::{banner, fidelity, scaled};
use sp_core::experiments::rules;

fn main() {
    banner("Rule #3", "maximize outdegree (together)");
    let data = rules::rule3(scaled(10_000), 100, (3.1, 10.0), &fidelity());
    println!("{}", data.render_summary());
    println!("{}", data.render_unilateral());
    println!(
        "Paper anchors: aggregate bandwidth improves >31%; EPL 5.4 -> 3;\n\
         a lone super-peer raising outdegree 4 -> 9 takes +303% load."
    );
}
