//! Figure A-13: aggregate bandwidth vs cluster size at the low query
//! rate (queries : joins ≈ 1).

use sp_bench::{banner, fidelity, scaled};
use sp_core::experiments::cluster_sweep;

fn main() {
    banner(
        "Figure A-13",
        "join-heavy workloads flatten the cluster-size savings",
    );
    let n = scaled(10_000);
    let data = cluster_sweep::run(
        n,
        &cluster_sweep::full_range_cluster_sizes(n),
        &cluster_sweep::paper_systems(),
        Some(cluster_sweep::LOW_QUERY_RATE),
        &fidelity(),
    );
    println!("{}", data.render_fig4());
    println!(
        "Expected shape: aggregate load still falls with cluster size, but\n\
         much less steeply than Figure 4, and redundancy now *costs*\n\
         noticeably (joins double, and they dominate)."
    );
}
