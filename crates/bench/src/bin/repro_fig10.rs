//! Figure 10: the global design procedure, run end to end on the
//! paper's Section 5.2 scenario.

use sp_bench::{banner, fidelity, scaled};
use sp_core::design::procedure::{design, EvalOptions};
use sp_core::experiments::redesign::paper_constraints;
use sp_core::{Config, DesignGoals};

fn main() {
    banner("Figure 10", "the global design procedure");
    let fid = fidelity();
    let users = scaled(20_000);
    let goals = DesignGoals {
        num_users: users,
        desired_reach_peers: (users * 3) / 20, // the paper's 3000/20000
    };
    let constraints = paper_constraints();
    println!(
        "goals: {} users, reach {} peers; constraints: 100 Kbps each way, \
         10 MHz, 100 connections, no redundancy\n",
        goals.num_users, goals.desired_reach_peers
    );
    match design(
        &goals,
        &constraints,
        &Config::default(),
        &EvalOptions {
            trials: fid.trials,
            max_sources: fid.max_sources.unwrap_or(300),
            seed: fid.seed,
            max_ttl: 8,
        },
    ) {
        Ok(out) => {
            for step in &out.steps {
                println!("  - {}", step.description);
            }
            println!(
                "\nresult: cluster {}, outdegree {:.0}, TTL {}, k = {} \
                 (reach {:.0} peers)\n  super-peer load: in {:.3e} bps, out {:.3e} bps, \
                 proc {:.3e} Hz",
                out.config.cluster_size,
                out.config.avg_outdegree,
                out.config.ttl,
                out.config.redundancy_k,
                out.achieved_reach_peers,
                out.evaluation.sp_in_bw.mean,
                out.evaluation.sp_out_bw.mean,
                out.evaluation.sp_proc.mean,
            );
            println!(
                "\nPaper's outcome on this scenario: TTL 2, cluster size 10, \
                 ~18 neighbors — small TTL and modest clusters."
            );
        }
        Err(e) => println!("procedure failed: {e}"),
    }
}
