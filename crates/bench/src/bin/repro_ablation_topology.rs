//! Ablation (extension): overlay family at equal mean degree.

use sp_bench::{banner, fidelity, scaled};
use sp_core::experiments::ablations;

fn main() {
    banner(
        "Ablation: overlay family",
        "degree spread, not mean degree, concentrates load",
    );
    let data = ablations::overlay_family_comparison(scaled(10_000), 10, 6.0, 5, &fidelity());
    println!("{}", data.render());
    println!(
        "Expected shape: aggregate load and results are similar across\n\
         families, but the power law's load spread (max/mean by outdegree)\n\
         is far wider — the Figure 7/12 concentration is a *spread* effect."
    );
}
