//! Ablation (extension): redundancy factors beyond the paper's k = 2.

use sp_bench::{banner, fidelity, scaled};
use sp_core::experiments::ablations;

fn main() {
    banner(
        "Ablation: k-redundancy",
        "why the paper stops at k = 2 (connections grow as k·d, joins as k)",
    );
    let data = ablations::redundancy_k_sweep(scaled(10_000), 10, &[1, 2, 3, 4], &fidelity());
    println!("{}", data.render());
    println!(
        "Expected shape: individual super-peer load keeps falling ~1/k, but\n\
         connections per partner and aggregate processing grow steadily —\n\
         k = 2 captures most of the benefit at a fraction of the cost."
    );
}
