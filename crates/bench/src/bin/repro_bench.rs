//! Performance trajectory for the analysis engine.
//!
//! Times one full `analyze` pass — power-law overlay, 10 000 clusters
//! (100 000 users at cluster size 10), TTL 7, full source loop — under
//! the Reference engine (the original implementation) and the Fast
//! engine (reusable flood scratch, O(reach) charging, source-parallel
//! shards), verifies they agree, counts heap allocations in the flood
//! path, and emits `repro_out/BENCH_analyze.json` so future changes
//! have a baseline to compare against.
//!
//! `REPRO_QUICK=1` shrinks to 1 000 clusters; `SP_THREADS` caps the
//! Fast engine's worker budget; `REPRO_OUT` overrides the output
//! directory.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use sp_bench::{banner, quick_mode, threads};
use sp_graph::FloodScratch;
use sp_model::analysis::{analyze, AnalysisOptions, AnalysisResult, Engine};
use sp_model::config::Config;
use sp_model::instance::NetworkInstance;
use sp_model::query_model::QueryModel;
use sp_stats::SpRng;

/// Counts every heap allocation so the zero-allocation claim for the
/// flood path is measured, not asserted.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

/// Peak resident set size (VmHWM) in kB from /proc, if available.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn timed(result_slot: &mut Option<AnalysisResult>, f: impl FnOnce() -> AnalysisResult) -> f64 {
    let t = Instant::now();
    *result_slot = Some(f());
    t.elapsed().as_secs_f64()
}

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

fn main() {
    banner(
        "Engine benchmark",
        "analysis wall time, allocations, and peak RSS",
    );
    let cfg = Config {
        graph_size: if quick_mode() { 10_000 } else { 100_000 },
        cluster_size: 10,
        ttl: 7,
        ..Config::default()
    };
    let n_clusters = cfg.num_clusters();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());

    let mut rng = SpRng::seed_from_u64(42);
    let t = Instant::now();
    let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
    let gen_s = t.elapsed().as_secs_f64();
    let model = QueryModel::from_config(&cfg.query_model);
    println!("generated {n_clusters} clusters in {gen_s:.2} s\n");

    // Flood-path allocation count: after one warm flood sizes the
    // scratch, further sources must allocate nothing.
    let mut scratch = FloodScratch::new();
    inst.topology.flood_into(&mut scratch, 0, cfg.ttl);
    let sources_measured = (n_clusters - 1).min(1000) as u64;
    let before = allocs();
    for src in 1..=sources_measured {
        inst.topology.flood_into(&mut scratch, src as u32, cfg.ttl);
    }
    let flood_allocs = allocs() - before;
    println!(
        "flood path: {flood_allocs} heap allocations across {sources_measured} sources \
         (scratch reuse)"
    );

    // Wall times. One run each: at this scale a run is seconds long and
    // the engines are deterministic, so run-to-run noise is small
    // relative to the gap being measured.
    let mut reference = None;
    let reference_s = timed(&mut reference, || {
        analyze(
            &inst,
            &model,
            &AnalysisOptions {
                engine: Engine::Reference,
                ..AnalysisOptions::default()
            },
            &mut rng,
        )
    });
    println!("reference engine:      {reference_s:>8.3} s");

    let mut fast_one = None;
    let before = allocs();
    let fast_1_thread_s = timed(&mut fast_one, || {
        analyze(
            &inst,
            &model,
            &AnalysisOptions {
                threads: 1,
                ..AnalysisOptions::default()
            },
            &mut rng,
        )
    });
    let fast_total_allocs = allocs() - before;
    println!("fast engine, 1 thread: {fast_1_thread_s:>8.3} s  ({fast_total_allocs} allocations for all {n_clusters} sources)");

    let mut fast_all = None;
    let fast_s = timed(&mut fast_all, || {
        analyze(
            &inst,
            &model,
            &AnalysisOptions {
                threads: threads(),
                ..AnalysisOptions::default()
            },
            &mut rng,
        )
    });
    println!("fast engine, {cores} core(s): {fast_s:>8.3} s");

    // The engines must agree before a speedup means anything.
    let (r, f1, fa) = (
        reference.unwrap().metrics,
        fast_one.unwrap().metrics,
        fast_all.unwrap().metrics,
    );
    for (name, x) in [("fast(1)", &f1), ("fast(all)", &fa)] {
        assert!(
            rel(r.aggregate.in_bw, x.aggregate.in_bw) <= 1e-12
                && rel(r.aggregate.proc, x.aggregate.proc) <= 1e-12
                && rel(r.results_per_query, x.results_per_query) <= 1e-12,
            "{name} disagrees with reference"
        );
    }

    let speedup = reference_s / fast_s;
    let speedup_1t = reference_s / fast_1_thread_s;
    println!(
        "\nspeedup vs reference: {speedup:.2}x on {cores} core(s), {speedup_1t:.2}x single-threaded"
    );

    let peak_kb = peak_rss_kb();
    let json = format!(
        "{{\n  \"bench\": \"analyze_power_law_ttl7_full_sources\",\n  \"mode\": \"{mode}\",\n  \"graph_size\": {gs},\n  \"clusters\": {nc},\n  \"ttl\": {ttl},\n  \"cores\": {cores},\n  \"generate_wall_s\": {gen:.4},\n  \"reference_wall_s\": {refs:.4},\n  \"fast_1_thread_wall_s\": {f1:.4},\n  \"fast_wall_s\": {fs:.4},\n  \"speedup_vs_reference\": {sp:.3},\n  \"speedup_vs_reference_1_thread\": {sp1:.3},\n  \"flood_allocs_per_source\": {fa},\n  \"flood_sources_measured\": {fsm},\n  \"fast_total_allocs\": {fta},\n  \"peak_rss_kb\": {rss}\n}}\n",
        mode = if quick_mode() { "quick" } else { "paper" },
        gs = cfg.graph_size,
        nc = n_clusters,
        ttl = cfg.ttl,
        cores = cores,
        gen = gen_s,
        refs = reference_s,
        f1 = fast_1_thread_s,
        fs = fast_s,
        sp = speedup,
        sp1 = speedup_1t,
        fa = flood_allocs as f64 / sources_measured as f64,
        fsm = sources_measured,
        fta = fast_total_allocs,
        rss = peak_kb.map_or("null".to_string(), |k| k.to_string()),
    );
    let out_dir = std::env::var("REPRO_OUT").unwrap_or_else(|_| "repro_out".to_string());
    std::fs::create_dir_all(&out_dir).unwrap();
    let path = format!("{out_dir}/BENCH_analyze.json");
    std::fs::write(&path, &json).unwrap();
    println!("\nwrote {path}:\n{json}");
}
