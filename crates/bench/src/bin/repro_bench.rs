//! Performance trajectory for the analysis and simulation engines.
//!
//! Three sections, each with a Reference implementation (the original)
//! and a Fast implementation, verified to agree before any speedup is
//! reported:
//!
//! 1. **Simulator** — a standard churn workload (default population,
//!    cluster size 10, flooding) run under
//!    `sp_sim::ReferenceSimulation` (binary-heap queue, per-event
//!    allocations) and `sp_sim::Simulation` (indexed queue with
//!    O(log n) cancellation, pooled scratch, cached connection counts).
//!    The engines must produce bitwise-identical metrics. Emits
//!    `repro_out/BENCH_sim.json` with events/sec, wall time,
//!    allocations, and peak RSS.
//! 2. **Fault path** — the same churn workload with k = 2 redundancy
//!    under the canonical crash-storm fault plan, so injection draws,
//!    the retry/failover state machine, and orphan rejoins are on the
//!    hot path. Emits `repro_out/BENCH_faults.json`.
//! 3. **Repair** — the crash-storm workload re-run under every
//!    `--repair` policy with repeated trials: the self-healing claim
//!    (promotion + partner recruitment restores ≥ 95 % of the overlay's
//!    reachable fraction after the storm, the degraded baseline does
//!    not) is asserted and recorded with 95 % CIs. Emits
//!    `repro_out/BENCH_repair.json`.
//! 4. **Analysis** — one full `analyze` pass — power-law overlay,
//!    10 000 clusters (100 000 users at cluster size 10), TTL 7, full
//!    source loop — under the Reference engine and the Fast engine
//!    (reusable flood scratch, O(reach) charging, source-parallel
//!    shards), with flood-path allocation counts and a 1/2/4/8-thread
//!    scaling sweep. Emits `repro_out/BENCH_analyze.json`.
//! 5. **Scale** — the shared-nothing sharded engine (DESIGN.md §15) on
//!    the Table 1 workload at TTL 3: an events/sec-vs-peers curve from
//!    4 k to 1 M peers (quick mode stops at 40 k) plus a 1/2/4/8-shard
//!    sweep whose metrics are asserted bitwise identical before any
//!    ratio is reported. Emits `repro_out/BENCH_scale.json`.
//! 6. **Overload** — the churn workload under a 10× flash crowd, run
//!    twice: once with the capacity-sized overload policy
//!    (bounded queues, drop-lowest-TTL shedding, client budgets,
//!    brownout) and once with the measure-only uncontrolled baseline
//!    (same service rate, unbounded queue). Both runs are executed on
//!    the fast *and* reference engines and asserted bitwise identical
//!    before anything is reported. The controlled run must keep
//!    response-latency p99 under the policy's own drain bound and
//!    account for ≥ 90 % of issued queries as delivered or explicitly
//!    shed/rejected, while the uncontrolled baseline's p99 diverges.
//!    Emits `repro_out/BENCH_overload.json`.
//!
//! Peak RSS (`VmHWM`) is a monotonic process-wide high-water mark, so
//! it is snapshotted *per section*, smallest footprint first: the sim
//! section's snapshot covers startup + simulation only, and the
//! analysis section's snapshots are taken right after each engine runs
//! (the analysis instance dominates the footprint by then). Each
//! `BENCH_*.json` therefore reports numbers attributable to its own
//! section.
//!
//! `REPRO_QUICK=1` shrinks every workload; `SP_THREADS` caps the Fast
//! analysis engine's worker budget; `REPRO_OUT` overrides the output
//! directory; `REPRO_SECTIONS=sim,faults,repair,analyze,scale,overload`
//! selects a subset of sections (e.g. to regenerate one baseline — the scale
//! baseline in particular should be generated standalone with
//! `REPRO_SECTIONS=scale` so the monotonic `VmHWM` snapshot after the
//! million-peer run is not inflated by the analysis instance).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use sp_bench::{banner, quick_mode, threads};
use sp_graph::FloodScratch;
use sp_model::analysis::{analyze, AnalysisOptions, AnalysisResult, Engine};
use sp_model::config::Config;
use sp_model::instance::NetworkInstance;
use sp_model::overload::OverloadPolicy;
use sp_model::query_model::QueryModel;
use sp_model::repair::RepairPolicy;
use sp_model::trials::resolve_thread_budget;
use sp_sim::scenario::{crash_storm_plan, crash_storm_trials, SimTrialOptions};
use sp_sim::{ReferenceSimulation, ScaleOptions, ShardedSimulation, SimOptions, Simulation};
use sp_stats::SpRng;

/// Counts every heap allocation so the zero-allocation claims for the
/// flood path and the simulator hot loop are measured, not asserted.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates verbatim to `System`, which upholds
// the `GlobalAlloc` contract; the only addition is a relaxed atomic
// counter bump, which cannot unwind, allocate, or alias the returned
// memory. Layout/pointer validity obligations pass through unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller's `layout` obligations are forwarded to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: `ptr`/`layout` were produced by the matching `System`
    // call above, so handing them back satisfies its contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: same pass-through as `dealloc`; `new_size` obligations
    // are the caller's and are forwarded untouched.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: caller's `layout` obligations are forwarded to `System`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

/// Peak resident set size (VmHWM) in kB from /proc, if available.
/// Monotonic over the process lifetime — snapshot it per section.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn rss_json(kb: Option<u64>) -> String {
    kb.map_or("null".to_string(), |k| k.to_string())
}

fn timed(result_slot: &mut Option<AnalysisResult>, f: impl FnOnce() -> AnalysisResult) -> f64 {
    let t = Instant::now();
    *result_slot = Some(f());
    t.elapsed().as_secs_f64()
}

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

fn out_dir() -> String {
    std::env::var("REPRO_OUT").unwrap_or_else(|_| "repro_out".to_string())
}

fn write_json(name: &str, json: &str) {
    let dir = out_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = format!("{dir}/{name}");
    std::fs::write(&path, json).unwrap();
    println!("\nwrote {path}:\n{json}");
}

/// The standard churn workload: defaults (heavy-tailed lifespans with a
/// 1080 s mean, flooding, no adaptation), cluster size 10.
fn sim_section() {
    let cfg = Config {
        graph_size: if quick_mode() { 1000 } else { 4000 },
        cluster_size: 10,
        ..Config::default()
    };
    let duration_secs = if quick_mode() { 600.0 } else { 1800.0 };
    let opts = SimOptions {
        duration_secs,
        seed: 42,
        ..Default::default()
    };
    println!(
        "-- simulator: standard churn workload, {} peers, {duration_secs} simulated s --",
        cfg.graph_size
    );

    // Wall-clock noise on a shared machine easily exceeds the gap being
    // measured (the quick workload runs in tens of milliseconds), so
    // each engine runs `reps` times and the best wall is recorded — the
    // same protocol for both engines, so the ratio stays honest. The
    // engines are deterministic, so every repetition must reproduce the
    // first repetition's metrics exactly; anything else is a bug.
    let reps: usize = std::env::var("REPRO_SIM_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(5);

    // Repetitions are interleaved (reference, fast, reference, fast,
    // ...) so a machine-load drift during the section cannot
    // systematically favor one engine over the other.
    let mut reference_s = f64::INFINITY;
    let mut reference_metrics = None;
    let mut delivered = 0;
    let mut fast_s = f64::INFINITY;
    let mut fast_metrics = None;
    let mut fast_allocs = 0;
    let mut fast = None;
    for _ in 0..reps {
        let t = Instant::now();
        let mut reference = ReferenceSimulation::new(&cfg, opts);
        let metrics = reference.run();
        let wall = t.elapsed().as_secs_f64();
        reference_s = reference_s.min(wall);
        delivered = reference.events_delivered();
        match &reference_metrics {
            None => reference_metrics = Some(metrics),
            Some(prev) => assert_eq!(prev, &metrics, "reference engine is not reproducible"),
        }

        let before = allocs();
        let t = Instant::now();
        let mut sim = Simulation::new(&cfg, opts);
        let metrics = sim.run();
        let wall = t.elapsed().as_secs_f64();
        fast_allocs = allocs() - before;
        fast_s = fast_s.min(wall);
        match &fast_metrics {
            None => fast_metrics = Some(metrics),
            Some(prev) => assert_eq!(prev, &metrics, "fast engine is not reproducible"),
        }
        fast = Some(sim);
    }
    let reference_metrics = reference_metrics.expect("reps >= 1");
    let eps_reference = delivered as f64 / reference_s;
    println!(
        "reference engine: {reference_s:>8.3} s best of {reps}  ({delivered} events, {eps_reference:.0} events/s)"
    );
    let fast_metrics = fast_metrics.expect("reps >= 1");
    let fast = fast.expect("reps >= 1");
    let eps_fast = fast.events_delivered() as f64 / fast_s;
    println!(
        "fast engine:      {fast_s:>8.3} s best of {reps}  ({} events, {eps_fast:.0} events/s, {fast_allocs} allocations)",
        fast.events_delivered()
    );

    // The engines must agree — bitwise — before a speedup means anything.
    assert_eq!(
        reference_metrics, fast_metrics,
        "sim engines diverged on the benchmark workload"
    );
    assert_eq!(delivered, fast.events_delivered());

    let speedup = reference_s / fast_s;
    let obs = fast.observability();
    println!(
        "speedup vs reference: {speedup:.2}x  (queue high water {}, {} cancelled, {} stale)",
        obs.queue_high_water, obs.cancelled, obs.stale
    );

    // Snapshot *before* the analysis section allocates its much larger
    // instance, so this number is attributable to the simulator.
    let rss = peak_rss_kb();
    let json = format!(
        "{{\n  \"bench\": \"sim_standard_churn_flood\",\n  \"mode\": \"{mode}\",\n  \"graph_size\": {gs},\n  \"duration_secs\": {dur},\n  \"seed\": {seed},\n  \"events_delivered\": {ev},\n  \"events_cancelled\": {cancelled},\n  \"events_stale\": {stale},\n  \"queue_high_water\": {hw},\n  \"reference_wall_s\": {refs:.4},\n  \"fast_wall_s\": {fs:.4},\n  \"events_per_sec_reference\": {epr:.1},\n  \"events_per_sec_fast\": {epf:.1},\n  \"speedup_vs_reference\": {sp:.3},\n  \"fast_run_allocs\": {fa},\n  \"peak_rss_kb\": {rss}\n}}\n",
        mode = if quick_mode() { "quick" } else { "paper" },
        gs = cfg.graph_size,
        dur = duration_secs,
        seed = opts.seed,
        ev = delivered,
        cancelled = obs.cancelled,
        stale = obs.stale,
        hw = obs.queue_high_water,
        refs = reference_s,
        fs = fast_s,
        epr = eps_reference,
        epf = eps_fast,
        sp = speedup,
        fa = fast_allocs,
        rss = rss_json(rss),
    );
    write_json("BENCH_sim.json", &json);
}

/// Fault-path workload: the canonical crash-storm plan (two waves each
/// crashing a quarter of the live super-peers, inside a long
/// message-loss window) on the churn workload with k = 2 redundancy,
/// so the retry/failover and rejoin machinery is on the hot path.
/// Engine agreement is asserted — bitwise, fault counters included —
/// before the speedup is reported.
fn faults_section() {
    let cfg = Config {
        graph_size: if quick_mode() { 1000 } else { 4000 },
        cluster_size: 10,
        ..Config::default()
    }
    .with_redundancy(true);
    let duration_secs = if quick_mode() { 600.0 } else { 1800.0 };
    let plan = crash_storm_plan(duration_secs);
    let opts = SimOptions {
        duration_secs,
        seed: 42,
        fault_seed: 42,
        ..Default::default()
    };
    println!(
        "-- fault path: crash-storm plan, {} peers (k = 2), {duration_secs} simulated s --",
        cfg.graph_size
    );

    let reps: usize = std::env::var("REPRO_SIM_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(5);

    // Same interleaved best-of-reps protocol as the sim section.
    let mut reference_s = f64::INFINITY;
    let mut reference_metrics = None;
    let mut delivered = 0;
    let mut fast_s = f64::INFINITY;
    let mut fast_metrics = None;
    let mut fast_allocs = 0;
    let mut fast = None;
    for _ in 0..reps {
        let t = Instant::now();
        let mut reference = ReferenceSimulation::with_faults(&cfg, opts, &plan);
        let metrics = reference.run();
        let wall = t.elapsed().as_secs_f64();
        reference_s = reference_s.min(wall);
        delivered = reference.events_delivered();
        match &reference_metrics {
            None => reference_metrics = Some(metrics),
            Some(prev) => assert_eq!(prev, &metrics, "reference engine is not reproducible"),
        }

        let before = allocs();
        let t = Instant::now();
        let mut sim = Simulation::with_faults(&cfg, opts, &plan);
        let metrics = sim.run();
        let wall = t.elapsed().as_secs_f64();
        fast_allocs = allocs() - before;
        fast_s = fast_s.min(wall);
        match &fast_metrics {
            None => fast_metrics = Some(metrics),
            Some(prev) => assert_eq!(prev, &metrics, "fast engine is not reproducible"),
        }
        fast = Some(sim);
    }
    let reference_metrics = reference_metrics.expect("reps >= 1");
    let fast_metrics = fast_metrics.expect("reps >= 1");
    let fast = fast.expect("reps >= 1");
    assert_eq!(
        reference_metrics, fast_metrics,
        "sim engines diverged on the fault-path workload"
    );
    assert_eq!(delivered, fast.events_delivered());
    let f = &fast_metrics.faults;
    assert!(
        f.conserved(),
        "fault accounting leaked queries on the benchmark workload"
    );

    let eps_reference = delivered as f64 / reference_s;
    let eps_fast = fast.events_delivered() as f64 / fast_s;
    let speedup = reference_s / fast_s;
    println!(
        "reference engine: {reference_s:>8.3} s best of {reps}  ({delivered} events, {eps_reference:.0} events/s)"
    );
    println!(
        "fast engine:      {fast_s:>8.3} s best of {reps}  ({} events, {eps_fast:.0} events/s, {fast_allocs} allocations)",
        fast.events_delivered()
    );
    println!(
        "speedup vs reference: {speedup:.2}x  ({} crashed, {} dropped, {} lost of {} issued)",
        f.injected_crash, f.injected_drop, f.queries_lost, f.queries_issued
    );

    let json = format!(
        "{{\n  \"bench\": \"sim_crash_storm_faults\",\n  \"mode\": \"{mode}\",\n  \"graph_size\": {gs},\n  \"duration_secs\": {dur},\n  \"seed\": {seed},\n  \"fault_seed\": {fseed},\n  \"fault_plan_len\": {fpl},\n  \"events_delivered\": {ev},\n  \"reference_wall_s\": {refs:.4},\n  \"fast_wall_s\": {fs:.4},\n  \"events_per_sec_reference\": {epr:.1},\n  \"events_per_sec_fast\": {epf:.1},\n  \"speedup_vs_reference\": {sp:.3},\n  \"fast_run_allocs\": {fa},\n  \"queries_issued\": {qi},\n  \"queries_lost\": {ql},\n  \"recovered_retry\": {rr},\n  \"recovered_failover\": {rf},\n  \"injected_crash\": {ic},\n  \"injected_drop\": {id}\n}}\n",
        mode = if quick_mode() { "quick" } else { "paper" },
        gs = cfg.graph_size,
        dur = duration_secs,
        seed = opts.seed,
        fseed = opts.fault_seed,
        fpl = plan.faults.len(),
        ev = delivered,
        refs = reference_s,
        fs = fast_s,
        epr = eps_reference,
        epf = eps_fast,
        sp = speedup,
        fa = fast_allocs,
        qi = f.queries_issued,
        ql = f.queries_lost,
        rr = f.recovered_retry,
        rf = f.recovered_failover,
        ic = f.injected_crash,
        id = f.injected_drop,
    );
    write_json("BENCH_faults.json", &json);
}

/// Self-healing comparison: the canonical crash storm re-run under
/// every repair policy, repeated trials each, reporting the minimum
/// reachable fraction observed after the first crash wave (mean ± 95%
/// CI over trials). The headline robustness claim — promotion +
/// partner recruitment keeps ≥ 95 % of the overlay reachable through
/// the storm at k = 1 while the no-repair baseline does not — is
/// asserted here before the numbers are written, so a regression fails
/// the benchmark itself, not just the downstream gate.
///
/// Lifespans are set long relative to the run (12× the duration) so
/// injected crashes, not organic churn, are the dominant failure
/// source: organic super-peer deaths fragment the overlay identically
/// under every policy (repair deliberately ignores them), and at the
/// default churn rate that shared noise floor would swamp the variable
/// being measured.
fn repair_section() {
    let duration_secs = if quick_mode() { 600.0 } else { 1800.0 };
    let mut cfg = Config {
        graph_size: if quick_mode() { 1000 } else { 4000 },
        cluster_size: 10,
        ..Config::default()
    };
    cfg.population.lifespan_mean_secs = 12.0 * duration_secs;
    let trials = if quick_mode() { 4 } else { 8 };
    println!(
        "-- repair: crash storm under each policy, {} peers, {trials} trials x {duration_secs} simulated s --",
        cfg.graph_size
    );

    let mut fields = String::new();
    let mut min_reach_k1 = Vec::new();
    for policy in RepairPolicy::ALL {
        let t = Instant::now();
        let s = crash_storm_trials(
            &cfg,
            duration_secs,
            &SimTrialOptions {
                trials,
                seed: 42,
                threads: threads(),
                repair: policy,
                ..Default::default()
            },
        );
        let wall = t.elapsed().as_secs_f64();
        println!(
            "{policy:>16}: min reachable k=1 {:.4} +/- {:.4}, k=2 {:.4} +/- {:.4}  ({wall:.2} s)",
            s.min_reachable_k1.mean,
            s.min_reachable_k1.half_width,
            s.min_reachable_k2.mean,
            s.min_reachable_k2.half_width
        );
        // JSON field slug: `promote+partner` -> `promote_partner`.
        let slug = policy.to_string().replace('+', "_");
        fields.push_str(&format!(
            "  \"min_reachable_{slug}_k1\": {:.6},\n  \"min_reachable_{slug}_k1_ci\": {:.6},\n  \"min_reachable_{slug}_k2\": {:.6},\n  \"min_reachable_{slug}_k2_ci\": {:.6},\n  \"queries_lost_{slug}_k1\": {:.2},\n",
            s.min_reachable_k1.mean,
            s.min_reachable_k1.half_width,
            s.min_reachable_k2.mean,
            s.min_reachable_k2.half_width,
            s.lost_k1.mean,
        ));
        min_reach_k1.push(s.min_reachable_k1.mean);
    }

    // The acceptance bar for the self-healing subsystem.
    let (off, promote_partner) = (min_reach_k1[0], min_reach_k1[2]);
    assert!(
        promote_partner >= 0.95,
        "promote+partner left the k=1 overlay below the 95% reachability bar: {promote_partner:.4}"
    );
    assert!(
        off < 0.95,
        "the no-repair baseline should not clear the bar (did the storm fire?): {off:.4}"
    );
    println!("self-healing margin (k=1): off {off:.4} vs promote+partner {promote_partner:.4}");

    let json = format!(
        "{{\n  \"bench\": \"repair_crash_storm_reachability\",\n  \"mode\": \"{mode}\",\n  \"graph_size\": {gs},\n  \"duration_secs\": {dur},\n  \"trials\": {trials},\n  \"seed\": 42,\n{fields}  \"reachability_gain_k1\": {gain:.6}\n}}\n",
        mode = if quick_mode() { "quick" } else { "paper" },
        gs = cfg.graph_size,
        dur = duration_secs,
        gain = promote_partner - off,
    );
    write_json("BENCH_repair.json", &json);
}

/// Overload-control comparison: the churn workload with a 10× flash
/// crowd over the middle 60 % of the run, executed under the
/// capacity-sized policy and under the measure-only uncontrolled
/// baseline. Each variant runs on both churn engines and the metrics
/// must agree bitwise before anything is reported. The acceptance bars
/// — the controlled run keeps p99 response latency under the policy's
/// own queue-drain bound and accounts for ≥ 90 % of issued queries as
/// delivered or explicitly shed/rejected, while the uncontrolled
/// baseline's p99 diverges — are asserted here, so a regression fails
/// the benchmark itself, not just the downstream gate.
fn overload_section() {
    use sp_model::scenario::{PhaseKind, PhaseSpec, ScenarioPlan};

    let cfg = Config {
        graph_size: if quick_mode() { 1000 } else { 2000 },
        cluster_size: 10,
        ..Config::default()
    };
    let duration_secs = if quick_mode() { 600.0 } else { 1200.0 };
    let crowd_mult = 10.0;
    let mut plan = ScenarioPlan::default();
    plan.phases.push(PhaseSpec {
        rate_mult: 1.0,
        from_secs: 0.2 * duration_secs,
        until_secs: 0.8 * duration_secs,
        kind: PhaseKind::FlashCrowd {
            query_rate_mult: crowd_mult,
            hot_shift: 0,
        },
    });
    let controlled_policy = OverloadPolicy::sized_for(&cfg);
    let uncontrolled_policy = OverloadPolicy::uncontrolled_for(&cfg);
    let opts = SimOptions {
        duration_secs,
        seed: 42,
        ..Default::default()
    };
    println!(
        "-- overload: {}x flash crowd, {} peers, {duration_secs} simulated s, service rate {:.3}/s, queue cap {} --",
        crowd_mult, cfg.graph_size, controlled_policy.service_rate, controlled_policy.queue_capacity
    );

    let run_both = |policy: OverloadPolicy, label: &str| {
        let mut plan = plan.clone();
        plan.overload = policy;
        plan.validate().expect("benchmark plan validates");
        let mut fast = Simulation::with_scenario(&cfg, opts, &plan);
        let fast_metrics = fast.run();
        let reference_metrics = ReferenceSimulation::with_scenario(&cfg, opts, &plan).run();
        assert_eq!(
            fast_metrics, reference_metrics,
            "churn engines diverged on the {label} overload workload"
        );
        assert!(
            fast_metrics.overload.conserved(
                fast_metrics.faults.queries_issued,
                fast_metrics.faults.queries_lost
            ),
            "extended conservation broken on the {label} workload: {:?}",
            fast_metrics.overload
        );
        fast_metrics
    };

    let controlled = run_both(controlled_policy, "controlled");
    let uncontrolled = run_both(uncontrolled_policy, "uncontrolled");

    let issued = controlled.faults.queries_issued;
    let ov = &controlled.overload;
    // "Explicit" outcomes are deliberate policy decisions; dead-cluster
    // sheds and end-of-run residual are the implicit remainder.
    let explicit = ov.delivered + ov.shed_discipline + ov.rejected_queue + ov.rejected_budget;
    let accounted_fraction = explicit as f64 / issued.max(1) as f64;
    let p99_controlled = ov.latency.quantile_secs(0.99);
    let p99_uncontrolled = uncontrolled.overload.latency.quantile_secs(0.99);
    // A bounded queue drains in (capacity + 1) service times; 1.5×
    // covers histogram bucket granularity.
    let p99_bound =
        1.5 * (controlled_policy.queue_capacity + 1) as f64 / controlled_policy.service_rate;
    let divergence = p99_uncontrolled / p99_controlled.max(f64::MIN_POSITIVE);

    println!(
        "controlled:   delivered {} / shed {} / rejected {} of {issued} issued  (explicit {:.4}, p99 {:.1} s, peak depth {}, {} brownouts, {} re-homed)",
        ov.delivered,
        ov.shed_discipline + ov.shed_dead + ov.shed_residual,
        ov.rejected_queue + ov.rejected_budget,
        accounted_fraction,
        p99_controlled,
        ov.peak_depth,
        ov.brownout_entries,
        ov.rehomed,
    );
    println!(
        "uncontrolled: delivered {} of {} issued  (p99 {:.1} s, peak depth {}, residual {})",
        uncontrolled.overload.delivered,
        uncontrolled.faults.queries_issued,
        p99_uncontrolled,
        uncontrolled.overload.peak_depth,
        uncontrolled.overload.shed_residual,
    );
    println!(
        "p99 divergence: uncontrolled {:.1} s vs controlled bound {:.1} s ({divergence:.1}x)",
        p99_uncontrolled, p99_bound
    );

    // The acceptance bars for the overload subsystem.
    assert!(
        p99_controlled <= p99_bound,
        "controlled p99 {p99_controlled:.2} s exceeds the queue-drain bound {p99_bound:.2} s"
    );
    assert!(
        accounted_fraction >= 0.9,
        "only {accounted_fraction:.4} of issued queries were delivered or explicitly shed"
    );
    assert!(
        p99_uncontrolled >= 2.0 * p99_controlled.max(1.0),
        "the uncontrolled baseline no longer diverges ({p99_uncontrolled:.2} s vs {p99_controlled:.2} s) — did the crowd fire?"
    );

    let json = format!(
        "{{\n  \"bench\": \"overload_flash_crowd_control\",\n  \"mode\": \"{mode}\",\n  \"graph_size\": {gs},\n  \"duration_secs\": {dur},\n  \"seed\": {seed},\n  \"crowd_mult\": {crowd_mult},\n  \"service_rate\": {sr:.6},\n  \"queue_capacity\": {qc},\n  \"queries_issued\": {issued},\n  \"controlled_delivered\": {cd},\n  \"controlled_shed\": {cs},\n  \"controlled_rejected\": {cr},\n  \"controlled_rehomed\": {crh},\n  \"controlled_brownout_entries\": {cbe},\n  \"controlled_peak_depth\": {cpd},\n  \"controlled_p50_s\": {cp50:.4},\n  \"controlled_p99_s\": {cp99:.4},\n  \"controlled_p99_bound_s\": {bound:.4},\n  \"accounted_fraction\": {af:.6},\n  \"uncontrolled_delivered\": {ud},\n  \"uncontrolled_residual\": {ur},\n  \"uncontrolled_peak_depth\": {upd},\n  \"uncontrolled_p99_s\": {up99:.4},\n  \"p99_divergence_ratio\": {dv:.3}\n}}\n",
        mode = if quick_mode() { "quick" } else { "paper" },
        gs = cfg.graph_size,
        dur = duration_secs,
        seed = opts.seed,
        sr = controlled_policy.service_rate,
        qc = controlled_policy.queue_capacity,
        cd = ov.delivered,
        cs = ov.shed_discipline + ov.shed_dead + ov.shed_residual,
        cr = ov.rejected_queue + ov.rejected_budget,
        crh = ov.rehomed,
        cbe = ov.brownout_entries,
        cpd = ov.peak_depth,
        cp50 = ov.latency.quantile_secs(0.5),
        cp99 = p99_controlled,
        bound = p99_bound,
        af = accounted_fraction,
        ud = uncontrolled.overload.delivered,
        ur = uncontrolled.overload.shed_residual,
        upd = uncontrolled.overload.peak_depth,
        up99 = p99_uncontrolled,
        dv = divergence,
    );
    write_json("BENCH_overload.json", &json);
}

fn analyze_section() {
    let cfg = Config {
        graph_size: if quick_mode() { 10_000 } else { 100_000 },
        cluster_size: 10,
        ttl: 7,
        ..Config::default()
    };
    let n_clusters = cfg.num_clusters();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());

    let mut rng = SpRng::seed_from_u64(42);
    let t = Instant::now();
    let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
    let gen_s = t.elapsed().as_secs_f64();
    let model = QueryModel::from_config(&cfg.query_model);
    println!("-- analysis: generated {n_clusters} clusters in {gen_s:.2} s --\n");

    // Flood-path allocation count: after one warm flood sizes the
    // scratch, further sources must allocate nothing.
    let mut scratch = FloodScratch::new();
    inst.topology.flood_into(&mut scratch, 0, cfg.ttl);
    let sources_measured = (n_clusters - 1).min(1000) as u64;
    let before = allocs();
    for src in 1..=sources_measured {
        inst.topology.flood_into(&mut scratch, src as u32, cfg.ttl);
    }
    let flood_allocs = allocs() - before;
    println!(
        "flood path: {flood_allocs} heap allocations across {sources_measured} sources \
         (scratch reuse)"
    );

    // Wall times. One run each: at this scale a run is seconds long and
    // the engines are deterministic, so run-to-run noise is small
    // relative to the gap being measured.
    let mut reference = None;
    let reference_s = timed(&mut reference, || {
        analyze(
            &inst,
            &model,
            &AnalysisOptions {
                engine: Engine::Reference,
                ..AnalysisOptions::default()
            },
            &mut rng,
        )
    });
    // Attributable: the fast engine has not run yet.
    let rss_after_reference = peak_rss_kb();
    println!("reference engine:      {reference_s:>8.3} s");

    // The two walls below feed the downstream multi-vs-single-thread
    // gate, a ~10 % bound — tighter than single-run jitter on a noisy
    // shared machine (a previous baseline recorded 4.77 s vs 4.18 s
    // for two runs of the *identical* inline path on one core). Each
    // budget therefore runs best-of-3, interleaved so load drift
    // cannot systematically favor one side.
    let mut fast_one = None;
    let mut fast_all = None;
    let mut fast_1_thread_s = f64::INFINITY;
    let mut fast_s = f64::INFINITY;
    let mut fast_total_allocs = 0;
    for rep in 0..3 {
        let before = allocs();
        let wall = timed(&mut fast_one, || {
            analyze(
                &inst,
                &model,
                &AnalysisOptions {
                    threads: 1,
                    ..AnalysisOptions::default()
                },
                &mut rng,
            )
        });
        if rep == 0 {
            fast_total_allocs = allocs() - before;
        }
        fast_1_thread_s = fast_1_thread_s.min(wall);
        let wall = timed(&mut fast_all, || {
            analyze(
                &inst,
                &model,
                &AnalysisOptions {
                    threads: threads(),
                    ..AnalysisOptions::default()
                },
                &mut rng,
            )
        });
        fast_s = fast_s.min(wall);
    }
    println!("fast engine, 1 thread: {fast_1_thread_s:>8.3} s best of 3  ({fast_total_allocs} allocations for all {n_clusters} sources)");
    let rss_after_fast = peak_rss_kb();
    println!("fast engine, {cores} core(s): {fast_s:>8.3} s best of 3");

    // The engines must agree before a speedup means anything.
    let (r, f1, fa) = (
        reference.unwrap().metrics,
        fast_one.unwrap().metrics,
        fast_all.unwrap().metrics,
    );
    for (name, x) in [("fast(1)", &f1), ("fast(all)", &fa)] {
        assert!(
            rel(r.aggregate.in_bw, x.aggregate.in_bw) <= 1e-12
                && rel(r.aggregate.proc, x.aggregate.proc) <= 1e-12
                && rel(r.results_per_query, x.results_per_query) <= 1e-12,
            "{name} disagrees with reference"
        );
    }

    let speedup = reference_s / fast_s;
    let speedup_1t = reference_s / fast_1_thread_s;
    println!(
        "\nspeedup vs reference: {speedup:.2}x on {cores} core(s), {speedup_1t:.2}x single-threaded"
    );

    // Explicit 1/2/4/8-thread scaling sweep (ROADMAP item 2: the
    // multi-thread path once landed *slower* than single-thread, and
    // that regression must never land silently again). Every budget
    // must reproduce the reference metrics; the downstream gate
    // additionally asserts the default budget is not slower than the
    // single-thread path.
    let mut sweep_walls = vec![(1usize, fast_1_thread_s)];
    for t in [2usize, 4, 8] {
        let mut slot = None;
        let wall = timed(&mut slot, || {
            analyze(
                &inst,
                &model,
                &AnalysisOptions {
                    threads: t,
                    ..AnalysisOptions::default()
                },
                &mut rng,
            )
        });
        let m = slot.expect("timed fills the slot").metrics;
        assert!(
            rel(r.aggregate.in_bw, m.aggregate.in_bw) <= 1e-12
                && rel(r.results_per_query, m.results_per_query) <= 1e-12,
            "fast({t} threads) disagrees with reference"
        );
        println!("fast engine, {t} threads: {wall:>8.3} s");
        sweep_walls.push((t, wall));
    }
    let best = sweep_walls
        .iter()
        .map(|&(_, w)| w)
        .fold(f64::INFINITY, f64::min);
    let thread_speedup_best = fast_1_thread_s / best;
    let sweep_fields: String = sweep_walls
        .iter()
        .map(|(t, w)| format!("  \"wall_s_threads_{t}\": {w:.4},\n"))
        .collect();
    println!("thread sweep best: {thread_speedup_best:.2}x vs single-threaded");

    let json = format!(
        "{{\n  \"bench\": \"analyze_power_law_ttl7_full_sources\",\n  \"mode\": \"{mode}\",\n  \"graph_size\": {gs},\n  \"clusters\": {nc},\n  \"ttl\": {ttl},\n  \"cores\": {cores},\n  \"generate_wall_s\": {gen:.4},\n  \"reference_wall_s\": {refs:.4},\n  \"fast_1_thread_wall_s\": {f1:.4},\n  \"fast_wall_s\": {fs:.4},\n{sweep}  \"thread_speedup_best\": {tsb:.3},\n  \"speedup_vs_reference\": {sp:.3},\n  \"speedup_vs_reference_1_thread\": {sp1:.3},\n  \"flood_allocs_per_source\": {fa},\n  \"flood_sources_measured\": {fsm},\n  \"fast_total_allocs\": {fta},\n  \"peak_rss_kb_reference\": {rss_ref},\n  \"peak_rss_kb\": {rss}\n}}\n",
        mode = if quick_mode() { "quick" } else { "paper" },
        gs = cfg.graph_size,
        nc = n_clusters,
        ttl = cfg.ttl,
        cores = cores,
        gen = gen_s,
        refs = reference_s,
        f1 = fast_1_thread_s,
        fs = fast_s,
        sweep = sweep_fields,
        tsb = thread_speedup_best,
        sp = speedup,
        sp1 = speedup_1t,
        fa = flood_allocs as f64 / sources_measured as f64,
        fsm = sources_measured,
        fta = fast_total_allocs,
        rss_ref = rss_json(rss_after_reference),
        rss = rss_json(rss_after_fast),
    );
    write_json("BENCH_analyze.json", &json);
}

/// JSON field suffix for a peer count (`4000` → `4k`, `1000000` → `1m`).
fn size_label(peers: usize) -> String {
    if peers.is_multiple_of(1_000_000) {
        format!("{}m", peers / 1_000_000)
    } else {
        format!("{}k", peers / 1_000)
    }
}

/// Scale section: the shared-nothing sharded engine (DESIGN.md §15) on
/// the Table 1 workload at TTL 3, measured two ways:
///
/// * **Throughput curve** — events/sec at each decade from 4 k peers
///   up to 1 M (quick mode stops at 40 k), run on one shard per core
///   (capped at 8). The `VmHWM` snapshot after the million-peer run
///   records the bounded-memory claim.
/// * **Shard sweep** — the 400 k-peer workload (40 k in quick mode)
///   re-executed at 1/2/4/8 shards. The metrics must be bitwise
///   identical across the sweep — asserted here, so the benchmark
///   itself fails on a determinism break, not just the test suite —
///   and `speedup_8shard` records the 8-shard / 1-shard throughput
///   ratio. The downstream gate requires ≥ 3× on a ≥ 8-core machine
///   and degrades to a coordination-overhead bound (≥ 0.6×) on
///   smaller ones, where extra shards cannot beat the core count; the
///   recorded `cores` field is what the gate dispatches on.
fn scale_section() {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let sizes: &[usize] = if quick_mode() {
        &[4_000, 40_000]
    } else {
        &[4_000, 40_000, 400_000, 1_000_000]
    };
    let duration_secs = if quick_mode() { 120.0 } else { 300.0 };
    let curve_shards = resolve_thread_budget(threads()).min(8);
    println!(
        "-- scale: sharded engine, up to {} peers, {duration_secs} simulated s, {curve_shards} shard(s) on {cores} core(s) --",
        sizes.last().expect("sizes is non-empty")
    );

    let mut curve_fields = String::new();
    let mut rss_after_top = None;
    for &peers in sizes {
        let cfg = Config::scale_preset(peers);
        let opts = ScaleOptions {
            duration_secs,
            seed: 42,
            shards: curve_shards,
            ..Default::default()
        };
        let t = Instant::now();
        let mut sim = ShardedSimulation::new(&cfg, opts);
        let m = sim.run();
        let wall = t.elapsed().as_secs_f64();
        let events = m.events_processed();
        let eps = events as f64 / wall;
        println!(
            "{peers:>9} peers: {wall:>8.3} s  ({events} events, {eps:.0} events/s, queue high water {})",
            sim.diag().queue_high_water
        );
        let label = size_label(peers);
        curve_fields.push_str(&format!(
            "  \"wall_s_{label}\": {wall:.4},\n  \"events_{label}\": {events},\n  \"events_per_sec_{label}\": {eps:.1},\n"
        ));
        // Monotonic VmHWM: the last (largest) run dominates, so this
        // snapshot is attributable to it when the section runs
        // standalone (REPRO_SECTIONS=scale).
        rss_after_top = peak_rss_kb();
    }

    let sweep_peers: usize = if quick_mode() { 40_000 } else { 400_000 };
    let cfg = Config::scale_preset(sweep_peers);
    let mut walls = Vec::new();
    let mut first_metrics = None;
    let mut cross_msgs_8 = 0;
    for shards in [1usize, 2, 4, 8] {
        let opts = ScaleOptions {
            duration_secs,
            seed: 42,
            shards,
            ..Default::default()
        };
        let t = Instant::now();
        let mut sim = ShardedSimulation::new(&cfg, opts);
        let m = sim.run();
        let wall = t.elapsed().as_secs_f64();
        let eps = m.events_processed() as f64 / wall;
        println!(
            "sweep {sweep_peers} peers, {shards} shard(s): {wall:>8.3} s  ({eps:.0} events/s, {} cross-shard msgs)",
            sim.diag().cross_shard_msgs
        );
        cross_msgs_8 = sim.diag().cross_shard_msgs;
        // Bitwise shard-count invariance is the engine's headline
        // contract; a sweep that broke it must not publish ratios.
        match &first_metrics {
            None => first_metrics = Some(m),
            Some(prev) => assert_eq!(prev, &m, "sharded engine diverged at {shards} shards"),
        }
        walls.push(wall);
    }
    let speedup_8shard = walls[0] / walls[3];
    println!("shard sweep: 8-shard/1-shard throughput ratio {speedup_8shard:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"scale_sharded_engine_throughput\",\n  \"mode\": \"{mode}\",\n  \"cores\": {cores},\n  \"curve_shards\": {curve_shards},\n  \"duration_secs\": {dur},\n  \"seed\": 42,\n{curve}  \"sweep_peers\": {sw},\n  \"sweep_wall_s_shards_1\": {w1:.4},\n  \"sweep_wall_s_shards_2\": {w2:.4},\n  \"sweep_wall_s_shards_4\": {w4:.4},\n  \"sweep_wall_s_shards_8\": {w8:.4},\n  \"sweep_cross_shard_msgs_8\": {cm},\n  \"speedup_8shard\": {s8:.3},\n  \"peak_rss_kb\": {rss}\n}}\n",
        mode = if quick_mode() { "quick" } else { "paper" },
        dur = duration_secs,
        curve = curve_fields,
        sw = sweep_peers,
        w1 = walls[0],
        w2 = walls[1],
        w4 = walls[2],
        w8 = walls[3],
        cm = cross_msgs_8,
        s8 = speedup_8shard,
        rss = rss_json(rss_after_top),
    );
    write_json("BENCH_scale.json", &json);
}

/// Whether a section is selected by `REPRO_SECTIONS` (a comma list of
/// `sim`, `faults`, `repair`, `overload`, `analyze`, `scale`;
/// unset = all).
fn section_enabled(name: &str) -> bool {
    match std::env::var("REPRO_SECTIONS") {
        Ok(list) => list.split(',').any(|s| s.trim() == name),
        Err(_) => true,
    }
}

fn main() {
    banner(
        "Engine benchmarks",
        "simulator + analysis wall time, allocations, and peak RSS",
    );
    // Smallest footprint first: VmHWM is monotonic, so the simulator's
    // RSS snapshot must be taken before the analysis instance exists.
    if section_enabled("sim") {
        sim_section();
        println!();
    }
    if section_enabled("faults") {
        faults_section();
        println!();
    }
    if section_enabled("repair") {
        repair_section();
        println!();
    }
    if section_enabled("overload") {
        overload_section();
        println!();
    }
    if section_enabled("analyze") {
        analyze_section();
        println!();
    }
    // Last: the million-peer run has the largest footprint, so an
    // earlier section cannot be blamed on it — but regenerate the
    // checked-in scale baseline standalone (REPRO_SECTIONS=scale) so
    // the converse holds for its own RSS snapshot too.
    if section_enabled("scale") {
        scale_section();
    }
}
