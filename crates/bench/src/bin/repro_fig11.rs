//! Figure 11: aggregate load of today's Gnutella vs the redesigned
//! topology (with and without redundancy).

use sp_bench::{banner, fidelity, scaled};
use sp_core::experiments::redesign;

fn main() {
    banner(
        "Figure 11",
        "the redesign cuts every aggregate load by >=79%",
    );
    let users = scaled(20_000);
    let data = redesign::run(
        users,
        (users * 3) / 20,
        &redesign::paper_constraints(),
        &fidelity(),
    )
    .expect("paper scenario is feasible");
    println!("{}", data.render_design_log());
    println!("{}", data.render_fig11());
    println!(
        "Expected shape: the new topology improves every load column by an\n\
         order of magnitude-ish while EPL drops to ~2; redundancy barely\n\
         moves the aggregates. (Our connected PLOD overlay reaches further\n\
         at TTL 7 than the fragmented 2001 network, so 'Today' is even\n\
         costlier here than in the paper — see EXPERIMENTS.md.)"
    );
}
