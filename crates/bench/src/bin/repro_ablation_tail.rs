//! Ablation (extension): file-count tail sensitivity of rule #1.

use sp_bench::{banner, fidelity, scaled};
use sp_core::experiments::ablations;

fn main() {
    banner(
        "Ablation: population tail",
        "rule #1 holds under log-normal and bounded-Pareto file counts",
    );
    let n = scaled(10_000);
    let sizes: Vec<usize> = [1usize, 10, 50, 200, 1000]
        .into_iter()
        .filter(|&c| c <= n)
        .collect();
    let data = ablations::population_tail_sensitivity(n, &sizes, &fidelity());
    println!("{}", data.render());
    println!(
        "Expected shape: both tails show aggregate load falling and\n\
         individual super-peer load rising with cluster size — the rules of\n\
         thumb do not hinge on the synthesized tail family (DESIGN.md §4)."
    );
}
