//! Extension: routing protocol is orthogonal to super-peer design
//! (Section 2). Bounded-fanout forwarding vs Gnutella flooding on the
//! same super-peer network.

use sp_bench::{banner, fidelity, scaled, scaled_duration};
use sp_core::model::config::Config;
use sp_core::sim::scenario::routing;

fn main() {
    banner(
        "Routing ablation",
        "bounded fanout vs flooding on the same super-peer overlay",
    );
    let cfg = Config {
        graph_size: scaled(2_000),
        cluster_size: 10,
        avg_outdegree: 8.0,
        ttl: 5,
        ..Config::default()
    };
    println!("fanout   SP bw (bps)      results/query");
    for fanout in [2usize, 4, 6] {
        let c = routing(&cfg, fanout, scaled_duration(3600.0), fidelity().seed);
        println!(
            "{fanout:>6}   {:>12.3e}   {:>8.1}   (flood: {:.3e} bps, {:.1} results)",
            c.sp_bw_subset, c.results_subset, c.sp_bw_flood, c.results_flood
        );
    }
    println!(
        "\nExpected shape: lower fanout trades results for load along a smooth\n\
         frontier; the super-peer structure (clients shielded, partners\n\
         loaded) is unchanged — routing and super-peer design are orthogonal."
    );
}
