//! Section 5.3: local decisions reorganize a badly configured network.

use sp_bench::{banner, fidelity, scaled, scaled_duration};
use sp_core::experiments::dynamics;
use sp_core::Load;

fn main() {
    banner("Local rules", "adaptive reorganization (Section 5.3)");
    // Start with oversized clusters and a tight per-partner budget.
    let report = dynamics::adaptive_experiment(
        scaled(2_000),
        50,
        Load {
            in_bw: 1e5,
            out_bw: 1e5,
            proc: 1e7,
        },
        scaled_duration(7200.0),
        fidelity().seed,
    );
    println!("{}", dynamics::render_adaptive(&report));
    println!(
        "Expected shape: cluster count grows (splits/promotions) until\n\
         partner load fits the limit; TTLs shrink toward the useful radius."
    );
}
