//! CI perf-regression gate.
//!
//! Compares freshly generated `BENCH_*.json` files against the
//! checked-in baselines and fails (exit 1) when a watched metric
//! regresses by more than the tolerance:
//!
//! ```text
//! check_bench [baseline_dir] [fresh_dir]     # defaults: repro_out repro_fresh
//! ```
//!
//! The tolerance is relative (default 0.25, i.e. 25 %) and can be set
//! via `CHECK_BENCH_TOL`. It is deliberately loose: CI runners are
//! noisy shared machines, and the gate is meant to catch structural
//! regressions (a lost optimization, an accidental O(n²)), not 5 %
//! jitter.
//!
//! Baselines are recorded in `paper` mode while CI smoke runs use
//! `REPRO_QUICK=1`, so the two sides may disagree on workload size.
//! When modes differ, only mode-independent *ratio* metrics (e.g.
//! `speedup_vs_reference`) are compared; absolute wall times and event
//! counts are checked only between runs of the same mode.

use std::collections::HashMap;
use std::process::ExitCode;

/// One parsed flat-JSON benchmark report.
#[derive(Debug, Default)]
struct Report {
    strings: HashMap<String, String>,
    numbers: HashMap<String, f64>,
}

/// Parses the flat one-level JSON objects `repro_bench` emits.
///
/// Only the subset used by the reports is supported: one `"key":
/// value` pair per line, values either quoted strings or numbers.
fn parse_flat_json(text: &str) -> Report {
    let mut report = Report::default();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((key, value)) = rest.split_once("\":") else {
            continue;
        };
        let value = value.trim();
        if let Some(s) = value.strip_prefix('"') {
            report
                .strings
                .insert(key.to_string(), s.trim_end_matches('"').to_string());
        } else if let Ok(n) = value.parse::<f64>() {
            report.numbers.insert(key.to_string(), n);
        }
    }
    report
}

/// Direction of a watched metric.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Direction {
    /// Larger is better (throughput, speedup).
    HigherBetter,
    /// Smaller is better (wall time, allocations).
    LowerBetter,
}

/// A watched metric in one benchmark report.
struct Rule {
    field: &'static str,
    direction: Direction,
    /// Comparable across workload sizes (ratios, per-source counts).
    /// Mode-dependent metrics are skipped when baseline and fresh runs
    /// used different modes.
    mode_independent: bool,
    /// Absolute floor the fresh value must clear regardless of the
    /// baseline (correctness bars like "≥ 95 % reachable", not perf).
    floor: Option<f64>,
}

const SIM_RULES: &[Rule] = &[
    Rule {
        field: "speedup_vs_reference",
        direction: Direction::HigherBetter,
        mode_independent: true,
        floor: None,
    },
    Rule {
        field: "events_per_sec_fast",
        direction: Direction::HigherBetter,
        mode_independent: false,
        floor: None,
    },
    Rule {
        field: "fast_wall_s",
        direction: Direction::LowerBetter,
        mode_independent: false,
        floor: None,
    },
];

const ANALYZE_RULES: &[Rule] = &[
    Rule {
        field: "speedup_vs_reference_1_thread",
        direction: Direction::HigherBetter,
        mode_independent: true,
        floor: None,
    },
    Rule {
        field: "thread_speedup_best",
        direction: Direction::HigherBetter,
        mode_independent: true,
        floor: None,
    },
    Rule {
        field: "flood_allocs_per_source",
        direction: Direction::LowerBetter,
        mode_independent: true,
        floor: None,
    },
    Rule {
        field: "fast_wall_s",
        direction: Direction::LowerBetter,
        mode_independent: false,
        floor: None,
    },
];

/// The self-healing report (`BENCH_repair.json`): behavioral bars, not
/// perf. `min_reachable_promote_partner_k1` carries the headline
/// acceptance floor (the repaired overlay keeps ≥ 95 % of peers
/// reachable through the storm); `reachability_gain_k1` guards the
/// separation from the no-repair baseline, so the gate also fails if
/// the degraded run quietly stops degrading (i.e. the storm no longer
/// stresses the overlay).
const REPAIR_RULES: &[Rule] = &[
    Rule {
        field: "min_reachable_promote_partner_k1",
        direction: Direction::HigherBetter,
        mode_independent: true,
        floor: Some(0.95),
    },
    Rule {
        field: "min_reachable_promote_k1",
        direction: Direction::HigherBetter,
        mode_independent: true,
        floor: None,
    },
    Rule {
        field: "reachability_gain_k1",
        direction: Direction::HigherBetter,
        mode_independent: true,
        floor: Some(0.1),
    },
];

/// The sharded scale engine (`BENCH_scale.json`): throughput curve and
/// shard sweep. `speedup_8shard` additionally carries a machine-aware
/// absolute floor applied in [`check_report`], because the right bound
/// depends on how many cores the *fresh* run had.
const SCALE_RULES: &[Rule] = &[
    Rule {
        field: "speedup_8shard",
        direction: Direction::HigherBetter,
        mode_independent: true,
        floor: None,
    },
    Rule {
        field: "events_per_sec_40k",
        direction: Direction::HigherBetter,
        mode_independent: false,
        floor: None,
    },
    Rule {
        field: "events_per_sec_1m",
        direction: Direction::HigherBetter,
        mode_independent: false,
        floor: None,
    },
];

/// The overload-control report (`BENCH_overload.json`): behavioral
/// bars like the repair rules. `accounted_fraction` carries the
/// headline floor (≥ 90 % of issued queries end as delivered or
/// explicitly shed/rejected under the 10× flash crowd), and
/// `p99_divergence_ratio` guards the separation from the uncontrolled
/// baseline — the gate also fails if the unbounded queue quietly stops
/// diverging (i.e. the crowd no longer saturates the super-peers).
/// The absolute p99 bound is a within-report invariant in
/// [`check_invariants`], because the right bound comes from the fresh
/// run's own policy (`controlled_p99_bound_s`).
const OVERLOAD_RULES: &[Rule] = &[
    Rule {
        field: "accounted_fraction",
        direction: Direction::HigherBetter,
        mode_independent: true,
        floor: Some(0.9),
    },
    Rule {
        field: "p99_divergence_ratio",
        direction: Direction::HigherBetter,
        mode_independent: true,
        floor: Some(2.0),
    },
    Rule {
        field: "controlled_p99_s",
        direction: Direction::LowerBetter,
        mode_independent: false,
        floor: None,
    },
];

/// Slack for the within-report multi-vs-single-thread analyze check.
/// Deliberately tighter than the cross-run tolerance: both walls come
/// from the same process on the same machine, so the only noise is
/// run-to-run jitter — and the regression this guards (ROADMAP item 2:
/// the parallel path landing ~14 % slower than single-thread) sits
/// inside the default 25 % cross-run tolerance.
const THREAD_SLACK: f64 = 0.10;

/// Checks one metric; returns an error line on regression.
fn check_rule(rule: &Rule, baseline: f64, fresh: f64, tol: f64) -> Result<String, String> {
    // For LowerBetter metrics near zero (e.g. zero allocations) a
    // purely relative bound would forbid any increase at all; allow an
    // absolute slack of 1 unit alongside the relative one.
    let mut ok = match rule.direction {
        Direction::HigherBetter => fresh >= baseline * (1.0 - tol),
        Direction::LowerBetter => fresh <= (baseline * (1.0 + tol)).max(baseline + 1.0),
    };
    let mut line = format!(
        "{}: baseline {baseline} -> fresh {fresh} (tol {tol})",
        rule.field
    );
    if let Some(floor) = rule.floor {
        ok &= fresh >= floor;
        line.push_str(&format!(" [floor {floor}]"));
    }
    if ok {
        Ok(line)
    } else {
        Err(line)
    }
}

/// Compares one report pair; returns the number of failures.
fn check_report(name: &str, baseline: &Report, fresh: &Report, tol: f64) -> u32 {
    let b_mode = baseline.strings.get("mode");
    let f_mode = fresh.strings.get("mode");
    let same_mode = b_mode == f_mode;
    if !same_mode {
        println!(
            "{name}: baseline mode {:?} vs fresh mode {:?} — comparing mode-independent metrics only",
            b_mode, f_mode
        );
    }
    // `sim_*` covers both the plain churn workload and the fault-path
    // crash-storm workload (`sim_crash_storm_faults`): both report the
    // same engine speedup/throughput fields.
    let bench_id = baseline.strings.get("bench").cloned().unwrap_or_default();
    let rules = match bench_id.as_str() {
        b if b.starts_with("sim_") => SIM_RULES,
        b if b.starts_with("analyze_") => ANALYZE_RULES,
        b if b.starts_with("repair_") => REPAIR_RULES,
        b if b.starts_with("scale_") => SCALE_RULES,
        b if b.starts_with("overload_") => OVERLOAD_RULES,
        other => {
            println!("{name}: FAIL unknown bench id {other:?}");
            return 1;
        }
    };
    let mut failures = 0;
    for rule in rules {
        if !same_mode && !rule.mode_independent {
            continue;
        }
        let (Some(&b), Some(&f)) = (
            baseline.numbers.get(rule.field),
            fresh.numbers.get(rule.field),
        ) else {
            // A baseline generated before a metric existed should not
            // fail the gate; the field starts being enforced when the
            // baseline is regenerated.
            println!("{name}: SKIP {} (missing on one side)", rule.field);
            continue;
        };
        match check_rule(rule, b, f, tol) {
            Ok(line) => println!("{name}: OK   {line}"),
            Err(line) => {
                println!("{name}: FAIL {line}");
                failures += 1;
            }
        }
    }
    failures += check_invariants(name, &bench_id, fresh);
    failures
}

/// Within-report invariants on the *fresh* run — absolute bars that
/// hold regardless of the baseline, dispatched on the fresh machine's
/// own `cores` field where the right bound is machine-dependent.
fn check_invariants(name: &str, bench_id: &str, fresh: &Report) -> u32 {
    let mut failures = 0;
    if bench_id.starts_with("scale_") {
        // The tentpole scaling bar: on a ≥ 8-core machine 8 shards must
        // deliver ≥ 3× the 1-shard throughput; with fewer cores extra
        // shards cannot beat the core count, so the bound degrades to a
        // coordination-overhead floor (8 shards keep ≥ 0.6× of 1-shard
        // throughput — barriers and cross-shard batches stay cheap
        // even when all eight reactors time-slice one core and the
        // quick workload is barrier-dominated).
        if let Some(&speedup) = fresh.numbers.get("speedup_8shard") {
            let cores = fresh.numbers.get("cores").copied().unwrap_or(1.0);
            let floor = if cores >= 8.0 { 3.0 } else { 0.6 };
            if speedup >= floor {
                println!(
                    "{name}: OK   speedup_8shard {speedup} clears the {cores}-core floor {floor}"
                );
            } else {
                println!(
                    "{name}: FAIL speedup_8shard {speedup} below the {cores}-core floor {floor}"
                );
                failures += 1;
            }
        }
    }
    if bench_id.starts_with("overload_") {
        // The bounded-latency bar: the controlled run's p99 must sit
        // under the drain bound implied by its *own* policy (the bound
        // ships inside the report, so a policy change moves the bar
        // with it).
        if let (Some(&p99), Some(&bound)) = (
            fresh.numbers.get("controlled_p99_s"),
            fresh.numbers.get("controlled_p99_bound_s"),
        ) {
            if p99 <= bound {
                println!("{name}: OK   controlled_p99_s {p99} within the drain bound {bound}");
            } else {
                println!("{name}: FAIL controlled_p99_s {p99} exceeds the drain bound {bound}");
                failures += 1;
            }
        }
    }
    if bench_id.starts_with("analyze_") {
        // ROADMAP item 2: the default multi-thread budget must never be
        // slower than the single-thread path (it once landed at ~1.14×
        // single-thread wall). Same-process walls, so a tight slack.
        if let (Some(&one), Some(&multi)) = (
            fresh.numbers.get("fast_1_thread_wall_s"),
            fresh.numbers.get("fast_wall_s"),
        ) {
            if multi <= one * (1.0 + THREAD_SLACK) {
                println!("{name}: OK   fast_wall_s {multi} vs single-thread {one} (slack {THREAD_SLACK})");
            } else {
                println!("{name}: FAIL multi-thread wall {multi} slower than single-thread {one} (slack {THREAD_SLACK})");
                failures += 1;
            }
        }
    }
    failures
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_dir = args.next().unwrap_or_else(|| "repro_out".to_string());
    let fresh_dir = args.next().unwrap_or_else(|| "repro_fresh".to_string());
    let tol: f64 = std::env::var("CHECK_BENCH_TOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);

    let mut failures = 0;
    let mut compared = 0;
    for name in [
        "BENCH_sim.json",
        "BENCH_faults.json",
        "BENCH_repair.json",
        "BENCH_analyze.json",
        "BENCH_scale.json",
        "BENCH_overload.json",
    ] {
        let b_path = format!("{baseline_dir}/{name}");
        let f_path = format!("{fresh_dir}/{name}");
        let Ok(b_text) = std::fs::read_to_string(&b_path) else {
            println!("{name}: SKIP (no baseline at {b_path})");
            continue;
        };
        let Ok(f_text) = std::fs::read_to_string(&f_path) else {
            println!("{name}: FAIL (baseline exists but no fresh report at {f_path})");
            failures += 1;
            continue;
        };
        compared += 1;
        failures += check_report(
            name,
            &parse_flat_json(&b_text),
            &parse_flat_json(&f_text),
            tol,
        );
    }
    if compared == 0 {
        println!("check_bench: FAIL — no benchmark reports compared");
        return ExitCode::FAILURE;
    }
    if failures > 0 {
        println!("check_bench: FAIL ({failures} regressed metrics)");
        ExitCode::FAILURE
    } else {
        println!("check_bench: PASS ({compared} reports within tolerance {tol})");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM_PAPER: &str = r#"{
  "bench": "sim_standard_churn_flood",
  "mode": "paper",
  "events_delivered": 100445,
  "fast_wall_s": 1.9,
  "events_per_sec_fast": 52866.0,
  "speedup_vs_reference": 2.15
}"#;

    fn sim_quick(speedup: f64) -> String {
        format!(
            r#"{{
  "bench": "sim_standard_churn_flood",
  "mode": "quick",
  "events_delivered": 8121,
  "fast_wall_s": 0.04,
  "events_per_sec_fast": 203025.0,
  "speedup_vs_reference": {speedup}
}}"#
        )
    }

    #[test]
    fn parses_flat_json() {
        let r = parse_flat_json(SIM_PAPER);
        assert_eq!(
            r.strings.get("bench").map(String::as_str),
            Some("sim_standard_churn_flood")
        );
        assert_eq!(r.numbers.get("speedup_vs_reference"), Some(&2.15));
        assert_eq!(r.numbers.get("events_delivered"), Some(&100445.0));
    }

    #[test]
    fn same_mode_checks_absolute_metrics() {
        let base = parse_flat_json(SIM_PAPER);
        // 10× slower wall: caught even though the ratio held.
        let fresh =
            parse_flat_json(&SIM_PAPER.replace("\"fast_wall_s\": 1.9", "\"fast_wall_s\": 19.0"));
        assert_eq!(check_report("sim", &base, &fresh, 0.25), 1);
        // Identical run: clean.
        assert_eq!(check_report("sim", &base, &base, 0.25), 0);
    }

    #[test]
    fn mode_mismatch_compares_only_ratios() {
        let base = parse_flat_json(SIM_PAPER);
        // Quick-mode wall times and event counts differ wildly from
        // the paper baseline; only the speedup ratio is compared.
        let ok = parse_flat_json(&sim_quick(1.9));
        assert_eq!(check_report("sim", &base, &ok, 0.25), 0);
        let regressed = parse_flat_json(&sim_quick(1.2));
        assert_eq!(check_report("sim", &base, &regressed, 0.25), 1);
    }

    #[test]
    fn fault_reports_use_sim_rules() {
        let storm = SIM_PAPER.replace("sim_standard_churn_flood", "sim_crash_storm_faults");
        let base = parse_flat_json(&storm);
        assert_eq!(check_report("faults", &base, &base, 0.25), 0);
        let regressed = parse_flat_json(&storm.replace(
            "\"speedup_vs_reference\": 2.15",
            "\"speedup_vs_reference\": 1.0",
        ));
        assert_eq!(check_report("faults", &base, &regressed, 0.25), 1);
    }

    #[test]
    fn tolerance_is_relative_and_directional() {
        let rule = &SIM_RULES[0]; // speedup, higher better
        assert!(check_rule(rule, 2.0, 1.6, 0.25).is_ok());
        assert!(check_rule(rule, 2.0, 1.4, 0.25).is_err());
        // Improvements never fail.
        assert!(check_rule(rule, 2.0, 4.0, 0.25).is_ok());
        let rule = &SIM_RULES[2]; // wall, lower better
        assert!(check_rule(rule, 2.0, 2.4, 0.25).is_ok());
        assert!(check_rule(rule, 2.0, 3.5, 0.25).is_err());
    }

    #[test]
    fn zero_baselines_get_absolute_slack() {
        let rule = &ANALYZE_RULES[2]; // allocs per source, lower better
        assert!(check_rule(rule, 0.0, 0.0, 0.25).is_ok());
        assert!(check_rule(rule, 0.0, 1.0, 0.25).is_ok());
        assert!(check_rule(rule, 0.0, 2.0, 0.25).is_err());
    }

    fn scale_report(cores: u32, speedup: f64) -> Report {
        parse_flat_json(&format!(
            r#"{{
  "bench": "scale_sharded_engine_throughput",
  "mode": "paper",
  "cores": {cores},
  "events_per_sec_40k": 2000000.0,
  "events_per_sec_1m": 1500000.0,
  "speedup_8shard": {speedup}
}}"#
        ))
    }

    #[test]
    fn scale_floor_is_machine_aware() {
        // Self-comparisons make every relative rule pass, isolating
        // the machine-aware absolute floor on the fresh report.
        // Single-core machine: only the coordination-overhead bound
        // (≥ 0.6×) applies — 8 shards cannot beat 1 core.
        let ok1 = scale_report(1, 0.92);
        assert_eq!(check_report("scale", &ok1, &ok1, 0.25), 0);
        let bad1 = scale_report(1, 0.5);
        assert_eq!(check_report("scale", &bad1, &bad1, 0.25), 1);
        // ≥ 8 cores: the tentpole ≥ 3× bar is enforced.
        let ok8 = scale_report(8, 4.1);
        assert_eq!(check_report("scale", &ok8, &ok8, 0.25), 0);
        let bad8 = scale_report(8, 2.0);
        assert_eq!(check_report("scale", &bad8, &bad8, 0.25), 1);
        // And the relative comparison still applies on top: a large
        // drop that clears the floor fails against the baseline.
        assert_eq!(check_report("scale", &ok8, &scale_report(8, 3.0), 0.25), 1);
    }

    const ANALYZE_SWEEP: &str = r#"{
  "bench": "analyze_power_law_ttl7_full_sources",
  "mode": "paper",
  "cores": 4,
  "fast_1_thread_wall_s": 4.18,
  "fast_wall_s": 2.3,
  "thread_speedup_best": 1.8,
  "speedup_vs_reference_1_thread": 3.0
}"#;

    #[test]
    fn analyze_multi_thread_must_not_be_slower_than_single() {
        let base = parse_flat_json(ANALYZE_SWEEP);
        assert_eq!(check_report("analyze", &base, &base, 0.25), 0);
        // The ROADMAP item 2 regression: 4.77 s multi vs 4.18 s single
        // sits inside the 25 % cross-run tolerance, so a self-compare
        // (all relative rules pass) proves the within-report invariant
        // alone catches it.
        let regressed = parse_flat_json(
            &ANALYZE_SWEEP.replace("\"fast_wall_s\": 2.3", "\"fast_wall_s\": 4.77"),
        );
        assert_eq!(check_report("analyze", &regressed, &regressed, 0.25), 1);
        // Equal walls (a 1-core machine resolves both budgets to one
        // worker) are fine.
        let one_core = parse_flat_json(
            &ANALYZE_SWEEP.replace("\"fast_wall_s\": 2.3", "\"fast_wall_s\": 4.18"),
        );
        assert_eq!(check_report("analyze", &one_core, &one_core, 0.25), 0);
    }

    const OVERLOAD_PAPER: &str = r#"{
  "bench": "overload_flash_crowd_control",
  "mode": "paper",
  "accounted_fraction": 0.991,
  "p99_divergence_ratio": 16.0,
  "controlled_p99_s": 32.0,
  "controlled_p99_bound_s": 40.5
}"#;

    #[test]
    fn overload_reports_use_overload_rules() {
        let base = parse_flat_json(OVERLOAD_PAPER);
        assert_eq!(check_report("overload", &base, &base, 0.25), 0);
        // 0.85 accounting is within 25 % of the baseline, but below the
        // ≥ 0.9 acceptance floor: the relative tolerance must not
        // rescue it.
        let leaky = parse_flat_json(&OVERLOAD_PAPER.replace(
            "\"accounted_fraction\": 0.991",
            "\"accounted_fraction\": 0.85",
        ));
        assert_eq!(check_report("overload", &base, &leaky, 0.25), 1);
        // A vanished separation from the uncontrolled baseline fails
        // the divergence floor.
        let converged = parse_flat_json(&OVERLOAD_PAPER.replace(
            "\"p99_divergence_ratio\": 16.0",
            "\"p99_divergence_ratio\": 1.1",
        ));
        assert_eq!(check_report("overload", &base, &converged, 0.25), 1);
    }

    #[test]
    fn overload_p99_bound_is_a_within_report_invariant() {
        // Self-comparison passes every relative rule, isolating the
        // p99-vs-bound invariant carried by the fresh report itself.
        let over = parse_flat_json(
            &OVERLOAD_PAPER.replace("\"controlled_p99_s\": 32.0", "\"controlled_p99_s\": 64.0"),
        );
        assert_eq!(check_report("overload", &over, &over, 0.25), 1);
    }

    const REPAIR_PAPER: &str = r#"{
  "bench": "repair_crash_storm_reachability",
  "mode": "paper",
  "min_reachable_promote_partner_k1": 0.978,
  "min_reachable_promote_k1": 0.978,
  "reachability_gain_k1": 0.32
}"#;

    #[test]
    fn repair_reports_use_repair_rules() {
        let base = parse_flat_json(REPAIR_PAPER);
        assert_eq!(check_report("repair", &base, &base, 0.25), 0);
    }

    #[test]
    fn repair_floor_is_absolute_not_relative() {
        let base = parse_flat_json(REPAIR_PAPER);
        // 0.94 is within 25 % of the 0.978 baseline, but below the
        // ≥ 0.95 acceptance floor: the relative tolerance must not
        // rescue it.
        let below_bar = parse_flat_json(&REPAIR_PAPER.replace(
            "\"min_reachable_promote_partner_k1\": 0.978",
            "\"min_reachable_promote_partner_k1\": 0.94",
        ));
        assert_eq!(check_report("repair", &base, &below_bar, 0.25), 1);
        // A vanished separation (the baseline no longer degrades)
        // fails the gain floor even though higher-better relative
        // checks alone would also catch this large a drop.
        let no_gain = parse_flat_json(&REPAIR_PAPER.replace(
            "\"reachability_gain_k1\": 0.32",
            "\"reachability_gain_k1\": 0.02",
        ));
        assert_eq!(check_report("repair", &base, &no_gain, 0.25), 1);
    }
}
