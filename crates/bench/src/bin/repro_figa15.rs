//! Figure A-15: the caveat to rule #3 — outdegree 100 loses to
//! outdegree 50 once EPL stops improving.

use sp_bench::{banner, fidelity, scaled};
use sp_core::experiments::rules;

fn main() {
    banner(
        "Figure A-15",
        "past the knee, more neighbors only add redundant copies",
    );
    let n = scaled(10_000);
    let sizes: Vec<usize> = [1usize, 5, 10, 20, 40, 60, 80, 100]
        .into_iter()
        .filter(|&c| c * 10 <= n)
        .collect();
    let data = rules::fig_a15(n, &sizes, &[50.0, 100.0], &fidelity());
    println!("{}", data.render());
    println!(
        "Expected shape: the outdegree-100 curve sits strictly above the\n\
         outdegree-50 curve at every cluster size — EPL is the same, the\n\
         extra edges only carry dropped duplicates."
    );
}
