//! Figure A-14: individual super-peer incoming bandwidth vs cluster
//! size when joins dominate.

use sp_bench::{banner, fidelity, scaled};
use sp_core::experiments::cluster_sweep;

fn main() {
    banner(
        "Figure A-14",
        "with joins dominant, the single-cluster dip disappears",
    );
    let n = scaled(10_000);
    let fid = fidelity();
    let data = cluster_sweep::run(
        n,
        &cluster_sweep::full_range_cluster_sizes(n),
        &cluster_sweep::paper_systems(),
        Some(cluster_sweep::LOW_QUERY_RATE),
        &fid,
    );
    println!("{}", data.render_fig5());
    println!(
        "At queries:joins ≈ 1 the Figure 5 dip at cluster = N shallows from\n\
         ~10× to ~1.4×. Our per-node join rates are 1/lifespan with the\n\
         heavy-tailed session law, so short sessions push the *effective*\n\
         mean join rate up (Jensen); full inversion (the paper's 'maximum\n\
         at ClusterSize = GraphSize') appears once joins truly dominate:\n"
    );
    let strong = &cluster_sweep::paper_systems()[..1];
    let dominated = cluster_sweep::run(
        n,
        &[n / 2, n],
        strong,
        Some(cluster_sweep::JOIN_DOMINATED_QUERY_RATE),
        &fid,
    );
    println!(
        "join-dominated (query rate {:.1e}): sp incoming at N/2 = {:.3e} bps, \
         at N = {:.3e} bps (maximum at N)",
        cluster_sweep::JOIN_DOMINATED_QUERY_RATE,
        dominated.cell(0, 0).summary.sp_in_bw.mean,
        dominated.cell(1, 0).summary.sp_in_bw.mean,
    );
}
