//! Figure 5: individual super-peer incoming bandwidth vs cluster size.

use sp_bench::{banner, fidelity, scaled};
use sp_core::experiments::cluster_sweep;

fn main() {
    banner(
        "Figure 5",
        "individual load grows with cluster size, except the single-cluster dip",
    );
    let n = scaled(10_000);
    let data = cluster_sweep::run(
        n,
        &cluster_sweep::full_range_cluster_sizes(n),
        &cluster_sweep::paper_systems(),
        None,
        &fidelity(),
    );
    println!("{}", data.render_fig5());
    println!(
        "Expected shape: near-linear growth; a maximum around cluster = N/2\n\
         and a pronounced dip at cluster = N (the f(1-f) incoming-results\n\
         effect); redundancy roughly halves each point."
    );
}
