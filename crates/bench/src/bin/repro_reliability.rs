//! Section 3.2 reliability claim: k-redundant virtual super-peers keep
//! clients connected through churn.

use sp_bench::{banner, fidelity, scaled, scaled_duration};
use sp_core::experiments::dynamics;

fn main() {
    banner("Reliability", "redundancy under churn (Section 3.2)");
    let c = dynamics::reliability_experiment(
        scaled(2_000),
        10,
        1080.0,
        scaled_duration(7200.0),
        fidelity().seed,
    );
    println!("{}", dynamics::render_reliability(&c));
    println!(
        "Expected shape: with k = 2, cluster failures require both partners\n\
         to die within one recruit window, so availability approaches 1 and\n\
         failures drop by an order of magnitude."
    );
}
