//! Figure 9 (and Appendix F): expected path length vs average
//! outdegree, per desired reach.

use sp_bench::{banner, fidelity, quick_mode, scaled};
use sp_core::experiments::epl_table;

fn main() {
    banner("Figure 9", "EPL falls with outdegree, rises with reach");
    // A 2000-super-peer overlay so even the reach-1000 curve has room
    // (EPL to the r nearest nodes needs more than r nodes reachable).
    let overlay = scaled(20_000) / 10;
    let samples = if quick_mode() { 15 } else { 60 };
    let data = epl_table::run(
        &epl_table::paper_outdegrees(),
        &epl_table::paper_reaches(),
        overlay,
        samples,
        fidelity().seed,
    );
    println!("{}", data.render_fig9());
    println!("{}", data.render_appendix_f());
    println!(
        "Expected shape: log_d(reach) tracks (and mostly lower-bounds) the\n\
         measurement; beyond outdegree ~50 extra degree buys almost no EPL\n\
         (the Appendix E caveat)."
    );
}
