//! Figure 12: per-node outgoing-bandwidth rank curves for the three
//! Figure 11 topologies.

use sp_bench::{banner, fidelity, scaled};
use sp_core::experiments::redesign;

fn main() {
    banner(
        "Figure 12",
        "the redesign lowers the whole load distribution",
    );
    let users = scaled(20_000);
    let data = redesign::run(
        users,
        (users * 3) / 20,
        &redesign::paper_constraints(),
        &fidelity(),
    )
    .expect("paper scenario is feasible");
    println!("{}", data.render_fig12());
    // A coarse rank curve: every decile.
    println!("rank curve (outgoing bps at each decile of nodes, heaviest first):");
    for top in &data.topologies {
        let c = &top.rank_curve;
        let picks: Vec<String> = (0..=9)
            .map(|i| format!("{:.2e}", c[(c.len() - 1) * i / 9]))
            .collect();
        println!("  {:<8} {}", top.label, picks.join("  "));
    }
    println!(
        "\nExpected shape: for the lowest 90% of nodes (clients in the new\n\
         design), load is 1-2 orders of magnitude below today's; the top\n\
         decile still improves, most at the very head."
    );
}
