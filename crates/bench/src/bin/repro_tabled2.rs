//! Appendix D, Table 2: aggregate load at average outdegree 3.1 vs 10
//! (cluster size 100).

use sp_bench::{banner, fidelity, scaled};
use sp_core::experiments::rules;

fn main() {
    banner("Appendix D Table 2", "denser overlays lower aggregate load");
    let data = rules::rule3(scaled(10_000), 100, (3.1, 10.0), &fidelity());
    println!("{}", data.render_table_d2());
    println!(
        "Expected shape: outdegree 10 beats 3.1 on both bandwidth columns\n\
         (paper: ~31% bandwidth saving) with slightly lower processing."
    );
}
