//! Figure 6: individual super-peer processing load at small cluster
//! sizes — the connection-overhead upturn.

use sp_bench::{banner, fidelity, scaled};
use sp_core::experiments::cluster_sweep;

fn main() {
    banner(
        "Figure 6",
        "processing load is U-shaped for the strongly connected overlay",
    );
    let n = scaled(10_000);
    let data = cluster_sweep::run(
        n,
        &cluster_sweep::small_cluster_sizes(n),
        &cluster_sweep::paper_systems(),
        None,
        &fidelity(),
    );
    println!("{}", data.render_fig6());
    println!(
        "Expected shape: in the strong overlay, tiny clusters mean ~n open\n\
         connections per super-peer, so packet-multiplex overhead dominates\n\
         and load *rises* as clusters shrink below the sweet spot."
    );
}
