//! Rule #4 numerics: one wasted TTL hop at full reach costs real
//! bandwidth (paper: 19% of aggregate incoming bandwidth at
//! outdegree 20, TTL 4 vs 3).

use sp_bench::{banner, fidelity, scaled};
use sp_core::experiments::rules;

fn main() {
    banner("Rule #4", "minimize TTL");
    let n = scaled(10_000);
    let data = rules::rule4(n, 10, 20.0, (3, 4), &fidelity());
    println!("{}", data.render());
}
