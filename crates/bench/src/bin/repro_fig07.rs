//! Figure 7: super-peer outgoing bandwidth by number of neighbors, for
//! average outdegree 3.1 vs 10.

use sp_bench::{banner, fidelity, scaled};
use sp_core::experiments::outdegree_hist;

fn main() {
    banner(
        "Figure 7",
        "load by outdegree: sparse topologies concentrate load",
    );
    let data = outdegree_hist::run(
        scaled(10_000),
        20,
        &outdegree_hist::paper_outdegrees(),
        &fidelity(),
    );
    println!("{}", data.render_fig7());
    println!(
        "Expected shape: at average outdegree 3.1, load climbs steeply with\n\
         degree (hubs overloaded); at 10, every super-peer sits in one\n\
         moderate band."
    );
}
