//! Figure 8: expected results per query by number of neighbors.

use sp_bench::{banner, fidelity, scaled};
use sp_core::experiments::outdegree_hist;

fn main() {
    banner(
        "Figure 8",
        "low-degree super-peers in sparse overlays see fewer results",
    );
    let data = outdegree_hist::run(
        scaled(10_000),
        20,
        &outdegree_hist::paper_outdegrees(),
        &fidelity(),
    );
    println!("{}", data.render_fig8());
    println!(
        "Expected shape: results rise with outdegree in the sparse topology\n\
         and saturate near the full-network value in the dense one."
    );
}
