//! Rule #2 numerics: redundancy's individual-vs-aggregate tradeoff at
//! the paper's anchor point (strong overlay, cluster size 100).

use sp_bench::{banner, fidelity, scaled};
use sp_core::experiments::rules;

fn main() {
    banner("Rule #2", "super-peer redundancy is good");
    let data = rules::rule2(scaled(10_000), 100, &fidelity());
    println!("{}", data.render());
    println!(
        "Paper anchors: aggregate bandwidth +~2.5%, individual partner\n\
         bandwidth -~48%, aggregate processing +~17%, individual -~41%."
    );
}
