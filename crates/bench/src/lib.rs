//! Shared plumbing for the reproduction binaries.
//!
//! Every `repro_*` binary reads three environment variables so the
//! whole suite can be smoke-tested quickly or run at paper scale:
//!
//! * `REPRO_QUICK=1` — shrink networks and trial counts (~seconds per
//!   figure instead of minutes);
//! * `REPRO_SEED=<u64>` — override the root seed;
//! * `SP_THREADS=<n>` — cap the worker-thread budget (default: one
//!   worker per core; never changes the reported numbers).

use sp_core::experiments::Fidelity;

/// Whether quick mode is requested.
pub fn quick_mode() -> bool {
    std::env::var("REPRO_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// The worker-thread budget from `SP_THREADS` (0 = one per core).
pub fn threads() -> usize {
    std::env::var("SP_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The evaluation fidelity for the current mode.
pub fn fidelity() -> Fidelity {
    let mut f = if quick_mode() {
        Fidelity::quick()
    } else {
        Fidelity::standard()
    };
    if let Ok(seed) = std::env::var("REPRO_SEED") {
        if let Ok(seed) = seed.parse() {
            f.seed = seed;
        }
    }
    f.threads = threads();
    f
}

/// Scales a paper-scale network size down in quick mode.
pub fn scaled(paper_size: usize) -> usize {
    if quick_mode() {
        (paper_size / 10).max(200)
    } else {
        paper_size
    }
}

/// Scales a simulated duration down in quick mode.
pub fn scaled_duration(paper_secs: f64) -> f64 {
    if quick_mode() {
        (paper_secs / 6.0).max(600.0)
    } else {
        paper_secs
    }
}

/// Prints the standard banner for a reproduction binary.
pub fn banner(figure: &str, what: &str) {
    println!("================================================================");
    println!("Reproduction of {figure} — {what}");
    println!(
        "mode: {}  (set REPRO_QUICK=1 for a fast smoke run)",
        if quick_mode() { "quick" } else { "paper-scale" }
    );
    println!("================================================================\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_respects_quick_mode() {
        // Environment-dependent, but the arithmetic is fixed: quick
        // mode divides by 10 with a floor.
        if quick_mode() {
            assert_eq!(scaled(10_000), 1000);
            assert_eq!(scaled(500), 200);
        } else {
            assert_eq!(scaled(10_000), 10_000);
        }
    }
}
