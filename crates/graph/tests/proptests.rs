//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use sp_graph::generate::{erdos_renyi, plod, random_regular, PlodConfig};
use sp_graph::metrics::{components, is_connected, reach};
use sp_graph::traverse::{flood, message_counts, UNREACHED};
use sp_graph::{Graph, GraphBuilder, NodeId};
use sp_stats::SpRng;

/// Builds an arbitrary simple graph from a node count and edge seeds.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..40,
        prop::collection::vec((0u32..40, 0u32..40), 0..120),
    )
        .prop_map(|(n, pairs)| {
            let mut b = GraphBuilder::new(n);
            for (a, c) in pairs {
                let (a, c) = (a % n as u32, c % n as u32);
                b.add_edge(a, c);
            }
            b.build()
        })
}

proptest! {
    /// Structural invariants hold for every built graph.
    #[test]
    fn builder_output_is_valid(g in arb_graph()) {
        prop_assert!(g.check_invariants().is_ok());
    }

    /// BFS depths satisfy the triangle property: adjacent nodes differ
    /// by at most one level, and every reached non-source node has a
    /// reached parent one level up.
    #[test]
    fn flood_depths_consistent(g in arb_graph(), src in 0u32..40, ttl in 0u16..6) {
        let src = src % g.num_nodes() as u32;
        let f = flood(&g, src, ttl);
        for v in g.nodes() {
            let dv = f.depth[v as usize];
            if dv == UNREACHED {
                continue;
            }
            prop_assert!(dv <= ttl);
            if v != src {
                let p = f.parent[v as usize];
                prop_assert!(g.has_edge(v, p));
                prop_assert_eq!(f.depth[p as usize] + 1, dv);
            }
            for &u in g.neighbors(v) {
                let du = f.depth[u as usize];
                if dv < ttl {
                    // A forwarding node delivers to all neighbors.
                    prop_assert!(du != UNREACHED && du <= dv + 1);
                }
            }
        }
    }

    /// Sent and received query-message totals balance, and every
    /// reached non-source node receives at least its first copy.
    #[test]
    fn message_conservation(g in arb_graph(), src in 0u32..40, ttl in 0u16..6) {
        let src = src % g.num_nodes() as u32;
        let f = flood(&g, src, ttl);
        let mc = message_counts(&g, &f);
        let sent: u64 = mc.sent.iter().map(|&x| x as u64).sum();
        let recv: u64 = mc.recv.iter().map(|&x| x as u64).sum();
        prop_assert_eq!(sent, recv);
        for &v in &f.order {
            if v != src && ttl > 0 {
                prop_assert!(mc.recv[v as usize] >= 1, "reached node {} got no copy", v);
            }
        }
        // Non-forwarding nodes never send.
        for v in g.nodes() {
            if !f.is_reached(v) || f.depth[v as usize] >= ttl {
                prop_assert_eq!(mc.sent[v as usize], 0);
            }
        }
    }

    /// Reach is monotone in TTL and bounded by the component size.
    #[test]
    fn reach_monotone_in_ttl(g in arb_graph(), src in 0u32..40) {
        let src = src % g.num_nodes() as u32;
        let comp_size = components(&g)
            .into_iter()
            .find(|c| c.contains(&(src as NodeId)))
            .map(|c| c.len())
            .unwrap_or(1);
        let mut prev = 0usize;
        for ttl in 0u16..8 {
            let r = reach(&g, src, ttl);
            prop_assert!(r >= prev);
            prop_assert!(r <= comp_size);
            prev = r;
        }
    }

    /// Generators always return connected graphs.
    #[test]
    fn generators_connected(n in 3usize..200, d in 2usize..8, seed in any::<u64>()) {
        let mut rng = SpRng::seed_from_u64(seed);
        prop_assert!(is_connected(&erdos_renyi(n, d as f64, &mut rng)));
        prop_assert!(is_connected(&random_regular(n, d.min(n - 1), &mut rng)));
        if (d as f64) < n as f64 {
            prop_assert!(is_connected(&plod(n, PlodConfig::with_mean(d as f64), &mut rng)));
        }
    }

    /// PLOD respects the configured degree cap.
    #[test]
    fn plod_respects_cap(n in 20usize..300, seed in any::<u64>()) {
        let mut rng = SpRng::seed_from_u64(seed);
        let cfg = PlodConfig { mean_degree: 4.0, beta: 0.8, max_degree: Some(9) };
        let g = plod(n, cfg, &mut rng);
        for v in g.nodes() {
            // Connectivity repair may add one edge to a random node of
            // each fragment; allow that slack.
            prop_assert!(g.degree(v) <= 9 + 3, "degree {} exceeds cap", g.degree(v));
        }
    }

    /// accumulate_up conserves total mass.
    #[test]
    fn accumulate_preserves_total_at_root(g in arb_graph(), src in 0u32..40) {
        let src = src % g.num_nodes() as u32;
        let f = flood(&g, src, 8);
        let mut vals: Vec<f64> = (0..g.num_nodes()).map(|i| (i % 5) as f64).collect();
        let reached_total: f64 = f.order.iter().map(|&v| vals[v as usize]).sum();
        f.accumulate_up(&mut vals);
        prop_assert!((vals[src as usize] - reached_total).abs() < 1e-9);
    }
}
