//! # sp-graph
//!
//! Overlay-topology substrate for the super-peer network reproduction
//! of Yang & Garcia-Molina, *Designing a Super-Peer Network*
//! (ICDE 2003).
//!
//! Step 1 of the paper's evaluation methodology generates "a topology
//! of *n* nodes based on the type of graph specified", where each node
//! of the graph becomes one cluster's (virtual) super-peer. Two graph
//! families are studied:
//!
//! * **strongly connected** — every super-peer neighbors every other
//!   (a best case for result quality and bandwidth at TTL = 1);
//! * **power-law** — outdegree frequency `f_d ∝ d^{-τ}`, generated with
//!   the **PLOD** algorithm of Palmer & Steffan (GLOBECOM 2000), which
//!   is what real Gnutella crawls look like (measured average outdegree
//!   3.1 in June 2001).
//!
//! This crate provides:
//!
//! * [`Graph`] — a compact CSR (compressed sparse row) undirected
//!   simple graph, plus [`GraphBuilder`] for incremental construction;
//! * [`generate`] — graph generators: [`generate::complete`],
//!   [`generate::plod`] (power law), and baselines
//!   ([`generate::erdos_renyi`], [`generate::random_regular`],
//!   [`generate::ring`]) used by the topology-ablation benches;
//! * [`traverse`] — TTL-bounded BFS flooding ([`traverse::flood`])
//!   that reports depths, the BFS predecessor tree, and the per-node
//!   count of *redundant* query transmissions (copies that arrive over
//!   cycle edges and are dropped) — the quantity behind the paper's
//!   rule #4 ("minimize TTL") and the Appendix E caveat to rule #3 —
//!   plus [`traverse::FloodScratch`], the allocation-free reusable
//!   variant that powers the O(reach) analysis engine;
//! * [`metrics`] — connected components, degree statistics, reach and
//!   expected-path-length measurement (Figure 9, Appendix F);
//! * [`partition`] — [`PartitionMonitor`], an incremental weighted
//!   union-find with epoch-based rebuild, used by the simulator to
//!   track super-peer graph fragmentation under crash faults.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detset;
pub mod generate;
pub mod graph;
pub mod metrics;
pub mod partition;
pub mod traverse;

pub use detset::PairSet;
pub use graph::{Graph, GraphBuilder, NodeId};
pub use partition::PartitionMonitor;
pub use traverse::{flood, FloodResult, FloodScratch};
