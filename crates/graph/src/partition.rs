//! [`PartitionMonitor`]: incremental connectivity tracking over the
//! live super-peer overlay.
//!
//! The simulator needs to answer, repeatedly and cheaply, "how
//! fragmented is the super-peer graph right now, and what fraction of
//! peers sit in the largest fragment?" — the first-order robustness
//! metric for crash storms (a query can only reach clusters in the
//! submitter's component). A full BFS per observation would be
//! O(V + E) with allocation; this monitor is a weighted union-find
//! (union by size, path compression) with an *epoch-stamped lazy
//! reset*, the same trick [`crate::traverse::FloodScratch`] uses:
//!
//! * between observations, node insertions and edge unions are
//!   incremental (amortized near-O(1) each);
//! * deletions — which union-find cannot un-merge — just mark the
//!   monitor dirty ([`PartitionMonitor::note_deletion`]); the next
//!   observation rebuilds by bumping the epoch
//!   ([`PartitionMonitor::begin_epoch`], O(1) — no buffer clearing)
//!   and re-inserting the live nodes and edges.
//!
//! Component count and largest-component weight are maintained as
//! running aggregates, so reading them is O(1). All state is plain
//! vectors indexed by node id: deterministic by construction (sp-lint
//! rule D1 — no hashed containers), no RNG, no iteration-order
//! dependence (union-find aggregates are merge-order independent).

/// Weighted union-find over `u32` node ids with O(1) epoch reset.
///
/// Nodes carry a caller-supplied weight (for the simulator: peers per
/// cluster), so "largest component" is by total weight, not node
/// count. See the module docs for the rebuild-on-deletion protocol.
#[derive(Debug, Clone, Default)]
pub struct PartitionMonitor {
    /// Union-find parent pointers, indexed by node id.
    parent: Vec<u32>,
    /// Total weight of the component rooted at each index (valid only
    /// at roots).
    weight: Vec<u64>,
    /// Epoch stamp per slot; a slot is live iff its stamp equals
    /// `epoch`.
    stamp: Vec<u32>,
    /// Current epoch. Starts at 1 so zero-initialized stamps read as
    /// stale.
    epoch: u32,
    /// Live components this epoch.
    components: u32,
    /// Weight of the heaviest component this epoch.
    largest: u64,
    /// Total inserted weight this epoch.
    total: u64,
    /// Whether a deletion has invalidated the incremental state.
    dirty: bool,
}

impl PartitionMonitor {
    /// Creates an empty monitor.
    pub fn new() -> PartitionMonitor {
        PartitionMonitor {
            epoch: 1,
            ..PartitionMonitor::default()
        }
    }

    /// Starts a fresh epoch: every previously inserted node and union
    /// is forgotten in O(1), and the dirty flag is cleared. Call this,
    /// then re-insert the live nodes and edges, whenever
    /// [`is_dirty`](PartitionMonitor::is_dirty) reports that deletions
    /// have occurred since the last rebuild.
    pub fn begin_epoch(&mut self) {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Epoch wrapped: old stamps could alias the new epoch,
                // so clear them once and restart from 1.
                self.stamp.fill(0);
                1
            }
        };
        self.components = 0;
        self.largest = 0;
        self.total = 0;
        self.dirty = false;
    }

    /// Registers `id` as a singleton component of the given weight.
    /// Re-inserting a live id is a no-op returning `false`.
    pub fn insert(&mut self, id: u32, weight: u64) -> bool {
        let i = id as usize;
        if i >= self.parent.len() {
            self.parent.resize(i + 1, 0);
            self.weight.resize(i + 1, 0);
            self.stamp.resize(i + 1, 0);
        }
        if self.stamp[i] == self.epoch {
            return false;
        }
        self.stamp[i] = self.epoch;
        self.parent[i] = id;
        self.weight[i] = weight;
        self.components += 1;
        self.total += weight;
        self.largest = self.largest.max(weight);
        true
    }

    /// Whether `id` was inserted this epoch.
    pub fn contains(&self, id: u32) -> bool {
        (id as usize) < self.stamp.len() && self.stamp[id as usize] == self.epoch
    }

    /// Merges the components of `a` and `b`. Returns `true` when two
    /// distinct components were joined; `false` when they were already
    /// connected or either id is absent this epoch.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        if !self.contains(a) || !self.contains(b) {
            return false;
        }
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        // Union by weight: hang the lighter root under the heavier.
        let (big, small) = if self.weight[ra as usize] >= self.weight[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.weight[big as usize] += self.weight[small as usize];
        self.components -= 1;
        self.largest = self.largest.max(self.weight[big as usize]);
        true
    }

    /// Records that a node or edge was deleted. Union-find cannot
    /// un-merge, so the incremental aggregates become stale until the
    /// next [`begin_epoch`](PartitionMonitor::begin_epoch) rebuild.
    pub fn note_deletion(&mut self) {
        self.dirty = true;
    }

    /// Whether deletions since the last epoch require a rebuild before
    /// the aggregates can be trusted.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Live components this epoch.
    pub fn component_count(&self) -> u32 {
        self.components
    }

    /// Total weight of the heaviest component this epoch.
    pub fn largest_weight(&self) -> u64 {
        self.largest
    }

    /// Sum of all inserted weights this epoch.
    pub fn total_weight(&self) -> u64 {
        self.total
    }

    /// Root of `id`'s component with two-pass path compression.
    /// `id` must be live this epoch.
    fn find(&mut self, id: u32) -> u32 {
        let mut root = id;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = id;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions_track_components() {
        let mut m = PartitionMonitor::new();
        for id in 0..5 {
            assert!(m.insert(id, 10));
        }
        assert_eq!(m.component_count(), 5);
        assert_eq!(m.largest_weight(), 10);
        assert_eq!(m.total_weight(), 50);

        assert!(m.union(0, 1));
        assert!(m.union(1, 2));
        assert!(!m.union(0, 2), "already connected");
        assert_eq!(m.component_count(), 3);
        assert_eq!(m.largest_weight(), 30);
        assert_eq!(m.total_weight(), 50);
    }

    #[test]
    fn duplicate_insert_is_a_no_op() {
        let mut m = PartitionMonitor::new();
        assert!(m.insert(3, 7));
        assert!(!m.insert(3, 99));
        assert_eq!(m.total_weight(), 7);
        assert_eq!(m.component_count(), 1);
    }

    #[test]
    fn union_with_absent_node_is_rejected() {
        let mut m = PartitionMonitor::new();
        m.insert(0, 1);
        assert!(!m.union(0, 42));
        assert!(!m.union(42, 0));
        assert_eq!(m.component_count(), 1);
    }

    #[test]
    fn epoch_rebuild_forgets_everything() {
        let mut m = PartitionMonitor::new();
        m.insert(0, 5);
        m.insert(1, 5);
        m.union(0, 1);
        m.note_deletion();
        assert!(m.is_dirty());

        m.begin_epoch();
        assert!(!m.is_dirty());
        assert_eq!(m.component_count(), 0);
        assert_eq!(m.largest_weight(), 0);
        assert_eq!(m.total_weight(), 0);
        assert!(!m.contains(0), "stale nodes are gone after the bump");

        // Rebuild with node 1 removed: 0 stands alone again.
        m.insert(0, 5);
        assert_eq!(m.component_count(), 1);
        assert!(!m.union(0, 1), "1 no longer exists");
    }

    #[test]
    fn largest_weight_follows_merges_across_shapes() {
        let mut m = PartitionMonitor::new();
        // Two chains of very different weight.
        for id in 0..4 {
            m.insert(id, 1);
        }
        m.insert(4, 100);
        m.union(0, 1);
        m.union(2, 3);
        assert_eq!(m.largest_weight(), 100);
        m.union(1, 2);
        assert_eq!(m.largest_weight(), 100);
        m.union(3, 4);
        assert_eq!(m.component_count(), 1);
        assert_eq!(m.largest_weight(), 104);
    }

    #[test]
    fn matches_naive_components_on_a_random_graph() {
        // Deterministic LCG edge stream over 60 nodes; compare against
        // a naive DFS labeling.
        let n = 60u32;
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut x = 9001u64;
        for _ in 0..80 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (x >> 33) as u32 % n;
            let b = (x >> 11) as u32 % n;
            if a != b {
                edges.push((a, b));
            }
        }

        let mut m = PartitionMonitor::new();
        for id in 0..n {
            m.insert(id, (id as u64) + 1);
        }
        for &(a, b) in &edges {
            m.union(a, b);
        }

        // Naive labeling.
        let mut label: Vec<u32> = (0..n).collect();
        loop {
            let mut changed = false;
            for &(a, b) in &edges {
                let (la, lb) = (label[a as usize], label[b as usize]);
                let min = la.min(lb);
                if la != min || lb != min {
                    label[a as usize] = min;
                    label[b as usize] = min;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut roots: Vec<u32> = label.clone();
        roots.sort_unstable();
        roots.dedup();
        let naive_components = roots.len() as u32;
        let naive_largest = roots
            .iter()
            .map(|&r| {
                (0..n)
                    .filter(|&i| label[i as usize] == r)
                    .map(|i| (i as u64) + 1)
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0);

        assert_eq!(m.component_count(), naive_components);
        assert_eq!(m.largest_weight(), naive_largest);
        assert_eq!(m.total_weight(), (1..=n as u64).sum::<u64>());
    }

    #[test]
    fn epoch_overflow_resets_cleanly() {
        let mut m = PartitionMonitor::new();
        m.insert(0, 1);
        // Force the wrap path.
        m.epoch = u32::MAX;
        m.begin_epoch();
        assert_eq!(m.epoch, 1);
        assert!(!m.contains(0));
        assert!(m.insert(0, 2));
        assert_eq!(m.total_weight(), 2);
    }
}
