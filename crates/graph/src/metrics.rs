//! Graph measurements: components, degree statistics, reach, and
//! expected path length.
//!
//! Figure 9 of the paper plots the *experimentally determined* EPL for
//! a desired reach and average outdegree; Appendix F gives the
//! `log_d(reach)` analytic approximation and notes it is a lower bound
//! on graphs (cycles reduce the "effective outdegree"). The functions
//! here produce the measured side of that comparison.

use sp_stats::{GroupedStats, OnlineStats, SpRng};

use crate::graph::{Graph, NodeId};
use crate::traverse::flood;

/// Connected components, each a sorted list of nodes. Ordered by the
/// smallest contained node id.
pub fn components(g: &Graph) -> Vec<Vec<NodeId>> {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut comps = Vec::new();
    let mut queue = Vec::new();
    for start in 0..n as NodeId {
        if seen[start as usize] {
            continue;
        }
        let mut comp = Vec::new();
        seen[start as usize] = true;
        queue.push(start);
        while let Some(v) = queue.pop() {
            comp.push(v);
            for &u in g.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push(u);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

/// Whether the graph is connected (a single component; the empty graph
/// counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    components(g).len() <= 1
}

/// Summary statistics of the degree sequence.
pub fn degree_stats(g: &Graph) -> OnlineStats {
    let mut s = OnlineStats::new();
    for v in g.nodes() {
        s.push(g.degree(v) as f64);
    }
    s
}

/// Frequency of each outdegree — the power-law check `f_d ∝ d^{-τ}`.
/// Key = degree, observations = 1 per node (so `count()` per key is the
/// frequency).
pub fn degree_histogram(g: &Graph) -> GroupedStats {
    let mut grouped = GroupedStats::new();
    for v in g.nodes() {
        grouped.push(g.degree(v) as u64, 1.0);
    }
    grouped
}

/// Number of nodes reached by a TTL-bounded flood from `src`
/// (including `src` itself) — the paper's *reach*.
pub fn reach(g: &Graph, src: NodeId, ttl: u16) -> usize {
    flood(g, src, ttl).reach()
}

/// Mean reach over `samples` random sources.
pub fn mean_reach(g: &Graph, ttl: u16, samples: usize, rng: &mut SpRng) -> f64 {
    if g.num_nodes() == 0 || samples == 0 {
        return 0.0;
    }
    let mut stats = OnlineStats::new();
    for _ in 0..samples {
        let src = rng.index(g.num_nodes()) as NodeId;
        stats.push(reach(g, src, ttl) as f64);
    }
    stats.mean()
}

/// Expected path length to the `desired_reach` *nearest* nodes from
/// `src`: floods without a TTL cap, takes the first `desired_reach`
/// nodes in BFS order (excluding the source), and returns their mean
/// depth. Returns `None` if fewer than `desired_reach` nodes are
/// reachable.
///
/// This reproduces the measurement behind Figure 9: "the
/// experimentally-determined EPL for a number of scenarios" given a
/// desired reach and an average outdegree.
pub fn epl_for_reach(g: &Graph, src: NodeId, desired_reach: usize) -> Option<f64> {
    if desired_reach == 0 {
        return Some(0.0);
    }
    let f = flood(g, src, u16::MAX - 1);
    if f.order.len() <= desired_reach {
        return None;
    }
    let sum: u64 = f.order[1..=desired_reach]
        .iter()
        .map(|&v| f.depth[v as usize] as u64)
        .sum();
    Some(sum as f64 / desired_reach as f64)
}

/// Mean [`epl_for_reach`] over `samples` random sources; sources that
/// cannot reach `desired_reach` nodes are skipped. Returns `None` if no
/// source qualified.
pub fn mean_epl_for_reach(
    g: &Graph,
    desired_reach: usize,
    samples: usize,
    rng: &mut SpRng,
) -> Option<f64> {
    if g.num_nodes() == 0 {
        return None;
    }
    let mut stats = OnlineStats::new();
    for _ in 0..samples {
        let src = rng.index(g.num_nodes()) as NodeId;
        if let Some(epl) = epl_for_reach(g, src, desired_reach) {
            stats.push(epl);
        }
    }
    (stats.count() > 0).then(|| stats.mean())
}

/// The Appendix F analytic EPL approximation `log_d(reach)` for average
/// outdegree `d` — exact on an infinite `d`-ary tree, a lower bound on
/// graphs with cycles.
///
/// Returns `None` when `d <= 1` or `reach < 1` (the approximation is
/// undefined there).
pub fn epl_tree_approximation(avg_outdegree: f64, reach: f64) -> Option<f64> {
    if avg_outdegree <= 1.0 || reach < 1.0 {
        return None;
    }
    Some(reach.ln() / avg_outdegree.ln())
}

/// Minimum TTL whose tree-bound reach `d + d² + … + d^t` covers
/// `desired_reach` — the upper bound the design procedure of Figure 10
/// uses ("expected reach will be bounded above by roughly 18² + 18").
///
/// Returns `None` if `d <= 1` (flooding along a path or matching
/// cannot grow geometrically) or the bound cannot be met within
/// `max_ttl`.
pub fn min_ttl_for_reach(avg_outdegree: f64, desired_reach: usize, max_ttl: u16) -> Option<u16> {
    if avg_outdegree <= 1.0 {
        return None;
    }
    let mut covered = 0.0f64;
    let mut level = 1.0f64;
    for t in 1..=max_ttl {
        level *= avg_outdegree;
        covered += level;
        if covered >= desired_reach as f64 {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{complete, plod, ring, PlodConfig};
    use crate::graph::GraphBuilder;

    #[test]
    fn components_of_disconnected_graph() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build();
        let comps = components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![2, 3]);
        assert_eq!(comps[2], vec![4]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_graph_components() {
        assert!(components(&crate::graph::Graph::empty(0)).is_empty());
        assert!(is_connected(&crate::graph::Graph::empty(0)));
        assert_eq!(components(&crate::graph::Graph::empty(3)).len(), 3);
    }

    #[test]
    fn reach_on_ring() {
        let g = ring(10);
        assert_eq!(reach(&g, 0, 1), 3); // self + 2 neighbors
        assert_eq!(reach(&g, 0, 2), 5);
        assert_eq!(reach(&g, 0, 100), 10);
    }

    #[test]
    fn reach_on_complete() {
        let g = complete(8);
        assert_eq!(reach(&g, 3, 1), 8);
    }

    #[test]
    fn epl_for_reach_on_ring() {
        let g = ring(11);
        // Nearest 4 nodes from any source on a ring: two at depth 1,
        // two at depth 2 → EPL 1.5.
        let epl = epl_for_reach(&g, 0, 4).unwrap();
        assert!((epl - 1.5).abs() < 1e-12);
    }

    #[test]
    fn epl_for_reach_insufficient_nodes() {
        let g = ring(5);
        assert!(epl_for_reach(&g, 0, 10).is_none());
        assert_eq!(epl_for_reach(&g, 0, 0), Some(0.0));
    }

    #[test]
    fn epl_decreases_with_outdegree() {
        // The core of rule #3: higher average outdegree → lower EPL for
        // the same desired reach.
        let mut rng = SpRng::seed_from_u64(17);
        let g_low = plod(2000, PlodConfig::with_mean(3.1), &mut rng);
        let g_high = plod(2000, PlodConfig::with_mean(10.0), &mut rng);
        let epl_low = mean_epl_for_reach(&g_low, 500, 30, &mut rng).unwrap();
        let epl_high = mean_epl_for_reach(&g_high, 500, 30, &mut rng).unwrap();
        assert!(
            epl_high < epl_low,
            "EPL did not drop: d=3.1 → {epl_low}, d=10 → {epl_high}"
        );
    }

    #[test]
    fn tree_approximation_tracks_measurement() {
        // Appendix F: log_d(reach) approximates (and at moderate
        // outdegrees lower-bounds) the measured EPL. Check it on the
        // paper's own Figure 9 anchor points: outdegree 10 and 20 at a
        // desired reach of 500 on a ~1000-super-peer overlay.
        let mut rng = SpRng::seed_from_u64(23);
        for d in [10.0f64, 20.0] {
            let g = plod(1000, PlodConfig::with_mean(d), &mut rng);
            let measured = mean_epl_for_reach(&g, 500, 40, &mut rng).unwrap();
            let approx = epl_tree_approximation(d, 500.0).unwrap();
            assert!(
                measured >= approx - 0.15,
                "d={d}: approximation {approx} well above measured {measured}"
            );
            assert!(
                measured <= approx * 1.35,
                "d={d}: approximation {approx} far below measured {measured}"
            );
        }
    }

    #[test]
    fn tree_approximation_edge_cases() {
        assert!(epl_tree_approximation(1.0, 100.0).is_none());
        assert!(epl_tree_approximation(5.0, 0.5).is_none());
        let one_hop = epl_tree_approximation(10.0, 10.0).unwrap();
        assert!((one_hop - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_ttl_for_reach_examples() {
        // The Figure 10 walk-through: outdegree 18 covers 18 + 324 =
        // 342 ≥ 300 at TTL 2.
        assert_eq!(min_ttl_for_reach(18.0, 300, 10), Some(2));
        assert_eq!(min_ttl_for_reach(150.0, 150, 10), Some(1));
        assert_eq!(min_ttl_for_reach(2.0, 1_000_000, 5), None);
        assert_eq!(min_ttl_for_reach(1.0, 10, 10), None);
    }

    #[test]
    fn degree_histogram_counts_nodes() {
        let g = ring(6);
        let h = degree_histogram(&g);
        assert_eq!(h.get(2).unwrap().count(), 6);
        assert_eq!(h.len(), 1);
    }
}
