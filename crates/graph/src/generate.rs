//! Topology generators.
//!
//! The paper studies two graph families (Section 4.1, Step 1):
//! strongly connected ([`complete`]) and power-law ([`plod`], the
//! Palmer–Steffan PLOD algorithm, which is what the paper cites for
//! its power-law instances). [`erdos_renyi`], [`random_regular`], and
//! [`ring`] are baselines used by the topology-ablation benches to show
//! how degree *spread* (not just mean degree) drives the load imbalance
//! of Figures 7 and 12.
//!
//! All generators take an explicit [`SpRng`] so instances are
//! reproducible, and all returned graphs are **connected**: the paper's
//! overlay assumes a single search horizon, so generators repair
//! fragmentation by linking secondary components to the giant one
//! (adding at most `#components − 1` edges, a vanishing perturbation of
//! the degree law for the sizes studied).

use sp_stats::SpRng;

use crate::detset::PairSet;
use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::metrics::components;

/// Complete graph `K_n` — the paper's "strongly connected" topology.
///
/// Memory is Θ(n²); the analysis engine special-cases complete
/// topologies analytically, so explicit construction is only needed for
/// tests and small instances.
///
/// # Panics
///
/// Panics if `n > 20_000` (an explicit `K_n` beyond that is ~3 GiB of
/// adjacency and certainly a caller bug).
pub fn complete(n: usize) -> Graph {
    assert!(n <= 20_000, "explicit K_n for n = {n} would be enormous");
    let mut b = GraphBuilder::with_edge_capacity(n, n * n.saturating_sub(1) / 2);
    for a in 0..n {
        for c in (a + 1)..n {
            b.add_edge(a as NodeId, c as NodeId);
        }
    }
    b.build()
}

/// Cycle over `n` nodes (degree 2 everywhere). Worst-case diameter for
/// a connected graph of its degree; used as an EPL stress baseline.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut b = GraphBuilder::with_edge_capacity(n, n);
    for v in 0..n {
        b.add_edge(v as NodeId, ((v + 1) % n) as NodeId);
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` with `p` chosen to hit `mean_degree`,
/// connectivity-repaired.
///
/// Uses geometric edge skipping, so generation is O(m) rather than
/// O(n²).
///
/// # Panics
///
/// Panics if `n == 0` or `mean_degree` is negative / non-finite, or if
/// the requested density saturates `p = 1` on a graph too large to
/// materialize as `K_n` (see [`complete`]).
pub fn erdos_renyi(n: usize, mean_degree: f64, rng: &mut SpRng) -> Graph {
    assert!(n > 0, "need at least one node");
    assert!(
        mean_degree.is_finite() && mean_degree >= 0.0,
        "mean degree must be finite and >= 0"
    );
    let mut b = GraphBuilder::new(n);
    if n > 1 && mean_degree > 0.0 {
        let p = (mean_degree / (n - 1) as f64).min(1.0);
        if p >= 1.0 {
            return complete(n);
        }
        // Iterate potential edges in lexicographic order, skipping
        // ahead geometrically.
        let total_pairs = n as u64 * (n as u64 - 1) / 2;
        let mut idx: f64 = -1.0;
        let log_q = (1.0 - p).ln();
        loop {
            // Skip to the next selected pair.
            let u = rng.unit_f64().max(f64::MIN_POSITIVE);
            idx += 1.0 + (u.ln() / log_q).floor();
            if idx >= total_pairs as f64 {
                break;
            }
            let (a, c) = pair_from_index(idx as u64, n as u64);
            b.add_edge(a as NodeId, c as NodeId);
        }
    }
    connect_components(b.build(), rng)
}

/// Maps a flat index in `[0, n(n-1)/2)` to the corresponding
/// lexicographic node pair `(a, c)` with `a < c`.
fn pair_from_index(idx: u64, n: u64) -> (u64, u64) {
    // Row a starts at offset a*n - a*(a+1)/2 - a ... solve by scanning
    // from an analytic estimate to stay O(1).
    let mut a =
        ((2.0 * n as f64 - 1.0 - ((2.0 * n as f64 - 1.0).powi(2) - 8.0 * idx as f64).sqrt()) / 2.0)
            .floor()
            .max(0.0) as u64;
    // Row a covers indices [start(a), start(a) + (n - a - 1)), with
    // start(a) = Σ_{k<a} (n - 1 - k) = a(n-1) - a(a-1)/2.
    let start = |a: u64| a * (n - 1) - a * a.saturating_sub(1) / 2;
    while a + 1 < n && start(a + 1) <= idx {
        a += 1;
    }
    while a > 0 && start(a) > idx {
        a -= 1;
    }
    let c = a + 1 + (idx - start(a));
    (a, c)
}

/// Random `d`-regular graph via stub pairing with rejection,
/// connectivity-repaired. Degrees may deviate by one for a few nodes if
/// pairing leaves an odd remainder.
///
/// # Panics
///
/// Panics if `d >= n`.
pub fn random_regular(n: usize, d: usize, rng: &mut SpRng) -> Graph {
    assert!(d < n, "degree {d} must be below node count {n}");
    let degrees = vec![d; n];
    let g = wire_stubs(n, &degrees, rng);
    connect_components(g, rng)
}

/// Configuration for the PLOD power-law generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlodConfig {
    /// Target average outdegree (the paper's "suggested outdegree").
    pub mean_degree: f64,
    /// PLOD exponent β: degree budgets are `α·x^{-β}` with `x` uniform.
    /// The resulting degree *distribution* tail exponent is
    /// `τ = 1 + 1/β`; Gnutella crawls report τ ≈ 2.2–2.4, so the
    /// default β = 0.8 gives τ = 2.25.
    pub beta: f64,
    /// Hard cap on any node's degree; `None` applies the default cap of
    /// `3 × mean_degree` (at least 2).
    ///
    /// Real overlays always have such a cap — the paper notes that
    /// "in most operating systems, the default number of open
    /// connections is limited", and Gnutella servents cap neighbor
    /// counts — and without one PLOD's heaviest node swallows a large
    /// constant fraction of a small graph, collapsing path lengths far
    /// below anything the paper measured. The 3× default reproduces the
    /// paper's Figure 9 EPL anchor points (EPL ≈ 2.3–2.5 at average
    /// outdegree 20 / reach 500; ≈ 4.8–5.4 at outdegree 3.1).
    pub max_degree: Option<usize>,
}

impl PlodConfig {
    /// Power-law with the given target mean degree and default shape.
    pub fn with_mean(mean_degree: f64) -> Self {
        PlodConfig {
            mean_degree,
            ..Default::default()
        }
    }

    /// Effective degree cap for a graph with `n` nodes.
    pub fn effective_cap(&self, n: usize) -> usize {
        let default_cap = (3.0 * self.mean_degree).ceil() as usize;
        self.max_degree
            .unwrap_or(default_cap.max(2))
            .min(n.saturating_sub(1))
    }
}

impl Default for PlodConfig {
    fn default() -> Self {
        PlodConfig {
            mean_degree: 3.1, // the paper's measured Gnutella average
            beta: 0.8,
            max_degree: None,
        }
    }
}

/// Power-Law Out-Degree (PLOD) generator of Palmer & Steffan
/// (GLOBECOM 2000), as cited by the paper for its power-law instances.
///
/// 1. Each node `i` draws a degree budget `d_i = round(α·x_i^{-β})`
///    with `x_i` uniform on `[1, n]`; `α` is solved by bisection so the
///    sampled mean hits `cfg.mean_degree`.
/// 2. Budgets are wired by random stub pairing (self-loops and
///    duplicate edges rejected, leftovers dropped).
/// 3. Components are linked to the giant component so the overlay is
///    connected.
///
/// The achieved mean degree is within a few percent of the target for
/// `n ≳ 100`; callers can verify with [`Graph::mean_degree`].
///
/// # Panics
///
/// Panics if `n == 0`, `mean_degree <= 0`, `mean_degree >= n`, or
/// `beta <= 0`.
pub fn plod(n: usize, cfg: PlodConfig, rng: &mut SpRng) -> Graph {
    assert!(n > 0, "need at least one node");
    assert!(
        cfg.mean_degree > 0.0 && cfg.mean_degree < n as f64,
        "mean degree {} must be in (0, n)",
        cfg.mean_degree
    );
    assert!(cfg.beta > 0.0, "beta must be positive");
    if n == 1 {
        return Graph::empty(1);
    }
    assert!(
        cfg.mean_degree <= cfg.effective_cap(n) as f64 + 1e-9,
        "mean degree {} is unreachable under the degree cap {} — raise max_degree",
        cfg.mean_degree,
        cfg.effective_cap(n)
    );

    // Draw the power-law shape once, then scale it to the target mean.
    let shape: Vec<f64> = (0..n)
        .map(|_| {
            let x = 1.0 + rng.unit_f64() * (n as f64 - 1.0);
            x.powf(-cfg.beta)
        })
        .collect();

    let max_deg = cfg.effective_cap(n).max(1) as f64;
    let mean_for = |alpha: f64| -> f64 {
        shape
            .iter()
            .map(|&s| (alpha * s).round().clamp(1.0, max_deg))
            .sum::<f64>()
            / n as f64
    };

    // Bisection on α. mean_for is monotone nondecreasing in α.
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while mean_for(hi) < cfg.mean_degree && hi < 1e12 {
        hi *= 2.0;
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if mean_for(mid) < cfg.mean_degree {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let alpha = 0.5 * (lo + hi);
    let degrees: Vec<usize> = shape
        .iter()
        .map(|&s| (alpha * s).round().clamp(1.0, max_deg) as usize)
        .collect();

    let g = wire_stubs(n, &degrees, rng);
    connect_components(g, rng)
}

/// Wires a degree sequence by random stub matching. Self-loops and
/// duplicate pairs are retried a bounded number of times, then dropped;
/// the realized degree sequence is therefore a lower bound on the
/// budgets, tight in practice.
fn wire_stubs(n: usize, degrees: &[usize], rng: &mut SpRng) -> Graph {
    debug_assert_eq!(degrees.len(), n);
    let mut stubs: Vec<NodeId> = Vec::with_capacity(degrees.iter().sum());
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v as NodeId, d));
    }
    rng.shuffle(&mut stubs);

    // `PairSet` rather than `HashSet<(NodeId, NodeId)>`: membership
    // only, deterministic by construction (sp-lint D1), and its fixed
    // mixer beats SipHash on this hot path.
    let mut seen = PairSet::with_capacity(stubs.len() / 2);
    let mut b = GraphBuilder::with_edge_capacity(n, stubs.len() / 2);
    let mut leftovers: Vec<NodeId> = Vec::new();

    let take_pair = |a: NodeId, c: NodeId, b: &mut GraphBuilder, seen: &mut PairSet| -> bool {
        if a == c {
            return false;
        }
        if seen.insert(a, c) {
            b.add_edge(a, c);
            true
        } else {
            false
        }
    };

    let mut it = stubs.chunks_exact(2);
    for pair in &mut it {
        if !take_pair(pair[0], pair[1], &mut b, &mut seen) {
            leftovers.push(pair[0]);
            leftovers.push(pair[1]);
        }
    }
    leftovers.extend(it.remainder());

    // A few reshuffle passes over the rejected stubs recover most of
    // the residual degree budget.
    for _ in 0..4 {
        if leftovers.len() < 2 {
            break;
        }
        rng.shuffle(&mut leftovers);
        let mut still = Vec::new();
        let mut it = leftovers.chunks_exact(2);
        for pair in &mut it {
            if !take_pair(pair[0], pair[1], &mut b, &mut seen) {
                still.push(pair[0]);
                still.push(pair[1]);
            }
        }
        still.extend(it.remainder());
        leftovers = still;
    }
    b.build()
}

/// Links every secondary component to the giant component with one
/// random edge each, returning a connected graph.
fn connect_components(g: Graph, rng: &mut SpRng) -> Graph {
    let comps = components(&g);
    if comps.len() <= 1 {
        return g;
    }
    let giant = comps
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| c.len())
        .map(|(i, _)| i)
        .expect("at least one component");
    let mut b = GraphBuilder::with_edge_capacity(g.num_nodes(), g.num_edges() + comps.len());
    for (a, c) in g.edges() {
        b.add_edge(a, c);
    }
    for (i, comp) in comps.iter().enumerate() {
        if i == giant {
            continue;
        }
        let from = comp[rng.index(comp.len())];
        let to = comps[giant][rng.index(comps[giant].len())];
        b.add_edge(from, to);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{components, degree_stats};

    #[test]
    fn complete_graph_structure() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 5);
        }
        g.check_invariants().unwrap();
    }

    #[test]
    fn complete_trivial_sizes() {
        assert_eq!(complete(0).num_nodes(), 0);
        assert_eq!(complete(1).num_edges(), 0);
        assert_eq!(complete(2).num_edges(), 1);
    }

    #[test]
    fn ring_structure() {
        let g = ring(5);
        assert_eq!(g.num_edges(), 5);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(components(&g).len(), 1);
    }

    #[test]
    fn erdos_renyi_hits_mean_degree() {
        let mut rng = SpRng::seed_from_u64(42);
        let g = erdos_renyi(2000, 8.0, &mut rng);
        let mean = g.mean_degree();
        assert!(
            (mean - 8.0).abs() < 0.5,
            "ER mean degree {mean} far from target 8"
        );
        assert_eq!(components(&g).len(), 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn erdos_renyi_zero_degree_yields_star_repair_only() {
        let mut rng = SpRng::seed_from_u64(1);
        // With p = 0, the only edges come from connectivity repair.
        let g = erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(components(&g).len(), 1);
        assert_eq!(g.num_edges(), 9);
    }

    #[test]
    fn pair_from_index_roundtrip() {
        let n = 7u64;
        let mut idx = 0u64;
        for a in 0..n {
            for c in (a + 1)..n {
                assert_eq!(pair_from_index(idx, n), (a, c), "idx {idx}");
                idx += 1;
            }
        }
    }

    #[test]
    fn random_regular_degrees() {
        let mut rng = SpRng::seed_from_u64(3);
        let g = random_regular(500, 6, &mut rng);
        let stats = degree_stats(&g);
        assert!((stats.mean() - 6.0).abs() < 0.2, "mean {}", stats.mean());
        // Regular graph: tiny degree spread (stub rejection may nick a
        // few nodes by one).
        assert!(stats.std_dev() < 0.5, "std {}", stats.std_dev());
        assert_eq!(components(&g).len(), 1);
    }

    #[test]
    fn plod_hits_target_mean_degree() {
        let mut rng = SpRng::seed_from_u64(7);
        for target in [3.1f64, 10.0, 20.0] {
            let g = plod(2000, PlodConfig::with_mean(target), &mut rng);
            let mean = g.mean_degree();
            let rel = (mean - target).abs() / target;
            assert!(rel < 0.10, "target {target}: mean {mean} off by {rel}");
            assert_eq!(components(&g).len(), 1);
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn plod_degrees_are_heavy_tailed() {
        let mut rng = SpRng::seed_from_u64(11);
        let g = plod(3000, PlodConfig::with_mean(3.1), &mut rng);
        let stats = degree_stats(&g);
        // A power law with mean ~3 has a spread-out tail up to the
        // connection cap (3× mean by default), unlike a regular graph.
        assert!(
            stats.max() >= 2.5 * stats.mean(),
            "max {} not heavy-tailed vs mean {}",
            stats.max(),
            stats.mean()
        );
        // And most nodes sit near the minimum, so the spread is wide.
        assert!(stats.std_dev() > 0.5 * stats.mean());
    }

    #[test]
    fn plod_single_node() {
        let mut rng = SpRng::seed_from_u64(0);
        let g = plod(1, PlodConfig::with_mean(0.5), &mut rng);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn plod_deterministic_for_seed() {
        let cfg = PlodConfig::default();
        let g1 = plod(500, cfg, &mut SpRng::seed_from_u64(99));
        let g2 = plod(500, cfg, &mut SpRng::seed_from_u64(99));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "mean degree")]
    fn plod_rejects_unreachable_mean() {
        plod(5, PlodConfig::with_mean(10.0), &mut SpRng::seed_from_u64(0));
    }
}
