//! [`PairSet`]: a deterministic membership set for undirected edge
//! pairs, replacing `std::collections::HashSet<(NodeId, NodeId)>` in
//! the stub-matching wirer.
//!
//! `HashSet`'s SipHash keys are randomized per process, which makes
//! its *iteration order* non-reproducible — the exact hazard class
//! sp-lint rule D1 bans from deterministic crates. Membership-only
//! use never observes iteration order, but a fixed-function table
//! removes the hazard by construction (no order to observe, no
//! per-process state) and is faster: open addressing with a
//! SplitMix64-style mixer and linear probing, O(1) amortized insert,
//! no hasher state, no tombstones (the wirer only ever inserts).

use crate::graph::NodeId;

/// Sentinel for an empty slot. The packed key for a valid edge
/// `(a, b)` with `a < b` can never be `u64::MAX`, because that would
/// require `a == b == u32::MAX` and self-loops are rejected before
/// insertion.
const EMPTY: u64 = u64::MAX;

/// A deterministic open-addressed set of unordered `NodeId` pairs.
#[derive(Debug, Clone)]
pub struct PairSet {
    slots: Vec<u64>,
    /// Power-of-two capacity mask.
    mask: usize,
    len: usize,
}

/// SplitMix64 finalizer: a fixed, platform-independent bijective
/// mixer with full avalanche — every input bit affects every output
/// bit, so sequential node ids spread evenly over the table.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[inline]
fn pack(a: NodeId, b: NodeId) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    ((hi as u64) << 32) | lo as u64
}

impl PairSet {
    /// Creates a set sized for `expected` pairs (load factor ≤ 0.5,
    /// so probe chains stay short even at full budget).
    pub fn with_capacity(expected: usize) -> PairSet {
        let slots = (expected.max(4) * 2).next_power_of_two();
        PairSet {
            slots: vec![EMPTY; slots],
            mask: slots - 1,
            len: 0,
        }
    }

    /// Number of pairs stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts the unordered pair `(a, b)`; returns `true` when the
    /// pair was not already present (same contract as
    /// `HashSet::insert`). `a == b` must be rejected by the caller.
    pub fn insert(&mut self, a: NodeId, b: NodeId) -> bool {
        debug_assert_ne!(a, b, "self-loops are filtered before the seen-set");
        if self.len * 2 >= self.slots.len() {
            self.grow();
        }
        let key = pack(a, b);
        let mut i = (mix(key) as usize) & self.mask;
        loop {
            let slot = self.slots[i];
            if slot == EMPTY {
                self.slots[i] = key;
                self.len += 1;
                return true;
            }
            if slot == key {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Whether the unordered pair `(a, b)` is present.
    pub fn contains(&self, a: NodeId, b: NodeId) -> bool {
        let key = pack(a, b);
        let mut i = (mix(key) as usize) & self.mask;
        loop {
            let slot = self.slots[i];
            if slot == EMPTY {
                return false;
            }
            if slot == key {
                return true;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; (self.mask + 1) * 2]);
        self.mask = self.slots.len() - 1;
        for key in old {
            if key == EMPTY {
                continue;
            }
            let mut i = (mix(key) as usize) & self.mask;
            while self.slots[i] != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = key;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_and_symmetry() {
        let mut s = PairSet::with_capacity(4);
        assert!(s.insert(1, 2));
        assert!(!s.insert(2, 1), "unordered: (2,1) is (1,2)");
        assert!(s.contains(1, 2));
        assert!(s.contains(2, 1));
        assert!(!s.contains(1, 3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut s = PairSet::with_capacity(2);
        for i in 0..1000u32 {
            assert!(s.insert(i, i + 1_000_000));
        }
        assert_eq!(s.len(), 1000);
        for i in 0..1000u32 {
            assert!(s.contains(i + 1_000_000, i));
            assert!(!s.insert(i, i + 1_000_000));
        }
    }

    #[test]
    fn matches_reference_set_on_dense_pairs() {
        use std::collections::BTreeSet;
        let mut fast = PairSet::with_capacity(8);
        let mut reference: BTreeSet<(u32, u32)> = BTreeSet::new();
        // Deterministic pseudo-random pair stream (LCG).
        let mut x = 12345u64;
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (x >> 33) as u32 % 200;
            let b = (x >> 11) as u32 % 200;
            if a == b {
                continue;
            }
            let key = if a < b { (a, b) } else { (b, a) };
            assert_eq!(fast.insert(a, b), reference.insert(key), "pair {a},{b}");
        }
        assert_eq!(fast.len(), reference.len());
    }

    #[test]
    fn extreme_node_ids_are_not_sentinel() {
        let mut s = PairSet::with_capacity(2);
        assert!(s.insert(u32::MAX - 1, u32::MAX));
        assert!(s.contains(u32::MAX, u32::MAX - 1));
        assert!(s.insert(0, u32::MAX));
        assert_eq!(s.len(), 2);
    }
}
