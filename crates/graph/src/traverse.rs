//! TTL-bounded BFS flooding.
//!
//! The paper's baseline search (Section 3.1) is Gnutella flooding: the
//! source sends the query to all neighbors; every node that receives a
//! *new* query decrements the TTL and, if it is still positive,
//! forwards the query to all neighbors except the one it arrived from.
//! Copies that arrive at a node which has already seen the query are
//! **dropped — but they still consumed bandwidth and processing on both
//! endpoints**. Counting those redundant transmissions is what makes
//! rule #4 ("minimize TTL") and the Appendix E caveat ("outdegree can
//! be too large") quantitative, so [`flood`] reports them exactly.
//!
//! Responses travel the reverse path of the query, i.e. up the BFS
//! predecessor tree (Section 4.1, Step 2); [`FloodResult`] exposes the
//! tree and a deepest-first accumulation helper so response traffic can
//! be charged to every intermediate hop in O(n).

use crate::graph::{Graph, NodeId};

/// Depth marker for unreached nodes.
pub const UNREACHED: u16 = u16::MAX;

/// Result of flooding a query from one source with a TTL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FloodResult {
    /// The query source.
    pub source: NodeId,
    /// The TTL the flood was run with.
    pub ttl: u16,
    /// BFS visit order; `order[0] == source`. Contains exactly the
    /// reached nodes, in nondecreasing depth.
    pub order: Vec<NodeId>,
    /// `depth[v]` is the hop count of `v` from the source
    /// ([`UNREACHED`] if not reached within the TTL).
    pub depth: Vec<u16>,
    /// BFS predecessor: the neighbor the first copy arrived from.
    /// `parent[source] == source`; unreached nodes also map to
    /// themselves.
    pub parent: Vec<NodeId>,
}

impl FloodResult {
    /// Number of nodes that processed the query — the paper's *reach*
    /// (includes the source, which processes its own query over its
    /// index).
    pub fn reach(&self) -> usize {
        self.order.len()
    }

    /// Whether `v` received the query.
    pub fn is_reached(&self, v: NodeId) -> bool {
        self.depth[v as usize] != UNREACHED
    }

    /// Whether `v` forwarded the query: it was reached with remaining
    /// TTL (`depth < ttl`).
    pub fn forwards(&self, v: NodeId) -> bool {
        self.depth[v as usize] < self.ttl
    }

    /// Mean depth of reached nodes other than the source.
    ///
    /// When every reached super-peer returns one response, this is the
    /// expected path length (EPL) of responses. Returns 0.0 when the
    /// source reached nobody.
    pub fn mean_depth(&self) -> f64 {
        if self.order.len() <= 1 {
            return 0.0;
        }
        let sum: u64 = self.order[1..]
            .iter()
            .map(|&v| self.depth[v as usize] as u64)
            .sum();
        sum as f64 / (self.order.len() - 1) as f64
    }

    /// Accumulates per-node values up the predecessor tree, deepest
    /// first: after the call, `values[v]` holds the sum of the initial
    /// values over `v`'s whole BFS subtree (including `v` itself).
    ///
    /// This is how response traffic is charged to intermediaries in
    /// O(n): seed `values[T]` with the response bytes node `T`
    /// originates; afterwards the bytes *forwarded through* `v` are
    /// `values[v] - own(v)` and the bytes arriving at the source are
    /// `values[source] - own(source)`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the graph size the flood
    /// was computed on.
    pub fn accumulate_up(&self, values: &mut [f64]) {
        assert_eq!(
            values.len(),
            self.depth.len(),
            "values slice must cover every node"
        );
        for &v in self.order.iter().rev() {
            if v != self.source {
                values[self.parent[v as usize] as usize] += values[v as usize];
            }
        }
    }
}

/// Floods a query from `source` with the given `ttl` (Gnutella
/// semantics: `ttl` is the maximum hop count, so `ttl = 1` reaches the
/// direct neighbors).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn flood(g: &Graph, source: NodeId, ttl: u16) -> FloodResult {
    let n = g.num_nodes();
    assert!((source as usize) < n, "source {source} out of range");
    let mut depth = vec![UNREACHED; n];
    let mut parent: Vec<NodeId> = (0..n as NodeId).collect();
    let mut order = Vec::with_capacity(64);

    depth[source as usize] = 0;
    order.push(source);
    let mut head = 0usize;
    while head < order.len() {
        let v = order[head];
        head += 1;
        let d = depth[v as usize];
        if d >= ttl || d + 1 == UNREACHED {
            // Node received the query with TTL exhausted; it processes
            // but does not forward. (The second guard keeps depths from
            // colliding with the UNREACHED sentinel on pathological
            // graphs with eccentricity >= u16::MAX.)
            continue;
        }
        for &u in g.neighbors(v) {
            if depth[u as usize] == UNREACHED {
                depth[u as usize] = d + 1;
                parent[u as usize] = v;
                order.push(u);
            }
        }
    }
    FloodResult {
        source,
        ttl,
        order,
        depth,
        parent,
    }
}

/// Per-node query-message transmission counts for one flood, including
/// redundant copies that arrive over cycle edges and are dropped.
///
/// Forwarding rules (Section 3.1): the source transmits to all its
/// neighbors; any other forwarding node transmits to all neighbors
/// *except* its BFS parent (the connection the first copy arrived on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageCounts {
    /// Query messages sent by each node.
    pub sent: Vec<u32>,
    /// Query messages received by each node (first copies + dropped
    /// redundant copies).
    pub recv: Vec<u32>,
}

impl MessageCounts {
    /// Total transmissions (= total receptions).
    pub fn total(&self) -> u64 {
        self.sent.iter().map(|&s| s as u64).sum()
    }

    /// Redundant receptions at `v`: copies beyond the first. The source
    /// never "receives" a first copy, so all its receptions are
    /// redundant.
    pub fn redundant_recv(&self, v: NodeId, flood: &FloodResult) -> u32 {
        let r = self.recv[v as usize];
        if v == flood.source || !flood.is_reached(v) {
            r
        } else {
            r.saturating_sub(1)
        }
    }
}

/// Reusable, allocation-free flood state: one BFS + message-count pass
/// writes into epoch-stamped arrays instead of fresh vectors, so a
/// sweep that floods from every source cluster allocates **nothing**
/// per source after the first call.
///
/// Compared to [`flood`] + [`message_counts`] (which this type matches
/// exactly — see the equivalence tests), a scratch flood also exposes
/// the *touched-node list* ([`FloodScratch::order`]): per-node outputs
/// (`depth`, `sent`, `recv`, `parent`) are only valid at indices that
/// appear in `order`, which is precisely the set with any nonzero
/// count. Callers iterate `order` instead of `0..n`, turning O(n)
/// per-source post-processing into O(reach).
///
/// # Examples
///
/// ```
/// use sp_graph::{GraphBuilder, FloodScratch};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.build();
/// let mut scratch = FloodScratch::new();
/// scratch.flood(&g, 0, 2);
/// assert_eq!(scratch.order(), &[0, 1, 2]);
/// assert_eq!(scratch.depth(2), 2);
/// scratch.flood(&g, 2, 1); // reuses the same buffers
/// assert_eq!(scratch.reach(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FloodScratch {
    /// Current epoch; a node's per-node slots are valid iff its stamp
    /// matches.
    epoch: u32,
    stamp: Vec<u32>,
    depth: Vec<u16>,
    parent: Vec<NodeId>,
    sent: Vec<u32>,
    recv: Vec<u32>,
    order: Vec<NodeId>,
    source: NodeId,
    ttl: u16,
}

impl FloodScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new flood epoch over `n` nodes, resizing buffers if the
    /// graph grew and invalidating all per-node slots in O(1).
    fn begin(&mut self, n: usize, source: NodeId, ttl: u16) {
        assert!((source as usize) < n, "source {source} out of range");
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.depth.resize(n, UNREACHED);
            self.parent.resize(n, 0);
            self.sent.resize(n, 0);
            self.recv.resize(n, 0);
            // Reach is at most n, so reserving here keeps every later
            // flood on this graph allocation-free.
            self.order.clear();
            self.order.reserve(n);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Epoch wrapped: hard-reset stamps once every 2^32
                // floods.
                self.stamp.fill(0);
                1
            }
        };
        self.order.clear();
        self.source = source;
        self.ttl = ttl;
    }

    /// First touch of `v` this epoch: zero its slots.
    #[inline]
    fn touch(&mut self, v: NodeId) {
        let vi = v as usize;
        if self.stamp[vi] != self.epoch {
            self.stamp[vi] = self.epoch;
            self.depth[vi] = UNREACHED;
            self.parent[vi] = v;
            self.sent[vi] = 0;
            self.recv[vi] = 0;
        }
    }

    /// Floods a query from `source` with `ttl` over `g`, computing BFS
    /// depths, predecessors, and per-node query-transmission counts
    /// (including redundant copies over cycle edges) in a single pass.
    ///
    /// Equivalent to [`flood`] followed by [`message_counts`], without
    /// the three O(n) allocations per source.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn flood(&mut self, g: &Graph, source: NodeId, ttl: u16) {
        self.begin(g.num_nodes(), source, ttl);
        self.touch(source);
        self.depth[source as usize] = 0;
        self.order.push(source);
        let mut head = 0usize;
        while head < self.order.len() {
            let v = self.order[head];
            head += 1;
            let vi = v as usize;
            let d = self.depth[vi];
            if d >= ttl || d + 1 == UNREACHED {
                // TTL exhausted: the node processes but does not
                // forward (second guard: keep depths clear of the
                // UNREACHED sentinel on pathological graphs).
                continue;
            }
            // Forwarding rules (Section 3.1): the source transmits to
            // every neighbor, everyone else to every neighbor except
            // its BFS parent.
            let deg = g.degree(v) as u32;
            self.sent[vi] = if v == source {
                deg
            } else {
                deg.saturating_sub(1)
            };
            let parent = self.parent[vi];
            for &u in g.neighbors(v) {
                if v != source && u == parent {
                    continue;
                }
                self.touch(u);
                self.recv[u as usize] += 1;
                if self.depth[u as usize] == UNREACHED {
                    self.depth[u as usize] = d + 1;
                    self.parent[u as usize] = v;
                    self.order.push(u);
                }
            }
        }
    }

    /// Fills the scratch with the closed-form flood over the complete
    /// graph `K_n` (used by symbolic strongly-connected topologies):
    /// every non-source node sits at depth 1, and with `ttl >= 2` each
    /// depth-1 node echoes `n − 2` redundant copies.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn flood_complete(&mut self, n: usize, source: NodeId, ttl: u16) {
        self.begin(n, source, ttl);
        self.touch(source);
        self.depth[source as usize] = 0;
        self.order.push(source);
        if ttl >= 1 && n > 1 {
            self.sent[source as usize] = (n - 1) as u32;
            let echo = if ttl >= 2 { (n - 2) as u32 } else { 0 };
            for v in 0..n as NodeId {
                if v == source {
                    continue;
                }
                self.touch(v);
                self.depth[v as usize] = 1;
                self.parent[v as usize] = source;
                self.recv[v as usize] = 1 + echo;
                self.sent[v as usize] = echo;
                self.order.push(v);
            }
        }
    }

    /// The query source of the current epoch.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The TTL of the current epoch.
    pub fn ttl(&self) -> u16 {
        self.ttl
    }

    /// BFS visit order: exactly the reached nodes, in nondecreasing
    /// depth, starting with the source. This is also the complete set
    /// of nodes with valid (nonzero-able) `depth`/`sent`/`recv` slots.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of reached nodes (the paper's *reach*, incl. the source).
    pub fn reach(&self) -> usize {
        self.order.len()
    }

    /// Hop count of `v`. Only meaningful for nodes in [`Self::order`].
    #[inline]
    pub fn depth(&self, v: NodeId) -> u16 {
        self.depth[v as usize]
    }

    /// BFS predecessor of `v`. Only meaningful for reached nodes.
    #[inline]
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.parent[v as usize]
    }

    /// Query messages sent by `v`. Only meaningful for reached nodes.
    #[inline]
    pub fn sent(&self, v: NodeId) -> u32 {
        self.sent[v as usize]
    }

    /// Query messages received by `v` (first + redundant copies). Only
    /// meaningful for reached nodes.
    #[inline]
    pub fn recv(&self, v: NodeId) -> u32 {
        self.recv[v as usize]
    }

    /// Mean depth of reached nodes other than the source (0.0 if the
    /// source reached nobody) — see [`FloodResult::mean_depth`].
    pub fn mean_depth(&self) -> f64 {
        if self.order.len() <= 1 {
            return 0.0;
        }
        let sum: u64 = self.order[1..]
            .iter()
            .map(|&v| self.depth[v as usize] as u64)
            .sum();
        sum as f64 / (self.order.len() - 1) as f64
    }

    /// Accumulates per-node values up the predecessor tree, deepest
    /// first — see [`FloodResult::accumulate_up`]. Only indices in
    /// [`Self::order`] are read or written, so `values` may carry stale
    /// entries for unreached nodes.
    ///
    /// # Panics
    ///
    /// Panics if `values` is shorter than the flooded graph.
    pub fn accumulate_up(&self, values: &mut [f64]) {
        for &v in self.order.iter().rev() {
            if v != self.source {
                values[self.parent[v as usize] as usize] += values[v as usize];
            }
        }
    }
}

/// Computes [`MessageCounts`] for a flood on `g`.
pub fn message_counts(g: &Graph, flood: &FloodResult) -> MessageCounts {
    let n = g.num_nodes();
    let mut sent = vec![0u32; n];
    let mut recv = vec![0u32; n];
    for &v in &flood.order {
        if !flood.forwards(v) {
            continue;
        }
        let vi = v as usize;
        let deg = g.degree(v) as u32;
        if v == flood.source {
            sent[vi] = deg;
            for &u in g.neighbors(v) {
                recv[u as usize] += 1;
            }
        } else {
            // Everything except the parent edge.
            sent[vi] = deg.saturating_sub(1);
            let p = flood.parent[vi];
            for &u in g.neighbors(v) {
                if u != p {
                    recv[u as usize] += 1;
                }
            }
        }
    }
    MessageCounts { sent, recv }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// 0 - 1 - 2 - 3 path.
    fn path4() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.build()
    }

    /// Triangle 0-1-2 plus pendant 3 on node 2.
    fn triangle_pendant() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn flood_depths_on_path() {
        let g = path4();
        let f = flood(&g, 0, 2);
        assert_eq!(f.depth, vec![0, 1, 2, UNREACHED]);
        assert_eq!(f.reach(), 3);
        assert!(!f.is_reached(3));
        assert_eq!(f.parent[2], 1);
        assert_eq!(f.parent[0], 0);
    }

    #[test]
    fn flood_ttl_zero_reaches_only_source() {
        let g = path4();
        let f = flood(&g, 1, 0);
        assert_eq!(f.reach(), 1);
        assert_eq!(f.order, vec![1]);
    }

    #[test]
    fn flood_full_reach_on_connected_graph() {
        let g = triangle_pendant();
        let f = flood(&g, 0, 10);
        assert_eq!(f.reach(), 4);
        assert_eq!(f.depth[3], 2);
    }

    #[test]
    fn mean_depth_on_path() {
        let g = path4();
        let f = flood(&g, 0, 3);
        // depths 1, 2, 3 → mean 2.
        assert!((f.mean_depth() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_depth_isolated_source_is_zero() {
        let g = Graph::empty(3);
        let f = flood(&g, 0, 5);
        assert_eq!(f.mean_depth(), 0.0);
    }

    #[test]
    fn accumulate_up_sums_subtrees() {
        let g = path4();
        let f = flood(&g, 0, 3);
        let mut vals = vec![1.0; 4];
        f.accumulate_up(&mut vals);
        // Node 3's subtree = {3}; node 2's = {2,3}; node 1's = {1,2,3};
        // node 0's = all four.
        assert_eq!(vals, vec![4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn message_counts_on_triangle() {
        // Triangle 0-1-2, flood from 0 with ttl 2.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        let g = b.build();
        let f = flood(&g, 0, 2);
        let mc = message_counts(&g, &f);
        // Source sends to 1 and 2. Each of 1, 2 (depth 1 < ttl 2)
        // forwards to its non-parent neighbor — the cycle edge — so
        // nodes 1 and 2 each send 1 redundant copy to each other.
        assert_eq!(mc.sent[0], 2);
        assert_eq!(mc.sent[1], 1);
        assert_eq!(mc.sent[2], 1);
        assert_eq!(mc.recv[0], 0);
        assert_eq!(mc.recv[1], 2); // first copy + redundant from 2
        assert_eq!(mc.recv[2], 2);
        assert_eq!(mc.total(), 4);
        assert_eq!(mc.redundant_recv(1, &f), 1);
        assert_eq!(mc.redundant_recv(0, &f), 0);
    }

    #[test]
    fn message_counts_ttl_one_no_redundancy_on_tree() {
        let g = path4();
        let f = flood(&g, 1, 1);
        let mc = message_counts(&g, &f);
        assert_eq!(mc.sent[1], 2);
        assert_eq!(mc.recv[0], 1);
        assert_eq!(mc.recv[2], 1);
        assert_eq!(mc.total(), 2);
        assert_eq!(mc.redundant_recv(0, &f), 0);
    }

    #[test]
    fn leaf_at_ttl_does_not_forward() {
        let g = path4();
        let f = flood(&g, 0, 2);
        // Node 2 is at depth 2 == ttl: processes but must not forward.
        assert!(!f.forwards(2));
        let mc = message_counts(&g, &f);
        assert_eq!(mc.sent[2], 0);
        assert_eq!(mc.recv[3], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flood_bad_source_panics() {
        flood(&Graph::empty(1), 5, 1);
    }

    /// Deterministic pseudo-random simple graph for equivalence tests.
    fn scrambled_graph(n: usize, edges: usize, seed: u64) -> Graph {
        let mut b = GraphBuilder::new(n);
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..edges {
            let a = (next() % n as u64) as NodeId;
            let c = (next() % n as u64) as NodeId;
            b.add_edge(a, c);
        }
        b.build()
    }

    #[test]
    fn scratch_matches_allocating_flood_across_sources_and_ttls() {
        let mut scratch = FloodScratch::new();
        for seed in [3u64, 17, 99] {
            let g = scrambled_graph(60, 140, seed);
            for ttl in [0u16, 1, 2, 4, 9] {
                for src in 0..g.num_nodes() as NodeId {
                    let f = flood(&g, src, ttl);
                    let mc = message_counts(&g, &f);
                    // The scratch is deliberately reused across every
                    // (graph, source, ttl) combination.
                    scratch.flood(&g, src, ttl);
                    assert_eq!(scratch.order(), &f.order[..], "order src={src} ttl={ttl}");
                    assert_eq!(scratch.reach(), f.reach());
                    assert_eq!(scratch.mean_depth(), f.mean_depth());
                    for &v in &f.order {
                        assert_eq!(scratch.depth(v), f.depth[v as usize]);
                        assert_eq!(scratch.parent(v), f.parent[v as usize]);
                        assert_eq!(scratch.sent(v), mc.sent[v as usize]);
                        assert_eq!(scratch.recv(v), mc.recv[v as usize]);
                    }
                    // Conversely every nonzero count is on a reached
                    // node, so iterating `order` loses nothing.
                    for v in 0..g.num_nodes() as NodeId {
                        if !f.is_reached(v) {
                            assert_eq!(mc.sent[v as usize], 0);
                            assert_eq!(mc.recv[v as usize], 0);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_accumulate_matches_flood_result() {
        let g = scrambled_graph(40, 90, 7);
        let mut scratch = FloodScratch::new();
        for src in [0u32, 5, 21] {
            let f = flood(&g, src, 3);
            scratch.flood(&g, src, 3);
            let mut a = vec![1.0; g.num_nodes()];
            let mut b = a.clone();
            f.accumulate_up(&mut a);
            scratch.accumulate_up(&mut b);
            for &v in &f.order {
                assert_eq!(a[v as usize], b[v as usize]);
            }
        }
    }

    #[test]
    fn scratch_grows_with_larger_graphs() {
        let mut scratch = FloodScratch::new();
        scratch.flood(&path4(), 0, 3);
        assert_eq!(scratch.reach(), 4);
        let big = scrambled_graph(100, 300, 11);
        scratch.flood(&big, 42, 5);
        assert!(scratch.reach() > 4);
        // Shrinking back down must not leak state from the big epoch.
        scratch.flood(&path4(), 3, 1);
        assert_eq!(scratch.order(), &[3, 2]);
        assert_eq!(scratch.sent(3), 1);
        assert_eq!(scratch.recv(2), 1);
    }

    #[test]
    fn scratch_complete_matches_triangle() {
        // K_3 via the closed form vs the explicit triangle.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        let g = b.build();
        let mut explicit = FloodScratch::new();
        let mut closed = FloodScratch::new();
        for ttl in 0u16..4 {
            explicit.flood(&g, 1, ttl);
            closed.flood_complete(3, 1, ttl);
            assert_eq!(explicit.reach(), closed.reach(), "ttl {ttl}");
            for &v in explicit.order() {
                assert_eq!(explicit.depth(v), closed.depth(v));
                assert_eq!(explicit.sent(v), closed.sent(v));
                assert_eq!(explicit.recv(v), closed.recv(v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scratch_bad_source_panics() {
        FloodScratch::new().flood(&Graph::empty(2), 9, 1);
    }
}
