//! Compact undirected simple graph in CSR form.
//!
//! The analysis engine floods queries from every node of every trial
//! instance, so adjacency iteration is the hottest loop in the
//! repository. CSR keeps each node's neighbor list contiguous, and
//! `u32` node ids halve the memory traffic relative to `usize` — the
//! paper's largest topology (20 000 clusters) fits comfortably.

use serde::{Deserialize, Serialize};

/// Node identifier. `u32` bounds graphs at ~4 billion nodes, far above
/// the paper's 10 000–20 000-peer networks.
pub type NodeId = u32;

/// Incremental builder for [`Graph`].
///
/// Collects undirected edges, silently deduplicating parallels and
/// rejecting self-loops (the overlay protocol never opens a connection
/// to itself), then freezes into CSR.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates capacity for `m` edges.
    pub fn with_edge_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{a, b}`.
    ///
    /// Self-loops are ignored; duplicate edges are deduplicated at
    /// [`build`](Self::build) time. Returns `true` if the edge was
    /// recorded (i.e., not a self-loop).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        assert!(
            (a as usize) < self.n && (b as usize) < self.n,
            "edge ({a},{b}) out of range for {} nodes",
            self.n
        );
        if a == b {
            return false;
        }
        // Store canonically so deduplication is a sort+dedup.
        self.edges.push(if a < b { (a, b) } else { (b, a) });
        true
    }

    /// Whether the (canonicalized) edge was already added.
    ///
    /// Linear scan; intended for tests and small graphs. Generators
    /// that need fast membership keep their own hash set.
    pub fn contains_edge(&self, a: NodeId, b: NodeId) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        self.edges.contains(&key)
    }

    /// Freezes into an immutable CSR graph.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();

        let mut degree = vec![0u32; self.n];
        for &(a, b) in &self.edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..self.n].to_vec();
        let mut neighbors = vec![0 as NodeId; acc as usize];
        for &(a, b) in &self.edges {
            neighbors[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            neighbors[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        // Each node's slice is sorted ascending because edges were
        // sorted, but the (b, a) insertions interleave — sort per node
        // to enable binary-search membership tests.
        for v in 0..self.n {
            let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
            neighbors[s..e].sort_unstable();
        }
        Graph { offsets, neighbors }
    }
}

/// Immutable undirected simple graph in CSR form.
///
/// # Examples
///
/// ```
/// use sp_graph::{Graph, GraphBuilder};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.build();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for node `v`.
    offsets: Vec<u32>,
    /// Concatenated, per-node-sorted adjacency lists.
    neighbors: Vec<NodeId>,
}

impl Graph {
    /// A graph with `n` nodes and no edges.
    pub fn empty(n: usize) -> Self {
        GraphBuilder::new(n).build()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree (outdegree, in the paper's terminology) of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Sorted neighbor slice of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        &self.neighbors[s..e]
    }

    /// Whether `{a, b}` is an edge (binary search, O(log deg)).
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Mean degree `2m / n` (the paper's "average outdegree").
    pub fn mean_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.num_nodes() as f64
        }
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes() as NodeId
    }

    /// Iterator over each undirected edge once, as `(low, high)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |v| {
            self.neighbors(v)
                .iter()
                .copied()
                .filter(move |&u| v < u)
                .map(move |u| (v, u))
        })
    }

    /// Validates structural invariants (symmetry, sortedness, no
    /// self-loops, no duplicates). Used by property tests and debug
    /// assertions in generators.
    pub fn check_invariants(&self) -> Result<(), String> {
        for v in self.nodes() {
            let ns = self.neighbors(v);
            for w in ns.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("node {v}: adjacency not strictly sorted"));
                }
            }
            for &u in ns {
                if u == v {
                    return Err(format!("self-loop at {v}"));
                }
                if !self.has_edge(u, v) {
                    return Err(format!("asymmetric edge ({v},{u})"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 0);
        }
        assert_eq!(g.mean_degree(), 0.0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.mean_degree(), 0.0);
    }

    #[test]
    fn builder_dedups_and_symmetrizes() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // duplicate in reverse
        b.add_edge(2, 3);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert!(g.has_edge(3, 2));
        g.check_invariants().unwrap();
    }

    #[test]
    fn self_loops_rejected() {
        let mut b = GraphBuilder::new(2);
        assert!(!b.add_edge(1, 1));
        assert!(b.add_edge(0, 1));
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn neighbors_sorted() {
        let mut b = GraphBuilder::new(5);
        for u in [4u32, 2, 3, 1] {
            b.add_edge(0, u);
        }
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
        assert_eq!(g.degree(0), 4);
    }

    #[test]
    fn edges_iterator_visits_each_once() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 0);
        let g = b.build();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(0, 3)));
    }

    #[test]
    fn mean_degree_matches() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        assert!((g.mean_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        GraphBuilder::new(2).add_edge(0, 2);
    }

    #[test]
    fn contains_edge_checks_canonical() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 1);
        assert!(b.contains_edge(1, 2));
        assert!(b.contains_edge(2, 1));
        assert!(!b.contains_edge(0, 1));
    }
}
