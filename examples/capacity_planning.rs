//! Capacity planning: use the design procedure as a what-if tool.
//!
//! A deployment question the paper's framework answers directly: "we
//! expect N users on links of a given capacity — how should we
//! configure clusters, outdegree, and TTL, and what happens as the
//! network grows?"
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use sp_core::design::procedure::EvalOptions;
use sp_core::design::{design, DesignConstraints, DesignGoals};
use sp_core::{Config, Load};

fn main() {
    // Broadband super-peers: 256 Kbps up/down budget for search, a
    // quarter of a 1 GHz core, 80 connections.
    let constraints = DesignConstraints {
        max_sp_load: Load {
            in_bw: 256_000.0,
            out_bw: 256_000.0,
            proc: 250e6,
        },
        max_connections: 80.0,
        allow_redundancy: true,
    };

    println!("users   reach   cluster  k  outdeg  TTL  sp-up(bps)   results");
    println!("----------------------------------------------------------------");
    for users in [2_000usize, 5_000, 10_000, 20_000] {
        let goals = DesignGoals {
            num_users: users,
            // Aim to search a quarter of the network.
            desired_reach_peers: users / 4,
        };
        match design(
            &goals,
            &constraints,
            &Config::default(),
            &EvalOptions::default(),
        ) {
            Ok(out) => {
                println!(
                    "{users:>6}  {:>6}  {:>7}  {}  {:>6.0}  {:>3}  {:>10.3e}  {:>7.0}",
                    goals.desired_reach_peers,
                    out.config.cluster_size,
                    out.config.redundancy_k,
                    out.config.avg_outdegree,
                    out.config.ttl,
                    out.evaluation.sp_out_bw.mean,
                    out.evaluation.results.mean,
                );
            }
            Err(e) => println!("{users:>6}  infeasible: {e}"),
        }
    }
    println!(
        "\nNote how the procedure holds individual super-peer load flat by\n\
         deepening the TTL / shrinking clusters as the network grows — the\n\
         scaling behavior rule #1 predicts."
    );
}
