//! Churn and failover: quantify the Section 3.2 redundancy claim with
//! the event-driven simulator.
//!
//! "When the super-peer fails or simply leaves, all its clients become
//! temporarily disconnected… The probability that all partners will
//! fail before any failed partner can be replaced is much lower than
//! the probability of a single super-peer failing."
//!
//! ```text
//! cargo run --release --example churn_reliability
//! ```

use sp_core::experiments::dynamics;

fn main() {
    println!("Simulating 2 hours of a 1000-peer network under churn…\n");
    // Mean session length 1080 s (the Table 1-derived value): every
    // cluster loses its super-peer roughly twice an hour.
    let comparison = dynamics::reliability_experiment(1000, 10, 1080.0, 7200.0, 7);
    println!("{}", dynamics::render_reliability(&comparison));

    println!("Sensitivity to churn intensity (availability k=1 vs k=2):");
    println!("  mean session   k=1        k=2");
    for lifespan in [600.0, 1080.0, 3600.0] {
        let c = dynamics::reliability_experiment(600, 10, lifespan, 5400.0, 11);
        println!(
            "  {:>8.0} s   {:.4}     {:.4}",
            lifespan, c.availability_k1, c.availability_k2
        );
    }
    println!(
        "\nRedundant virtual super-peers keep serving while a replacement\n\
         partner is recruited from the clients, so clients almost never\n\
         observe an outage — at the cost of doubled join/update traffic."
    );
}
