//! The paper's Section 5.2 walk-through: redesign 2001-era Gnutella
//! with the global design procedure (Figure 10) and compare against
//! the measured topology (Figures 11 and 12).
//!
//! ```text
//! cargo run --release --example gnutella_redesign
//! ```

use sp_core::experiments::{redesign, Fidelity};

fn main() {
    // 20 000 users (the paper's mid-range estimate of the 2001 network),
    // desired reach 3000 peers, the paper's per-super-peer limits:
    // 100 Kbps each way, 10 MHz, 100 open connections.
    let constraints = redesign::paper_constraints();
    println!("Running the Figure 10 design procedure for 20 000 users…\n");
    let data = redesign::run(20_000, 3000, &constraints, &Fidelity::standard())
        .expect("the paper's scenario is feasible");

    println!("{}", data.render_design_log());
    println!("{}", data.render_fig11());
    println!("{}", data.render_fig12());

    let today = &data.topologies[0];
    let new = &data.topologies[1];
    println!(
        "The redesigned topology (cluster {}, outdegree {:.0}, TTL {}) cuts aggregate \
         bandwidth by {:.0}% and shortens response paths from {:.1} to {:.1} hops.",
        new.config.cluster_size,
        new.config.avg_outdegree,
        new.config.ttl,
        (1.0 - new.summary.agg_total_bw.mean / today.summary.agg_total_bw.mean) * 100.0,
        today.summary.epl.mean,
        new.summary.epl.mean,
    );
}
