//! Quickstart: evaluate a super-peer network and print its load
//! profile.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sp_core::NetworkBuilder;

fn main() {
    // A 2000-user network with Gnutella-like parameters: clusters of
    // 10 peers, power-law overlay at average outdegree 3.1, TTL 7.
    let builder = NetworkBuilder::new()
        .users(2000)
        .cluster_size(10)
        .avg_outdegree(3.1)
        .ttl(7);

    println!("Evaluating {:?} ...\n", builder.config().graph_type);
    let summary = builder.evaluate(3, 42);

    println!("Per super-peer (mean over partners, 95% CI over 3 instances):");
    println!("  incoming bandwidth : {}", summary.sp_in_bw);
    println!("  outgoing bandwidth : {}", summary.sp_out_bw);
    println!("  processing         : {}", summary.sp_proc);
    println!("Per client:");
    println!("  incoming bandwidth : {}", summary.client_in_bw);
    println!("  outgoing bandwidth : {}", summary.client_out_bw);
    println!("Search quality:");
    println!("  results per query  : {}", summary.results);
    println!("  expected path len  : {}", summary.epl);
    println!("  reach (clusters)   : {}", summary.reach_clusters);

    // The same network with 2-redundant virtual super-peers: individual
    // load drops, aggregate barely moves (the paper's rule #2).
    let redundant = builder.clone().redundancy(true).evaluate(3, 42);
    println!("\nWith 2-redundancy:");
    println!("  super-peer bandwidth : {}", redundant.sp_total_bw);
    println!(
        "  change vs plain      : {:+.1}%",
        (redundant.sp_total_bw.mean - summary.sp_total_bw.mean) / summary.sp_total_bw.mean * 100.0
    );
}
