//! All four rules of thumb (Section 5.1) demonstrated on one page.
//!
//! ```text
//! cargo run --release --example rules_of_thumb
//! ```

use sp_core::experiments::{cluster_sweep, rules, Fidelity};

fn main() {
    let fid = Fidelity {
        trials: 2,
        seed: 7,
        max_sources: Some(400),
        threads: 0,
    };
    let n = 5000;

    // Rule #1: cluster size trades aggregate for individual load.
    println!("=== Rule #1: increasing cluster size ===");
    let sweep = cluster_sweep::run(
        n,
        &[1, 10, 50, 200, 1000],
        &cluster_sweep::paper_systems()[..1],
        None,
        &fid,
    );
    println!("{}", sweep.render_fig4());
    println!("{}", sweep.render_fig5());

    // Rule #2: super-peer redundancy is good.
    println!("=== Rule #2: super-peer redundancy ===");
    println!("{}", rules::rule2(n, 50, &fid).render());

    // Rule #3: maximize outdegree (if everyone participates). The
    // aggregate win needs meaty per-cluster responses, so compare at
    // cluster size 100 as the paper's Appendix D does.
    println!("=== Rule #3: maximize outdegree ===");
    let r3 = rules::rule3(n, 100, (3.1, 10.0), &fid);
    println!("{}", r3.render_summary());
    println!("{}", r3.render_unilateral());

    // Rule #4: minimize TTL.
    println!("=== Rule #4: minimize TTL ===");
    println!("{}", rules::rule4(n, 10, 10.0, (3, 6), &fid).render());
}
